"""Six SPEC2000-like synthetic benchmarks (the paper's §4.1 suite).

SPEC2000 Alpha binaries cannot be run here, so each benchmark is a
synthetic :class:`~repro.workloads.program.Workload` built to exercise the
*access-interval structure* that drives the limit study (DESIGN.md §3.5).

Structure shared by all six — chosen to reproduce the interval-length
classes the paper's own numbers imply (Figures 7/8/9):

* **Code rotation.**  A handful of loop regions visited round-robin.
  Within a visit, a region's I-lines are re-fetched once per loop
  iteration (``body / IPC`` cycles — solidly inside the paper's
  (1057, 10K] class for the 3-6K-instruction bodies used here); between
  visits they idle for the rest of the rotation (the >10K class, tens of
  kilocycles).  Tight kernels feed the (0, 6] and (6, 1057] classes.
* **Hot/cold data split.**  Most loads walk a small *hot* working set
  (stack/locals/top-of-heap) in unit-stride bursts: intra-burst gaps land
  in (0, 6], and a line's burst-to-burst gap — one hot-sweep period, a
  few kilocycles — lands in (1057, 10K].  A minority of loads touch
  *cold* structures (large arrays, linked heaps): the per-frame event
  rate is so low that cold frames rest for hundreds of kilocycles, which
  is what makes sleep mode dominant in the data cache (Figure 7(b)).
* The FP pair (ammp, applu) leans colder (more streaming, smaller hot
  set) than the integer codes, mirroring why the leakage literature
  singles them out as sleep-friendly.

The knobs were calibrated against the paper's aggregate numbers; per-
benchmark absolute values are synthetic, but the cross-benchmark
contrasts follow the suite's published characterization.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import ConfigurationError
from .patterns import (
    DataPattern,
    PointerChase,
    RotatingPattern,
    SequentialStream,
    StridedSweep,
    ZipfReuse,
)
from .program import Phase, Visit, Workload

#: Base address of instruction memory.
CODE_BASE = 0x0100_0000

#: Base address of data memory (2 MB aligned so pool placement below can
#: dictate both L1 and L2 set offsets exactly).
DATA_BASE = 0x4000_0000

#: L1D line-index space the pools are placed against (64 KB / 64 B).
_L1_LINES = 1024

#: Paper benchmark names, in Figure 8's order.
BENCHMARK_NAMES = ["ammp", "applu", "gcc", "gzip", "mesa", "vortex"]


class PoolAllocator:
    """Places data pools at controlled cache-index offsets.

    Every pool gets a private 8 MB address region (so pools never alias
    in main memory), an exact L1D line-index offset (so hot pools can be
    pinned to a known set slice), and a spread of L2 offsets (so the cold
    working set lives across L2 instead of thrashing one L2 range).
    """

    def __init__(self) -> None:
        self._counter = 0

    def base(self, l1_line_offset: int | None = None) -> int:
        """Allocate a pool base with the given (or spread) L1 offset."""
        unique = self._counter
        self._counter += 1
        if l1_line_offset is None:
            l1_line_offset = (unique * 149) % _L1_LINES
        if not 0 <= l1_line_offset < _L1_LINES:
            raise ConfigurationError(
                f"L1 line offset must be in [0, {_L1_LINES}), got {l1_line_offset!r}"
            )
        l2_region = unique % 32
        return DATA_BASE + unique * (8 << 20) + (l2_region * 2048 + l1_line_offset) * 64


def hot_cold_mixture(
    hot: DataPattern,
    cold: DataPattern,
    cold_weight: float,
    extra: List = None,
) -> List[Tuple[DataPattern, float]]:
    """The hot/cold load split described in the module docstring."""
    components = [(hot, 1.0 - cold_weight), (cold, cold_weight)]
    if extra:
        components.extend(extra)
    return components


def _rounds(base_rounds: int, scale: float) -> int:
    """Scale a benchmark's round count, keeping at least one round."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale!r}")
    return max(1, int(round(base_rounds * scale)))


def _code_phases(
    names: List[str],
    bodies: List[int],
    patterns: List,
    loads: List[float],
    stores: List[float],
    seed: int,
) -> List[Phase]:
    """Lay code regions contiguously from CODE_BASE and build phases."""
    phases: List[Phase] = []
    offset = 0
    for name, body, pattern, load, store in zip(names, bodies, patterns, loads, stores):
        phases.append(
            Phase(name, CODE_BASE + offset, body, load, store, pattern, seed=seed)
        )
        offset += body * 4
    return phases


def make_gzip(scale: float = 1.0, seed: int = 11) -> Workload:
    """Compression: hot tight loop, streaming window, hash-table reuse."""
    alloc = PoolAllocator()
    hot = StridedSweep(alloc.base(384), n_elements=704, stride_bytes=8)
    hashes = ZipfReuse(alloc.base(560), n_lines=48, alpha=1.1, seed=seed)
    col = StridedSweep(alloc.base(672), n_elements=64, stride_bytes=24)

    def mix(cold: DataPattern, w: float, i: int):
        return [(hot, 0.75 - w), (col, 0.05), (cold, w), (hashes, 0.20)]

    names = ["match", "deflate", "window", "io", "tables", "lz"]
    bodies = [24, 4608, 1088, 3328, 4672, 3456]
    colds = [
        SequentialStream(alloc.base(), element_bytes=4, buffer_bytes=1 << 20),
        SequentialStream(alloc.base(), element_bytes=4, buffer_bytes=1 << 21),
        StridedSweep(alloc.base(), n_elements=20_480, stride_bytes=4),
        SequentialStream(alloc.base(), element_bytes=4, buffer_bytes=1 << 20),
        StridedSweep(alloc.base(), n_elements=24_576, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=24_576, stride_bytes=4),
    ]
    patterns = [mix(cold, 0.05, i) for i, cold in enumerate(colds)]
    loads = [0.30, 0.24, 0.26, 0.22, 0.24, 0.26]
    stores = [0.05, 0.10, 0.06, 0.14, 0.08, 0.08]
    phases = _code_phases(names, bodies, patterns, loads, stores, seed)
    schedule = [
        Visit(0, 11_000),
        Visit(1, 46_000),
        Visit(2, 40_000),
        Visit(0, 11_000),
        Visit(3, 38_000),
        Visit(4, 43_000),
        Visit(5, 39_000),
    ]
    return Workload("gzip", phases, schedule, rounds=_rounds(8, scale), seed=seed)


def make_gcc(scale: float = 1.0, seed: int = 23) -> Workload:
    """Compilation: very large code footprint, pointer-heavy cold heap."""
    alloc = PoolAllocator()
    hot = StridedSweep(alloc.base(128), n_elements=768, stride_bytes=8)
    symbols = ZipfReuse(alloc.base(720), n_lines=64, alpha=1.0, seed=seed)
    col = StridedSweep(alloc.base(912), n_elements=96, stride_bytes=24)

    def mix(cold: DataPattern, w: float, i: int):
        return [(hot, 0.76 - w), (col, 0.06), (cold, w), (symbols, 0.18)]

    names = ["parse", "typeck", "rtlgen", "gcse", "sched", "regalloc", "reload", "emit"]
    bodies = [2048, 2304, 2560, 2816, 4480, 2816, 1152, 2048]
    chases = [
        PointerChase(alloc.base(), n_nodes=24_576, node_bytes=16, seed=seed + r)
        for r in range(4)
    ]
    streams = [
        StridedSweep(alloc.base(), n_elements=24_576 + 2_048 * r, stride_bytes=4)
        for r in range(8)
    ]
    patterns = []
    for i in range(8):
        base = mix(streams[i], 0.035, i)
        base.append((chases[i % 4], 0.006))
        patterns.append(base)
    loads = [0.24] * 8
    stores = [0.09] * 8
    phases = _code_phases(names, bodies, patterns, loads, stores, seed)
    schedule = [Visit(i, 23_000) for i in range(len(phases))]
    return Workload("gcc", phases, schedule, rounds=_rounds(9, scale), seed=seed)


def make_mesa(scale: float = 1.0, seed: int = 37) -> Workload:
    """3D rendering: medium loops, vertex sweeps, streaming textures."""
    alloc = PoolAllocator()
    hot = StridedSweep(alloc.base(256), n_elements=640, stride_bytes=8)
    state = ZipfReuse(alloc.base(32), n_lines=56, alpha=1.2, seed=seed)
    col = StridedSweep(alloc.base(128), n_elements=128, stride_bytes=24)

    def mix(cold: DataPattern, w: float, i: int):
        return [(hot, 0.72 - w), (col, 0.10), (cold, w), (state, 0.18)]

    names = ["transform", "clip", "texture", "raster", "state"]
    bodies = [3200, 3456, 3584, 6016, 1152]
    colds = [
        StridedSweep(alloc.base(), n_elements=24_576, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=20_480, stride_bytes=4),
        SequentialStream(alloc.base(), element_bytes=4, buffer_bytes=1 << 21),
        StridedSweep(alloc.base(), n_elements=32_768, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=16_384, stride_bytes=4),
    ]
    patterns = [mix(cold, 0.05, i) for i, cold in enumerate(colds)]
    loads = [0.28, 0.22, 0.32, 0.24, 0.18]
    stores = [0.08, 0.06, 0.04, 0.14, 0.06]
    phases = _code_phases(names, bodies, patterns, loads, stores, seed)
    schedule = [
        Visit(0, 46_000),
        Visit(1, 43_000),
        Visit(2, 50_000),
        Visit(3, 53_000),
        Visit(4, 42_000),
    ]
    return Workload("mesa", phases, schedule, rounds=_rounds(8, scale), seed=seed)


def make_vortex(scale: float = 1.0, seed: int = 41) -> Workload:
    """Object database: large code, pointer chasing, wide heap reuse."""
    alloc = PoolAllocator()
    hot = StridedSweep(alloc.base(448), n_elements=704, stride_bytes=8)
    dir_cache = ZipfReuse(alloc.base(640), n_lines=72, alpha=0.95, seed=seed)
    col = StridedSweep(alloc.base(832), n_elements=128, stride_bytes=24)
    cold_heap = RotatingPattern(
        [
            PointerChase(alloc.base(), n_nodes=16_384, node_bytes=16, seed=seed + r)
            for r in range(3)
        ]
    )

    def mix(cold: DataPattern, w: float, i: int):
        return [(hot, 0.71 - w), (col, 0.10), (cold, w), (dir_cache, 0.19)]

    bodies = [1536, 1792, 2048, 2304, 2560, 3264, 2304, 1088, 1792, 2048]
    names = [f"txn{i}" for i in range(len(bodies))]
    streams = [
        StridedSweep(alloc.base(), n_elements=20_480 + 2_048 * i, stride_bytes=4)
        for i in range(len(bodies))
    ]
    patterns = []
    for i in range(len(bodies)):
        base = mix(streams[i], 0.035, i)
        base.append((cold_heap, 0.006))
        patterns.append(base)
    loads = [0.26] * len(bodies)
    stores = [0.11] * len(bodies)
    phases = _code_phases(names, bodies, patterns, loads, stores, seed)
    schedule = [Visit(i, 18_000) for i in range(len(bodies))]
    return Workload("vortex", phases, schedule, rounds=_rounds(9, scale), seed=seed)


def make_ammp(scale: float = 1.0, seed: int = 53) -> Workload:
    """Molecular dynamics: tiny kernels, cold streaming molecule arrays."""
    alloc = PoolAllocator()
    hot = StridedSweep(alloc.base(192), n_elements=512, stride_bytes=8)
    locals_pool = ZipfReuse(alloc.base(80), n_lines=40, alpha=1.1, seed=seed)
    col = StridedSweep(alloc.base(352), n_elements=256, stride_bytes=24)

    def mix(cold: DataPattern, w: float, i: int):
        return [(hot, 0.70 - w), (col, 0.16), (cold, w), (locals_pool, 0.14)]

    names = ["nonbond", "bond", "nlist", "integrate"]
    bodies = [3328, 3456, 5888, 1152]
    colds = [
        StridedSweep(alloc.base(), n_elements=40_960, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=32_768, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=24_576, stride_bytes=8),
        StridedSweep(alloc.base(), n_elements=32_768, stride_bytes=4),
    ]
    patterns = [mix(cold, 0.05, i) for i, cold in enumerate(colds)]
    loads = [0.34, 0.30, 0.28, 0.26]
    stores = [0.10, 0.12, 0.06, 0.16]
    phases = _code_phases(names, bodies, patterns, loads, stores, seed)
    schedule = [
        Visit(0, 101_000),
        Visit(1, 51_000),
        Visit(2, 40_000),
        Visit(3, 38_000),
    ]
    return Workload("ammp", phases, schedule, rounds=_rounds(8, scale), seed=seed)


def make_applu(scale: float = 1.0, seed: int = 61) -> Workload:
    """LU solver: small kernels alternating sweeps over large grids."""
    alloc = PoolAllocator()
    hot = StridedSweep(alloc.base(320), n_elements=512, stride_bytes=8)
    pivots = ZipfReuse(alloc.base(896), n_lines=48, alpha=1.0, seed=seed)
    col = StridedSweep(alloc.base(64), n_elements=256, stride_bytes=24)

    def mix(cold: DataPattern, w: float, i: int):
        return [(hot, 0.69 - w), (col, 0.16), (cold, w), (pivots, 0.15)]

    names = ["jacld", "blts", "jacu", "buts", "rhs"]
    bodies = [3328, 3456, 1152, 3456, 5760]
    colds = [
        StridedSweep(alloc.base(), n_elements=36_864, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=36_864, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=28_672, stride_bytes=4),
        StridedSweep(alloc.base(), n_elements=28_672, stride_bytes=8),
        StridedSweep(alloc.base(), n_elements=40_960, stride_bytes=4),
    ]
    patterns = [mix(cold, 0.05, i) for i, cold in enumerate(colds)]
    loads = [0.30, 0.32, 0.30, 0.32, 0.28]
    stores = [0.12, 0.10, 0.12, 0.10, 0.08]
    phases = _code_phases(names, bodies, patterns, loads, stores, seed)
    schedule = [
        Visit(0, 43_000),
        Visit(1, 50_000),
        Visit(2, 43_000),
        Visit(3, 50_000),
        Visit(4, 47_000),
    ]
    return Workload("applu", phases, schedule, rounds=_rounds(8, scale), seed=seed)


#: Factory registry, keyed by benchmark name.
BENCHMARK_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "ammp": make_ammp,
    "applu": make_applu,
    "gcc": make_gcc,
    "gzip": make_gzip,
    "mesa": make_mesa,
    "vortex": make_vortex,
}


def make_benchmark(name: str, scale: float = 1.0) -> Workload:
    """Build one paper benchmark by name."""
    try:
        factory = BENCHMARK_FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {BENCHMARK_NAMES}"
        ) from None
    return factory(scale=scale)


def paper_suite(scale: float = 1.0) -> Dict[str, Workload]:
    """All six benchmarks of the paper's §4.1 suite."""
    return {name: make_benchmark(name, scale) for name in BENCHMARK_NAMES}
