"""Data-access patterns for synthetic workloads.

Each pattern is a *stateful* address generator: successive calls continue
where the previous batch stopped, so a workload phase revisited later in
the schedule resumes its sweep/stream/chase exactly as a real program
would.  All generators are vectorized (one numpy array per request) and
deterministic given their construction-time seed.

The four patterns cover the access classes the SPEC2000 suite exercises:

* :class:`SequentialStream` — gzip-style streaming through a buffer;
* :class:`StridedSweep` — ammp/applu-style repeated array sweeps
  (multi-dimensional arrays produce non-unit strides);
* :class:`ZipfReuse` — gcc/vortex-style skewed reuse over a heap;
* :class:`PointerChase` — linked-structure traversal along a fixed
  random cycle.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class DataPattern:
    """Interface: produce the next ``n`` byte addresses."""

    def addresses(self, n: int) -> np.ndarray:
        """Return ``n`` int64 byte addresses, advancing internal state."""
        raise NotImplementedError

    @staticmethod
    def _check_n(n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"cannot generate {n!r} addresses")


class SequentialStream(DataPattern):
    """A forward stream through a (possibly wrapping) buffer.

    Parameters
    ----------
    base: starting byte address.
    element_bytes: stride between consecutive accesses.
    buffer_bytes: when given, the stream wraps at ``base + buffer_bytes``
        (an infinite stream never re-touches a line; a wrapped one gives
        every line a revisit interval of one full pass).
    """

    def __init__(
        self, base: int, element_bytes: int = 8, buffer_bytes: int | None = None
    ) -> None:
        if base < 0 or element_bytes <= 0:
            raise ConfigurationError(
                f"invalid stream parameters {(base, element_bytes)!r}"
            )
        if buffer_bytes is not None and buffer_bytes < element_bytes:
            raise ConfigurationError(
                f"buffer of {buffer_bytes} bytes cannot hold one "
                f"{element_bytes}-byte element"
            )
        self.base = base
        self.element_bytes = element_bytes
        self.buffer_bytes = buffer_bytes
        self._position = 0

    def addresses(self, n: int) -> np.ndarray:
        self._check_n(n)
        offsets = (self._position + np.arange(n, dtype=np.int64)) * self.element_bytes
        self._position += n
        if self.buffer_bytes is not None:
            offsets %= self.buffer_bytes
        return self.base + offsets


class StridedSweep(DataPattern):
    """Repeated sweeps over an array with a fixed element stride.

    One *sweep* touches ``n_elements`` addresses ``base, base+stride,
    ...``; the next sweep starts over, so a resident line's re-access
    interval equals one sweep period — the signature of the FP benchmarks
    (ammp, applu) the leakage literature singles out.
    """

    def __init__(self, base: int, n_elements: int, stride_bytes: int = 8) -> None:
        if base < 0 or n_elements <= 0 or stride_bytes <= 0:
            raise ConfigurationError(
                f"invalid sweep parameters {(base, n_elements, stride_bytes)!r}"
            )
        self.base = base
        self.n_elements = n_elements
        self.stride_bytes = stride_bytes
        self._position = 0

    def addresses(self, n: int) -> np.ndarray:
        self._check_n(n)
        indices = (self._position + np.arange(n, dtype=np.int64)) % self.n_elements
        self._position = (self._position + n) % self.n_elements
        return self.base + indices * self.stride_bytes


class ZipfReuse(DataPattern):
    """Skewed random reuse over a pool of cache lines.

    Line popularity follows a Zipf law with exponent ``alpha``: a few hot
    lines are touched constantly (short intervals) while the long tail is
    touched rarely (long intervals) — the integer-benchmark heap picture.
    """

    def __init__(
        self,
        base: int,
        n_lines: int,
        alpha: float = 1.1,
        line_bytes: int = 64,
        seed: int = 0,
    ) -> None:
        if base < 0 or n_lines <= 0 or line_bytes <= 0:
            raise ConfigurationError(
                f"invalid zipf parameters {(base, n_lines, line_bytes)!r}"
            )
        if alpha <= 0:
            raise ConfigurationError(f"zipf alpha must be positive, got {alpha!r}")
        self.base = base
        self.n_lines = n_lines
        self.line_bytes = line_bytes
        self._rng = np.random.default_rng(seed)
        weights = 1.0 / np.power(np.arange(1, n_lines + 1, dtype=np.float64), alpha)
        self._probabilities = weights / weights.sum()
        # A fixed random placement decouples popularity rank from address.
        self._placement = self._rng.permutation(n_lines).astype(np.int64)

    def addresses(self, n: int) -> np.ndarray:
        self._check_n(n)
        ranks = self._rng.choice(self.n_lines, size=n, p=self._probabilities)
        lines = self._placement[ranks]
        offsets = self._rng.integers(0, self.line_bytes, size=n, dtype=np.int64)
        return self.base + lines * self.line_bytes + offsets


class PointerChase(DataPattern):
    """Traversal of a fixed random cycle of nodes.

    Every node is visited once per lap, so intervals equal the lap time —
    linked-list behaviour with no spatial locality (each node sits on its
    own cache line by default).
    """

    def __init__(
        self, base: int, n_nodes: int, node_bytes: int = 64, seed: int = 0
    ) -> None:
        if base < 0 or n_nodes <= 0 or node_bytes <= 0:
            raise ConfigurationError(
                f"invalid chase parameters {(base, n_nodes, node_bytes)!r}"
            )
        self.base = base
        self.n_nodes = n_nodes
        self.node_bytes = node_bytes
        rng = np.random.default_rng(seed)
        # A single n-cycle: visit order is a fixed random permutation.
        self._order = rng.permutation(n_nodes).astype(np.int64)
        self._position = 0

    def addresses(self, n: int) -> np.ndarray:
        self._check_n(n)
        indices = (self._position + np.arange(n, dtype=np.int64)) % self.n_nodes
        self._position = (self._position + n) % self.n_nodes
        return self.base + self._order[indices] * self.node_bytes


class RotatingPattern(DataPattern):
    """Round-robin over several sub-patterns, advancing once per request.

    A workload phase asks its pattern for one batch per visit, so wrapping
    a phase's pools in a rotation makes each pool's *revisit period* a
    multiple of the schedule round — the mechanism behind the very long
    data-side intervals (hundreds of kilocycles) the D-cache exhibits.
    """

    def __init__(self, patterns: list) -> None:
        if not patterns:
            raise ConfigurationError("rotation needs at least one pattern")
        self.patterns = list(patterns)
        self._index = 0

    def addresses(self, n: int) -> np.ndarray:
        self._check_n(n)
        pattern = self.patterns[self._index]
        self._index = (self._index + 1) % len(self.patterns)
        return pattern.addresses(n)


class MixturePattern(DataPattern):
    """Interleave several sub-patterns with fixed weights.

    Models a program touching a hot shared structure (stack, globals)
    alongside its phase-private data: every batch is split between the
    sub-patterns in proportion to their weights and shuffled together.
    """

    def __init__(self, components: list, seed: int = 0) -> None:
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        total = sum(weight for _, weight in components)
        if total <= 0 or any(weight < 0 for _, weight in components):
            raise ConfigurationError(
                "mixture weights must be non-negative with a positive sum, "
                f"got {[w for _, w in components]!r}"
            )
        self.patterns = [pattern for pattern, _ in components]
        self._weights = np.array(
            [weight / total for _, weight in components], dtype=np.float64
        )
        self._rng = np.random.default_rng(seed)

    def addresses(self, n: int) -> np.ndarray:
        self._check_n(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        choices = self._rng.choice(len(self.patterns), size=n, p=self._weights)
        out = np.empty(n, dtype=np.int64)
        for index, pattern in enumerate(self.patterns):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = pattern.addresses(count)
        return out
