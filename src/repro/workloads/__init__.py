"""Synthetic workloads: the reproduction's substitute for SPEC2000.

Programs are modelled as schedules of loop-nest phases over data-access
patterns; six named configurations mimic the qualitative character of the
paper's benchmark suite (ammp, applu, gcc, gzip, mesa, vortex).  See
DESIGN.md §3.5.
"""

from .benchmarks import (
    BENCHMARK_FACTORIES,
    BENCHMARK_NAMES,
    make_ammp,
    make_applu,
    make_benchmark,
    make_gcc,
    make_gzip,
    make_mesa,
    make_vortex,
    paper_suite,
)
from .patterns import (
    DataPattern,
    MixturePattern,
    PointerChase,
    RotatingPattern,
    SequentialStream,
    StridedSweep,
    ZipfReuse,
)
from .program import (
    INSTRUCTION_BYTES,
    Phase,
    Visit,
    Workload,
    round_robin_schedule,
    super_schedule,
)

__all__ = [
    "BENCHMARK_FACTORIES",
    "BENCHMARK_NAMES",
    "DataPattern",
    "INSTRUCTION_BYTES",
    "MixturePattern",
    "Phase",
    "PointerChase",
    "RotatingPattern",
    "SequentialStream",
    "StridedSweep",
    "Visit",
    "Workload",
    "ZipfReuse",
    "make_ammp",
    "make_applu",
    "make_benchmark",
    "make_gcc",
    "make_gzip",
    "make_mesa",
    "make_vortex",
    "paper_suite",
    "round_robin_schedule",
    "super_schedule",
]
