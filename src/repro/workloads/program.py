"""Synthetic program model: phases of loop nests over data patterns.

A :class:`Workload` is a schedule of :class:`Phase` visits.  Each phase
models one code region — a loop nest whose body spans a contiguous range
of instruction addresses — paired with one or more data-access behaviours.
The emitted trace is what the paper gets from running a SPEC2000 binary
through SimpleScalar: a stream of (pc, optional data access) records.

Phase structure is what produces the paper's interval distributions
(Figure 2's two-level loop is the canonical example):

* instructions *within* a loop body re-touch their I-cache line once per
  loop iteration — short intervals, proportional to body size;
* a region's lines idle between visits to its phase — long intervals,
  proportional to the schedule's revisit period;
* the data side inherits whatever the phase's patterns produce.

The memory-instruction layout is *static*, as in a real loop body: which
body positions are loads/stores, and which data structure each position
touches, is fixed when the phase is built.  A position bound to a strided
structure therefore emits a constant per-PC stride (the loop advances the
structure by a whole iteration between that PC's executions) — exactly
the regularity the paper's stride-based prefetcher (Farkas-style, per
static load) is designed to catch, while positions bound to irregular
structures stay unpredictable.

Everything is generated in vectorized batches and is deterministic given
the workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..cpu.trace import LOAD, NO_ACCESS, STORE, TraceChunk
from ..errors import ConfigurationError
from .patterns import DataPattern

#: Bytes per instruction (Alpha ISA: fixed 4-byte encoding).
INSTRUCTION_BYTES = 4

#: A phase's data behaviour: one pattern, or weighted (pattern, weight)
#: components statically assigned to the body's memory positions.
PatternSpec = Union[DataPattern, Sequence[Tuple[DataPattern, float]], None]


class Phase:
    """One code region plus its data behaviour.

    Parameters
    ----------
    name: label for reports.
    code_base: first instruction address of the region.
    body_instructions: loop-body length in instructions; the body's lines
        are re-fetched once per iteration, so the within-phase I-cache
        interval is roughly ``body_instructions * CPI`` cycles.
    load_fraction / store_fraction: fraction of body positions that are
        loads / stores (fixed positions, chosen at construction).
    pattern: a single :class:`DataPattern` or weighted components; each
        memory position is statically bound to one component.
    block_instructions: basic-block size; the body executes as a fixed
        *shuffled* sequence of blocks of this many instructions, modelling
        the taken branches that break a real program's sequential fetch
        stream (0 disables shuffling — a straight-line body).  Within a
        block, fetch is sequential.
    seed: seed for the static layout and any per-pattern randomness.
    """

    def __init__(
        self,
        name: str,
        code_base: int,
        body_instructions: int,
        load_fraction: float = 0.0,
        store_fraction: float = 0.0,
        pattern: PatternSpec = None,
        block_instructions: int = 64,
        seed: int = 0,
    ) -> None:
        if code_base < 0:
            raise ConfigurationError(
                f"code base cannot be negative, got {code_base!r}"
            )
        if body_instructions <= 0:
            raise ConfigurationError(
                f"loop body must contain instructions, got {body_instructions!r}"
            )
        if not 0.0 <= load_fraction <= 1.0 or not 0.0 <= store_fraction <= 1.0:
            raise ConfigurationError("load/store fractions must each lie in [0, 1]")
        if block_instructions < 0:
            raise ConfigurationError(
                f"basic-block size cannot be negative, got {block_instructions!r}"
            )
        if load_fraction + store_fraction > 1.0:
            raise ConfigurationError(
                f"load+store fraction {load_fraction + store_fraction:.2f} exceeds 1.0"
            )
        self.name = name
        self.code_base = code_base
        self.body_instructions = body_instructions
        self.load_fraction = load_fraction
        self.store_fraction = store_fraction
        self.block_instructions = block_instructions
        self.components = self._normalize_pattern(pattern)
        if (load_fraction + store_fraction) > 0 and not self.components:
            raise ConfigurationError(
                f"phase {name!r} has memory instructions but no data pattern"
            )
        self._body_offset = 0
        self._build_static_layout(seed)

    @staticmethod
    def _normalize_pattern(
        pattern: PatternSpec,
    ) -> List[Tuple[DataPattern, float]]:
        if pattern is None:
            return []
        if isinstance(pattern, DataPattern):
            return [(pattern, 1.0)]
        components = list(pattern)
        if not components:
            return []
        total = sum(weight for _, weight in components)
        if total <= 0 or any(weight < 0 for _, weight in components):
            raise ConfigurationError(
                "pattern component weights must be non-negative with a "
                f"positive sum, got {[w for _, w in components]!r}"
            )
        return [(p, w / total) for p, w in components]

    def _build_static_layout(self, seed: int) -> None:
        """Fix which body positions are loads/stores and what they touch."""
        body = self.body_instructions
        rng = np.random.default_rng((seed, self.code_base))
        draw = rng.random(body)
        is_load = draw < self.load_fraction
        is_store = (~is_load) & (draw < self.load_fraction + self.store_fraction)
        kinds = np.zeros(body, dtype=np.uint8)
        kinds[is_load] = LOAD
        kinds[is_store] = STORE
        self._body_kinds = kinds
        component_of = np.full(body, -1, dtype=np.int64)
        mem_positions = np.flatnonzero(kinds != NO_ACCESS)
        if mem_positions.size and self.components:
            weights = np.array([w for _, w in self.components])
            component_of[mem_positions] = rng.choice(
                len(self.components), size=mem_positions.size, p=weights
            )
        self._component_of = component_of
        # Execution order: a fixed shuffle of basic blocks (taken branches).
        if self.block_instructions and self.block_instructions < body:
            n_blocks = -(-body // self.block_instructions)
            order = rng.permutation(n_blocks)
            exec_order = np.concatenate(
                [
                    np.arange(
                        b * self.block_instructions,
                        min((b + 1) * self.block_instructions, body),
                        dtype=np.int64,
                    )
                    for b in order
                ]
            )
        else:
            exec_order = np.arange(body, dtype=np.int64)
        self._exec_order = exec_order

    @property
    def code_bytes(self) -> int:
        """Instruction-footprint of the region in bytes."""
        return self.body_instructions * INSTRUCTION_BYTES

    def emit(self, n_instructions: int) -> TraceChunk:
        """Emit ``n_instructions`` of this phase's execution as one chunk.

        The loop body resumes where the previous visit left off, so split
        visits still walk the body seamlessly; each pattern component
        advances only by the accesses of its own positions, keeping
        per-PC strides coherent.
        """
        if n_instructions <= 0:
            raise ConfigurationError(f"cannot emit {n_instructions!r} instructions")
        body = self.body_instructions
        slots = (
            self._body_offset + np.arange(n_instructions, dtype=np.int64)
        ) % body
        self._body_offset = int((self._body_offset + n_instructions) % body)
        positions = self._exec_order[slots]
        pcs = self.code_base + positions * INSTRUCTION_BYTES
        kinds = self._body_kinds[positions]
        addresses = np.full(n_instructions, -1, dtype=np.int64)
        component_of = self._component_of[positions]
        for index, (pattern, _) in enumerate(self.components):
            mask = component_of == index
            count = int(mask.sum())
            if count:
                addresses[mask] = pattern.addresses(count)
        return TraceChunk(pcs, addresses, kinds)


@dataclass(frozen=True)
class Visit:
    """One schedule entry: run ``phase_index`` for ``instructions``."""

    phase_index: int
    instructions: int

    def __post_init__(self) -> None:
        if self.phase_index < 0 or self.instructions <= 0:
            raise ConfigurationError(
                f"invalid schedule visit {(self.phase_index, self.instructions)!r}"
            )


class Workload:
    """A named schedule of phase visits.

    Parameters
    ----------
    name: benchmark-style label (e.g. ``"gzip"``).
    phases: the program's code regions.
    schedule: visit order; when omitted, a round-robin over all phases.
    rounds: number of times the schedule repeats.
    seed: recorded for provenance (per-phase randomness is seeded at
        phase construction).
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        schedule: Optional[Sequence[Visit]] = None,
        rounds: int = 1,
        seed: int = 1234,
    ) -> None:
        if not phases:
            raise ConfigurationError("a workload needs at least one phase")
        if rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {rounds!r}")
        self.name = name
        self.phases = list(phases)
        if schedule is None:
            schedule = [
                Visit(i, phase.body_instructions) for i, phase in enumerate(phases)
            ]
        for visit in schedule:
            if visit.phase_index >= len(self.phases):
                raise ConfigurationError(
                    f"schedule references phase {visit.phase_index} but the "
                    f"workload has only {len(self.phases)}"
                )
        self.schedule = list(schedule)
        self.rounds = rounds
        self.seed = seed

    @property
    def total_instructions(self) -> int:
        """Instructions emitted by a full run."""
        return self.rounds * sum(v.instructions for v in self.schedule)

    @property
    def code_footprint_bytes(self) -> int:
        """Total instruction footprint across regions (assumes disjoint)."""
        return sum(phase.code_bytes for phase in self.phases)

    def chunks(self, chunk_limit: Optional[int] = None) -> Iterator[TraceChunk]:
        """Generate the trace, one chunk per visit.

        ``chunk_limit`` truncates the run after roughly that many
        instructions — used by tests and the SimPoint profiler.  Patterns
        are stateful, so a ``Workload`` should be rebuilt before being
        generated a second time.
        """
        emitted = 0
        for _ in range(self.rounds):
            for visit in self.schedule:
                take = visit.instructions
                if chunk_limit is not None:
                    remaining = chunk_limit - emitted
                    if remaining <= 0:
                        return
                    take = min(take, remaining)
                yield self.phases[visit.phase_index].emit(take)
                emitted += take

    def describe(self) -> str:
        """Multi-line human-readable structure summary."""
        lines = [
            f"workload {self.name}: {len(self.phases)} phases, "
            f"{self.rounds} rounds, {self.total_instructions} instructions, "
            f"{self.code_footprint_bytes // 1024} KB code"
        ]
        for i, phase in enumerate(self.phases):
            mem = phase.load_fraction + phase.store_fraction
            lines.append(
                f"  [{i}] {phase.name}: body={phase.body_instructions} instr, "
                f"mem={100 * mem:.0f}%"
            )
        return "\n".join(lines)


def round_robin_schedule(visits: Sequence[Tuple[int, int]]) -> List[Visit]:
    """Build a schedule from ``(phase_index, instructions)`` pairs."""
    return [Visit(index, instructions) for index, instructions in visits]


def super_schedule(
    groups: Sequence[Sequence[Visit]], inner_rounds: int = 4
) -> List[Visit]:
    """Two-level phase schedule (coarse program phases).

    Real programs rotate between coarse *super-phases* (init, compute,
    output; different compilation units) on top of their fine loop
    rotation: each group's visits repeat ``inner_rounds`` times before
    the next group takes over, so the inactive groups' code and data
    idle for whole super-epochs.  Useful for modelling workloads whose
    interval tails reach far beyond the schedule round.
    """
    if inner_rounds <= 0:
        raise ConfigurationError(
            f"inner_rounds must be positive, got {inner_rounds!r}"
        )
    if not groups or any(not group for group in groups):
        raise ConfigurationError("super_schedule needs non-empty visit groups")
    schedule: List[Visit] = []
    for group in groups:
        schedule.extend(list(group) * inner_rounds)
    return schedule
