"""Table 1: active-drowsy and drowsy-sleep inflection points per node."""

from __future__ import annotations

from ..core.energy import ModeEnergyModel, TransitionDurations
from ..core.inflection import inflection_points
from ..power.technology import paper_nodes
from . import paper_values
from .reporting import ExperimentResult, Table


def run(durations: TransitionDurations | None = None) -> ExperimentResult:
    """Compute the inflection points for the four paper nodes.

    The re-fetch energies are calibrated against this very table (see
    DESIGN.md §3.2), so the drowsy-sleep row must match exactly; the
    active-drowsy row is structural (``d1 + d3``).
    """
    durations = durations if durations is not None else TransitionDurations()
    rows = []
    for feature_nm, node in sorted(paper_nodes().items()):
        model = ModeEnergyModel(node, durations=durations)
        points = inflection_points(model)
        rows.append(
            [
                node.name,
                str(points.active_drowsy),
                str(paper_values.TABLE1_ACTIVE_DROWSY[feature_nm]),
                str(points.drowsy_sleep_cycles),
                str(paper_values.TABLE1_DROWSY_SLEEP[feature_nm]),
                f"{node.refetch_energy_cycles:.1f}",
            ]
        )
    table = Table(
        title="Table 1 — inflection points (cycles)",
        headers=[
            "node",
            "active-drowsy",
            "paper",
            "drowsy-sleep",
            "paper",
            "refetch (leak-cycles)",
        ],
        rows=rows,
    )
    return ExperimentResult(
        name="table1",
        description="Active-Drowsy and Drowsy-Sleep inflection points per technology",
        tables=[table],
        notes=[
            "active-drowsy = d1 + d3; drowsy-sleep solves E_sleep(L) = E_drowsy(L)",
            "re-fetch energies are calibrated to pin the published operating points",
        ],
    )
