"""§5.2's future work: the Prefetch-A-to-B power/performance frontier.

The paper closes its prefetch study with: "the best design trade-off of
power and performance is somewhere in between of the Prefetch-A and
Prefetch-B methods, which will be studied in our future work."  This
experiment performs that study: sweep the threshold above which
non-prefetchable intervals are drowsied, from B-like (drowsy everything
feasible) to A-like (never drowsy), and report savings against the
wake-up stall overhead at each point.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.energy import ModeEnergyModel
from ..power.technology import paper_nodes
from ..prefetch.schemes import TradeoffPoint, prefetch_tradeoff_curve
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner

#: Threshold sweep: B (= a), through the interval spectrum, to A (= inf).
DEFAULT_THRESHOLDS: Tuple[float, ...] = (6, 100, 1057, 10_000, 100_000, math.inf)


def compute(
    suite: SuiteRunner,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    feature_nm: int = 70,
) -> Dict[str, List[TradeoffPoint]]:
    """Suite-average frontier per cache."""
    model = ModeEnergyModel(paper_nodes()[feature_nm])
    out: Dict[str, List[TradeoffPoint]] = {}
    for cache in ("icache", "dcache"):
        curves = [
            prefetch_tradeoff_curve(annotated, model, list(thresholds))
            for annotated in suite.intervals_by_benchmark(cache).values()
        ]
        out[cache] = [
            TradeoffPoint(
                np_threshold=float(thresholds[i]),
                saving_fraction=float(
                    np.mean([curve[i].saving_fraction for curve in curves])
                ),
                stall_overhead=float(
                    np.mean([curve[i].stall_overhead for curve in curves])
                ),
            )
            for i in range(len(thresholds))
        ]
    return out


def run(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Regenerate the A-to-B frontier for both caches."""
    suite = suite if suite is not None else SuiteRunner()
    measured = compute(suite)
    tables = []
    for cache in ("icache", "dcache"):
        rows = []
        for point in measured[cache]:
            label = (
                "inf (Prefetch-A)"
                if math.isinf(point.np_threshold)
                else f"{point.np_threshold:g}"
                + (" (Prefetch-B)" if point.np_threshold == 6 else "")
            )
            rows.append(
                [
                    label,
                    fmt_pct(point.saving_fraction),
                    f"{1e6 * point.stall_overhead:.1f}",
                ]
            )
        tables.append(
            Table(
                title=f"Prefetch trade-off — {cache}",
                headers=["NP drowsy threshold (cycles)", "savings (%)", "stalls (ppm of cycles)"],
                rows=rows,
            )
        )
    return ExperimentResult(
        name="futurework_tradeoff",
        description="The Prefetch-A..B power/performance frontier (§5.2 future work)",
        tables=tables,
        notes=[
            "raising the threshold trades savings for fewer wake-up stalls",
            "both endpoints reproduce Prefetch-B (threshold=a) and Prefetch-A (inf)",
        ],
    )
