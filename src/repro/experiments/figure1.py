"""Figure 1: ITRS projected leakage fraction of total power, 1999-2009."""

from __future__ import annotations

from ..power.itrs import ITRS_ANCHORS, projection_series
from .reporting import ExperimentResult, Table, fmt_pct


def run(start: int = 1999, end: int = 2009, step: int = 2) -> ExperimentResult:
    """Regenerate the Figure 1 series from the logistic roadmap model."""
    rows = []
    for year, fraction in projection_series(start, end, step):
        anchor = ITRS_ANCHORS.get(year)
        rows.append(
            [
                str(year),
                fmt_pct(fraction),
                fmt_pct(anchor) if anchor is not None else "-",
            ]
        )
    table = Table(
        title="Figure 1 — leakage power / total power (%)",
        headers=["year", "model", "roadmap anchor"],
        rows=rows,
    )
    return ExperimentResult(
        name="figure1",
        description="ITRS leakage-power projection",
        tables=[table],
        notes=["logistic fit through the roadmap anchors; see repro.power.itrs"],
    )
