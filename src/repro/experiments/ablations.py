"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's published artifacts but quantify claims its
text makes in passing:

* **dead intervals** (§3.1): "dead periods did not contribute a large
  amount of leakage savings in the optimal case" — compare the default
  treatment (all intervals priced uniformly) against dead-aware pricing
  (no re-fetch charged for slept dead/cold intervals).
* **ramp shape**: trapezoidal vs step transition energy — the inflection
  points move, the savings barely do.
* **decay counter**: the Sleep(10K) per-line counter overhead sweep.
* **inflection perturbation** (§4.3): "small variances of the
  sleep-drowsy inflection point will not change our findings".
"""

from __future__ import annotations


import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.inflection import inflection_points
from ..core.policy import DecaySleep, OptHybrid
from ..core.savings import evaluate_policy
from ..power.technology import paper_nodes
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner


def _suite_average(suite: SuiteRunner, cache: str, evaluate) -> float:
    values = [
        evaluate(annotated)
        for annotated in suite.intervals_by_benchmark(cache).values()
    ]
    return float(np.mean(values))


def run_dead_intervals(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Quantify the §3.1 claim that dead intervals barely matter."""
    suite = suite if suite is not None else SuiteRunner()
    model = ModeEnergyModel(paper_nodes()[70])
    rows = []
    for cache in ("icache", "dcache"):
        uniform = _suite_average(
            suite,
            cache,
            lambda a: evaluate_policy(OptHybrid(model), a.intervals).saving_fraction,
        )
        # Dead-aware pricing needs the raw kinds, not the as_normal view.
        raw_values = []
        for name in suite.benchmark_names:
            run = suite.run(name)
            raw = run.annotated.annotated_for(cache)
            raw_values.append(
                evaluate_policy(
                    OptHybrid(model), raw.intervals, dead_aware=True
                ).saving_fraction
            )
        dead_aware = float(np.mean(raw_values))
        rows.append(
            [cache, fmt_pct(uniform), fmt_pct(dead_aware), fmt_pct(dead_aware - uniform)]
        )
    return ExperimentResult(
        name="ablation_dead_intervals",
        description="OPT-Hybrid with uniform vs dead-aware interval pricing",
        tables=[
            Table(
                title="Dead-interval ablation — OPT-Hybrid savings (%)",
                headers=["cache", "uniform (paper default)", "dead-aware", "delta"],
                rows=rows,
            )
        ],
        notes=[
            "dead-aware pricing drops the induced-miss charge for slept "
            "dead/cold intervals; the small delta confirms §3.1's claim"
        ],
    )


def run_ramp_shape(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Trapezoidal vs step transition-energy model."""
    suite = suite if suite is not None else SuiteRunner()
    node = paper_nodes()[70]
    rows = []
    models = {
        "trapezoidal": ModeEnergyModel(node, trapezoidal_ramps=True),
        "step": ModeEnergyModel(node, trapezoidal_ramps=False),
    }
    for label, model in models.items():
        points = inflection_points(model)
        savings = {
            cache: _suite_average(
                suite,
                cache,
                lambda a, m=model: evaluate_policy(
                    OptHybrid(m), a.intervals
                ).saving_fraction,
            )
            for cache in ("icache", "dcache")
        }
        rows.append(
            [
                label,
                str(points.active_drowsy),
                f"{points.drowsy_sleep:.0f}",
                fmt_pct(savings["icache"]),
                fmt_pct(savings["dcache"]),
            ]
        )
    return ExperimentResult(
        name="ablation_ramps",
        description="Sensitivity of the limits to the voltage-ramp energy model",
        tables=[
            Table(
                title="Ramp-shape ablation",
                headers=["ramp model", "a", "b", "I-cache hybrid", "D-cache hybrid"],
                rows=rows,
            )
        ],
        notes=["the step model inflates transition energy, moving b slightly"],
    )


def run_decay_counter(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Sleep(10K) savings across decay-counter leakage overheads."""
    suite = suite if suite is not None else SuiteRunner()
    model = ModeEnergyModel(paper_nodes()[70])
    overheads = [0.0, 0.002, 0.01, 0.05]
    rows = []
    for overhead in overheads:
        savings = {
            cache: _suite_average(
                suite,
                cache,
                lambda a, o=overhead: evaluate_policy(
                    DecaySleep(model, 10_000, counter_overhead=o), a.intervals
                ).saving_fraction,
            )
            for cache in ("icache", "dcache")
        }
        rows.append(
            [
                f"{100 * overhead:.1f}%",
                fmt_pct(savings["icache"]),
                fmt_pct(savings["dcache"]),
            ]
        )
    return ExperimentResult(
        name="ablation_decay_counter",
        description="Cache-decay counter leakage overhead sweep (Sleep(10K))",
        tables=[
            Table(
                title="Decay-counter ablation — Sleep(10K) savings (%)",
                headers=["counter overhead", "I-cache", "D-cache"],
                rows=rows,
            )
        ],
        notes=["overhead is always-on leakage per line, as a fraction of active"],
    )


def run_inflection_perturbation(suite: SuiteRunner | None = None) -> ExperimentResult:
    """§4.3: small variances of b do not change the findings."""
    suite = suite if suite is not None else SuiteRunner()
    model = ModeEnergyModel(paper_nodes()[70])
    b = inflection_points(model).drowsy_sleep
    factors = [1.0, 1.25, 1.5, 2.0, 4.0]
    rows = []
    for factor in factors:
        savings = {
            cache: _suite_average(
                suite,
                cache,
                lambda a, f=factor: evaluate_policy(
                    OptHybrid(model, sleep_threshold=b * f), a.intervals
                ).saving_fraction,
            )
            for cache in ("icache", "dcache")
        }
        rows.append(
            [
                f"{factor:.2f} x b ({b * factor:.0f})",
                fmt_pct(savings["icache"]),
                fmt_pct(savings["dcache"]),
            ]
        )
    return ExperimentResult(
        name="ablation_inflection",
        description="Hybrid savings under perturbed sleep-drowsy thresholds",
        tables=[
            Table(
                title="Inflection-perturbation ablation — OPT-Hybrid savings (%)",
                headers=["sleep threshold", "I-cache", "D-cache"],
                rows=rows,
            )
        ],
        notes=["savings are flat in the threshold near b — §4.3's robustness claim"],
    )
