"""Figure 8: per-benchmark comparison of the six leakage schemes.

OPT-Drowsy, Sleep(10K) (cache decay), OPT-Sleep(10K), OPT-Hybrid,
Prefetch-A and Prefetch-B, for the instruction and data caches, plus the
benchmark average the paper quotes in its prose (96.4% / 99.1% hybrid
limits).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.policy import DecaySleep, OptDrowsy, OptHybrid, OptSleep
from ..core.savings import evaluate_policy
from ..power.technology import paper_nodes
from ..prefetch.schemes import evaluate_prefetch_scheme
from . import paper_values
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner

#: Figure 8 bar order.
SCHEMES = [
    "OPT-Drowsy",
    "Sleep(10K)",
    "OPT-Sleep(10K)",
    "OPT-Hybrid",
    "Prefetch-A",
    "Prefetch-B",
]


def compute(
    suite: SuiteRunner, feature_nm: int = 70
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Savings per cache, benchmark and scheme (plus the average row)."""
    node = paper_nodes()[feature_nm]
    model = ModeEnergyModel(node)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cache in ("icache", "dcache"):
        per_benchmark: Dict[str, Dict[str, float]] = {}
        for name, annotated in suite.intervals_by_benchmark(cache).items():
            intervals = annotated.intervals
            row = {
                "OPT-Drowsy": evaluate_policy(
                    OptDrowsy(model, name="OPT-Drowsy"), intervals
                ).saving_fraction,
                "Sleep(10K)": evaluate_policy(
                    DecaySleep(model, 10_000), intervals
                ).saving_fraction,
                "OPT-Sleep(10K)": evaluate_policy(
                    OptSleep(model, 10_000), intervals
                ).saving_fraction,
                "OPT-Hybrid": evaluate_policy(
                    OptHybrid(model), intervals
                ).saving_fraction,
                "Prefetch-A": evaluate_prefetch_scheme(
                    annotated, model, power_first=False
                ).savings.saving_fraction,
                "Prefetch-B": evaluate_prefetch_scheme(
                    annotated, model, power_first=True
                ).savings.saving_fraction,
            }
            per_benchmark[name] = row
        per_benchmark["average"] = {
            scheme: float(np.mean([row[scheme] for row in per_benchmark.values()]))
            for scheme in SCHEMES
        }
        results[cache] = per_benchmark
    return results


def run(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Regenerate both Figure 8 panels."""
    suite = suite if suite is not None else SuiteRunner()
    measured = compute(suite)
    tables = []
    for cache in ("icache", "dcache"):
        rows: List[List[str]] = []
        for name, row in measured[cache].items():
            rows.append([name] + [fmt_pct(row[scheme]) for scheme in SCHEMES])
        paper_row = ["paper avg"]
        for scheme in SCHEMES:
            expected = paper_values.FIGURE8_AVERAGES[cache].get(scheme)
            paper_row.append(fmt_pct(expected) if expected is not None else "-")
        rows.append(paper_row)
        tables.append(
            Table(
                title=f"Figure 8 — {cache} leakage savings (%)",
                headers=["benchmark"] + SCHEMES,
                rows=rows,
            )
        )
    avg = {cache: measured[cache]["average"] for cache in measured}
    notes = [
        "headline limits: paper 96.4% (I) / 99.1% (D); measured "
        f"{fmt_pct(avg['icache']['OPT-Hybrid'])}% / {fmt_pct(avg['dcache']['OPT-Hybrid'])}%",
        "Prefetch-B approaches OPT-Hybrid within "
        f"{fmt_pct(avg['icache']['OPT-Hybrid'] - avg['icache']['Prefetch-B'])}% (I) / "
        f"{fmt_pct(avg['dcache']['OPT-Hybrid'] - avg['dcache']['Prefetch-B'])}% (D); "
        "paper: 5.3% / 6.7%",
    ]
    return ExperimentResult(
        name="figure8",
        description="Per-benchmark comparison of leakage power saving schemes",
        tables=tables,
        notes=notes,
    )
