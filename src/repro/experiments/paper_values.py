"""The paper's published numbers, embedded for side-by-side comparison.

Values are taken verbatim from the tables, or derived from the prose
where the paper gives figure values in words (Figure 8's deltas, Figure
9's totals).  Every experiment prints its measurement next to the
corresponding entry here, and EXPERIMENTS.md records the pairing.
"""

from __future__ import annotations

#: Table 1 — inflection points in cycles per technology node.
TABLE1_ACTIVE_DROWSY = {70: 6, 100: 6, 130: 6, 180: 6}
TABLE1_DROWSY_SLEEP = {70: 1057, 100: 5088, 130: 10328, 180: 103084}

#: Table 2 — optimal saving percentages (fractions) per node.
TABLE2 = {
    "icache": {
        70: {"OPT-Drowsy": 0.664, "OPT-Sleep": 0.952, "OPT-Hybrid": 0.964},
        100: {"OPT-Drowsy": 0.666, "OPT-Sleep": 0.850, "OPT-Hybrid": 0.937},
        130: {"OPT-Drowsy": 0.666, "OPT-Sleep": 0.806, "OPT-Hybrid": 0.913},
        180: {"OPT-Drowsy": 0.667, "OPT-Sleep": 0.615, "OPT-Hybrid": 0.671},
    },
    "dcache": {
        70: {"OPT-Drowsy": 0.661, "OPT-Sleep": 0.984, "OPT-Hybrid": 0.991},
        100: {"OPT-Drowsy": 0.666, "OPT-Sleep": 0.969, "OPT-Hybrid": 0.981},
        130: {"OPT-Drowsy": 0.667, "OPT-Sleep": 0.953, "OPT-Hybrid": 0.973},
        180: {"OPT-Drowsy": 0.667, "OPT-Sleep": 0.632, "OPT-Hybrid": 0.673},
    },
}

#: Table 2 — supply / threshold voltages.
TABLE2_VOLTAGES = {
    70: (0.9, 0.1902),
    100: (1.0, 0.2607),
    130: (1.5, 0.3353),
    180: (2.0, 0.3979),
}

#: Figure 8 — benchmark-average savings, as stated in or derived from
#: §4.4's prose: OPT-Hybrid is 96.4% (I) / 99.1% (D); the other schemes
#: are given as differences from it.
FIGURE8_AVERAGES = {
    "icache": {
        "OPT-Drowsy": 0.964 - 0.30,
        "Sleep(10K)": 0.964 - 0.26,
        "OPT-Sleep(10K)": 0.964 - 0.16,
        "OPT-Hybrid": 0.964,
    },
    "dcache": {
        "OPT-Drowsy": 0.991 - 0.33,
        "Sleep(10K)": 0.991 - 0.15,
        "OPT-Sleep(10K)": 0.991 - 0.12,
        "OPT-Hybrid": 0.991,
    },
}

#: §5.2 — Prefetch-B lands within these distances of OPT-Hybrid.
FIGURE8_PREFETCH_B_GAP = {"icache": 0.053, "dcache": 0.067}

#: §5.2 — Prefetch-A beats Sleep(10K) by ~10% on the instruction cache;
#: Prefetch-B beats Sleep(10K) by ~21% (I) and ~7% (D).
FIGURE8_PREFETCH_DELTAS = {
    ("icache", "Prefetch-A"): 0.10,
    ("icache", "Prefetch-B"): 0.21,
    ("dcache", "Prefetch-B"): 0.07,
}

#: Figure 9 — prefetchability of intervals (fractions of interval count).
FIGURE9 = {
    "icache": {"nextline": 0.230, "stride": 0.0, "total": 0.230},
    "dcache": {"nextline": 0.163, "stride": 0.051, "total": 0.214},
}

#: Abstract / §6 — headline limits: remaining leakage fractions.
HEADLINE_REMAINING = {"icache": 0.036, "dcache": 0.009}

#: §4.1 benchmark suite.
BENCHMARKS = ["ammp", "applu", "gcc", "gzip", "mesa", "vortex"]

#: §4.2 transition durations in cycles.
DURATIONS = {"s1": 30, "s3": 3, "s4": 4, "d1": 3, "d3": 3}
