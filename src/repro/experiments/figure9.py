"""Figure 9: prefetchability of intervals by length class."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.energy import ModeEnergyModel
from ..power.technology import paper_nodes
from ..prefetch.schemes import prefetchability_breakdown, prefetchability_summary
from . import paper_values
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner


def compute(suite: SuiteRunner, feature_nm: int = 70) -> Dict[str, Dict[str, float]]:
    """Suite-average P-NL / P-stride fractions per cache."""
    model = ModeEnergyModel(paper_nodes()[feature_nm])
    out: Dict[str, Dict[str, float]] = {}
    for cache in ("icache", "dcache"):
        summaries = [
            prefetchability_summary(annotated, model)
            for annotated in suite.intervals_by_benchmark(cache).values()
        ]
        out[cache] = {
            key: float(np.mean([s[key] for s in summaries]))
            for key in ("nextline", "stride", "total")
        }
    return out


def run(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Regenerate both Figure 9 panels (suite-aggregate breakdown)."""
    suite = suite if suite is not None else SuiteRunner()
    model = ModeEnergyModel(paper_nodes()[70])
    tables: List[Table] = []
    for cache in ("icache", "dcache"):
        # Aggregate the per-range counts over the whole suite.
        totals: Dict[str, List[int]] = {}
        for annotated in suite.intervals_by_benchmark(cache).values():
            for row in prefetchability_breakdown(annotated, model):
                acc = totals.setdefault(row.label, [0, 0, 0])
                acc[0] += row.total
                acc[1] += row.nextline
                acc[2] += row.stride
        grand_total = sum(acc[0] for acc in totals.values())
        rows = []
        for label, (total, nextline, stride) in totals.items():
            rows.append(
                [
                    label,
                    str(total),
                    fmt_pct(nextline / grand_total if grand_total else 0.0),
                    fmt_pct(stride / grand_total if grand_total else 0.0),
                    fmt_pct(
                        (total - nextline - stride) / grand_total
                        if grand_total
                        else 0.0
                    ),
                ]
            )
        summary = compute(suite)[cache]
        paper = paper_values.FIGURE9[cache]
        rows.append(
            [
                "total (suite avg)",
                "-",
                fmt_pct(summary["nextline"]),
                fmt_pct(summary["stride"]),
                fmt_pct(1.0 - summary["total"]),
            ]
        )
        rows.append(
            [
                "paper total",
                "-",
                fmt_pct(paper["nextline"]),
                fmt_pct(paper["stride"]),
                fmt_pct(1.0 - paper["total"]),
            ]
        )
        tables.append(
            Table(
                title=f"Figure 9 — {cache} interval prefetchability (% of interval count)",
                headers=["range", "intervals", "P-NL", "P-stride", "NP"],
                rows=rows,
            )
        )
    return ExperimentResult(
        name="figure9",
        description="Prefetchability of intervals by length class",
        tables=tables,
        notes=[
            "P-NL: an access to the previous block occurs inside the interval",
            "P-stride: the closing load was predicted by a confirmed per-PC stride",
            "intervals <= the active-drowsy point are never prefetchable",
        ],
    )
