"""Shared benchmark-suite runner with in-process caching.

Several experiments (Table 2, Figures 7/8/9) consume the same six
simulations; :class:`SuiteRunner` runs each benchmark once per
(scale, pipeline) configuration and hands out the annotated results, so
a full experiment session simulates the suite exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import ExperimentError
from ..prefetch.analysis import (
    AnnotatedIntervals,
    AnnotatedSimulationResult,
    AnnotatingSimulator,
)
from ..cpu.pipeline import PipelineConfig
from ..workloads.benchmarks import BENCHMARK_NAMES, make_benchmark

#: Default workload scale for experiments: full calibration scale.
DEFAULT_SCALE = 1.0


@dataclass(frozen=True)
class BenchmarkRun:
    """One benchmark's simulated, annotated outcome."""

    name: str
    annotated: AnnotatedSimulationResult

    def intervals(self, cache: str) -> AnnotatedIntervals:
        """Annotated intervals for ``'icache'`` or ``'dcache'``.

        Kinds are re-labelled NORMAL — the paper's default treatment of
        live/dead intervals (§3.1); the dead-interval ablation asks for
        the raw population via ``annotated`` directly.
        """
        return self.annotated.annotated_for(cache).as_normal()


class SuiteRunner:
    """Runs and caches the §4.1 benchmark suite."""

    def __init__(
        self,
        scale: float = DEFAULT_SCALE,
        pipeline: Optional[PipelineConfig] = None,
        benchmarks: Optional[Iterable[str]] = None,
    ) -> None:
        if scale <= 0:
            raise ExperimentError(f"scale must be positive, got {scale!r}")
        self.scale = scale
        self.pipeline = pipeline
        self.benchmark_names: List[str] = (
            list(benchmarks) if benchmarks is not None else list(BENCHMARK_NAMES)
        )
        self._cache: Dict[str, BenchmarkRun] = {}

    def run(self, name: str) -> BenchmarkRun:
        """Simulate one benchmark (cached)."""
        if name not in self.benchmark_names:
            raise ExperimentError(
                f"benchmark {name!r} is not in this runner's suite "
                f"{self.benchmark_names}"
            )
        if name not in self._cache:
            workload = make_benchmark(name, scale=self.scale)
            simulator = AnnotatingSimulator(pipeline=self.pipeline)
            self._cache[name] = BenchmarkRun(
                name=name, annotated=simulator.run(workload.chunks())
            )
        return self._cache[name]

    def all_runs(self) -> Dict[str, BenchmarkRun]:
        """Simulate the whole suite (cached)."""
        return {name: self.run(name) for name in self.benchmark_names}

    def intervals_by_benchmark(self, cache: str) -> Dict[str, AnnotatedIntervals]:
        """Annotated interval populations per benchmark for one cache."""
        return {
            name: run.intervals(cache) for name, run in self.all_runs().items()
        }
