"""Shared benchmark-suite runner on top of the execution engine.

Several experiments (Table 2, Figures 7/8/9) consume the same six
simulations; :class:`SuiteRunner` hands out each benchmark's annotated
results for one (scale, pipeline) configuration.  Since PR 1 the actual
simulation goes through :class:`~repro.engine.parallel.ExecutionEngine`:
results come from the on-disk cache when available, misses fan out over
worker processes, and a per-instance in-memory layer preserves the old
guarantee that one ``SuiteRunner`` simulates each benchmark exactly once
and always returns the same objects.  Jobs are submitted in suite order,
so a checkpointed run journals benchmarks deterministically and a
``--resume`` continues exactly where the previous run stopped; retries,
serial fallbacks, and injected faults inside the engine never change
what a ``BenchmarkRun`` contains, only how long it took to obtain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..engine import ExecutionEngine, SimulationJob
from ..errors import ExperimentError
from ..prefetch.analysis import (
    AnnotatedIntervals,
    AnnotatedSimulationResult,
)
from ..cpu.pipeline import PipelineConfig
from ..workloads.benchmarks import BENCHMARK_NAMES

#: Default workload scale for experiments: full calibration scale.
DEFAULT_SCALE = 1.0


@dataclass(frozen=True)
class BenchmarkRun:
    """One benchmark's simulated, annotated outcome."""

    name: str
    annotated: AnnotatedSimulationResult

    def intervals(self, cache: str) -> AnnotatedIntervals:
        """Annotated intervals for ``'icache'`` or ``'dcache'``.

        Kinds are re-labelled NORMAL — the paper's default treatment of
        live/dead intervals (§3.1); the dead-interval ablation asks for
        the raw population via ``annotated`` directly.
        """
        return self.annotated.annotated_for(cache).as_normal()


class SuiteRunner:
    """Runs and caches the §4.1 benchmark suite through the engine."""

    def __init__(
        self,
        scale: float = DEFAULT_SCALE,
        pipeline: Optional[PipelineConfig] = None,
        benchmarks: Optional[Iterable[str]] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        if scale <= 0:
            raise ExperimentError(f"scale must be positive, got {scale!r}")
        self.scale = scale
        self.pipeline = pipeline
        self.benchmark_names: List[str] = (
            list(benchmarks) if benchmarks is not None else list(BENCHMARK_NAMES)
        )
        # Names outside the paper suite must resolve through the workload
        # registry (registered synthetics and trace: refs).  Lazy import:
        # repro.traces layers above the engine this module drives.
        other = [n for n in self.benchmark_names if n not in BENCHMARK_NAMES]
        if other:
            from ..errors import ReproError
            from ..traces.registry import DEFAULT_REGISTRY, is_trace_ref

            for name in other:
                try:
                    DEFAULT_REGISTRY.validate(name)
                except ReproError as error:
                    raise ExperimentError(str(error)) from None
                if is_trace_ref(name) and float(scale) != 1.0:
                    raise ExperimentError(
                        f"{name!r}: a recorded trace carries its own scale; "
                        f"run trace refs at scale 1.0 (got {scale!r})"
                    )
        self._engine = engine
        self._cache: Dict[str, BenchmarkRun] = {}

    @property
    def engine(self) -> ExecutionEngine:
        """The backing engine (a default one is created lazily)."""
        if self._engine is None:
            self._engine = ExecutionEngine()
        return self._engine

    @property
    def telemetry(self):
        """The engine's run telemetry (retries, faults, notes included)."""
        return self.engine.telemetry

    def job_for(self, name: str) -> SimulationJob:
        """The engine job backing one benchmark of this suite.

        Public so the sweep grid (:mod:`repro.sweep.grid`) expands its
        points through the exact same job construction — a sweep point
        and a single-run suite entry with the same (benchmark, scale,
        pipeline) share one content address, hence one cache entry.
        """
        if name not in self.benchmark_names:
            raise ExperimentError(
                f"benchmark {name!r} is not in this runner's suite "
                f"{self.benchmark_names}"
            )
        return SimulationJob(name, scale=self.scale, pipeline=self.pipeline)

    def run(self, name: str) -> BenchmarkRun:
        """Simulate one benchmark (cached in memory and on disk)."""
        if name not in self._cache:
            outcome = self.engine.run_one(self.job_for(name))
            self._cache[name] = BenchmarkRun(name=name, annotated=outcome.annotated)
        return self._cache[name]

    def all_runs(self) -> Dict[str, BenchmarkRun]:
        """Simulate the whole suite; misses fan out across workers."""
        missing = [n for n in self.benchmark_names if n not in self._cache]
        if missing:
            outcomes = self.engine.run([self.job_for(n) for n in missing])
            for name in missing:
                annotated = outcomes[self.job_for(name)].annotated
                self._cache[name] = BenchmarkRun(name=name, annotated=annotated)
        return {name: self._cache[name] for name in self.benchmark_names}

    def intervals_by_benchmark(self, cache: str) -> Dict[str, AnnotatedIntervals]:
        """Annotated interval populations per benchmark for one cache."""
        return {
            name: run.intervals(cache) for name, run in self.all_runs().items()
        }
