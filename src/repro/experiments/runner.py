"""Experiment registry and runner.

Every table/figure reproduction and ablation is registered by name so
the CLI (``python -m repro`` / ``repro-leakage``) and the benchmark
harness can run them uniformly.  Experiments that consume the benchmark
suite accept a shared :class:`~repro.experiments.suite.SuiteRunner`, so
one session simulates the six benchmarks exactly once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ExperimentError
from . import (
    ablations,
    distributions,
    figure1,
    figure7,
    figure8,
    figure9,
    figure10,
    futurework,
    table1,
    table2,
)
from .reporting import ExperimentResult
from .suite import SuiteRunner

#: Experiments that do not need any simulation.
_STATIC: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "figure1": figure1.run,
    "figure10": figure10.run,
}

#: Experiments that consume the benchmark suite.
_SUITE: Dict[str, Callable[[Optional[SuiteRunner]], ExperimentResult]] = {
    "table2": table2.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "ablation_dead_intervals": ablations.run_dead_intervals,
    "ablation_ramps": ablations.run_ramp_shape,
    "ablation_decay_counter": ablations.run_decay_counter,
    "ablation_inflection": ablations.run_inflection_perturbation,
    "futurework_tradeoff": futurework.run,
    "distributions": distributions.run,
}


def experiment_names() -> List[str]:
    """All registered experiment names, static first."""
    return list(_STATIC) + list(_SUITE)


def run_experiment(
    name: str, suite: Optional[SuiteRunner] = None
) -> ExperimentResult:
    """Run one experiment by name.

    ``suite`` is reused when given; otherwise suite-consuming experiments
    build their own at the default scale.
    """
    if name in _STATIC:
        return _STATIC[name]()
    if name in _SUITE:
        return _SUITE[name](suite)
    raise ExperimentError(
        f"unknown experiment {name!r}; known: {experiment_names()}"
    )


def run_all(
    suite: Optional[SuiteRunner] = None, names: Optional[List[str]] = None
) -> List[ExperimentResult]:
    """Run several (default: all) experiments with one shared suite.

    ``names`` is validated up front so a typo surfaces before any
    simulation runs, not after earlier experiments have already spent
    minutes simulating; the error lists *every* unknown name at once.
    """
    if names is None:
        names = experiment_names()
    else:
        unknown = [n for n in names if n not in _STATIC and n not in _SUITE]
        if unknown:
            raise ExperimentError(
                f"unknown experiments {unknown}; known: {experiment_names()}"
            )
    if suite is None and any(name in _SUITE for name in names):
        suite = SuiteRunner()
    return [run_experiment(name, suite) for name in names]
