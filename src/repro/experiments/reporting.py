"""Plain-text rendering for experiment results.

Every experiment produces one or more :class:`Table` objects; the
renderer prints them as aligned ASCII tables so the benchmark harness
regenerates the paper's tables and figure series directly on stdout and
into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import ExperimentError


@dataclass(frozen=True)
class Table:
    """One titled, aligned text table."""

    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence[str]]

    def __post_init__(self) -> None:
        width = len(self.headers)
        for row in self.rows:
            if len(row) != width:
                raise ExperimentError(
                    f"table {self.title!r}: row {row!r} does not match "
                    f"{width} headers"
                )

    def render(self) -> str:
        """Aligned ASCII rendering."""
        columns = [self.headers] + [list(row) for row in self.rows]
        widths = [
            max(len(str(row[i])) for row in columns)
            for i in range(len(self.headers))
        ]
        def line(cells: Sequence[str]) -> str:
            return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        body = "\n".join(line(row) for row in self.rows)
        return f"{self.title}\n{line(self.headers)}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """Everything an experiment reports."""

    name: str
    description: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Full text report."""
        parts = [f"== {self.name}: {self.description} =="]
        parts.extend(table.render() for table in self.tables)
        if self.notes:
            parts.append("\n".join(f"note: {note}" for note in self.notes))
        return "\n\n".join(parts)


def fmt_pct(fraction: float, digits: int = 1) -> str:
    """Format a 0..1 fraction as a percentage cell."""
    return f"{100.0 * fraction:.{digits}f}"


def fmt_ratio(value: float, digits: int = 3) -> str:
    """Format a plain ratio cell."""
    return f"{value:.{digits}f}"


def table_to_csv(table: Table) -> str:
    """Render one table as CSV (comma-separated, quoted where needed)."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def save_csv(result: "ExperimentResult", directory) -> "List[str]":
    """Write every table of a result as ``<name>_<i>.csv``.

    Returns the written paths; downstream plotting scripts consume these
    instead of scraping the text report.
    """
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, table in enumerate(result.tables):
        path = directory / f"{result.name}_{index}.csv"
        path.write_text(table_to_csv(table), encoding="utf-8")
        paths.append(str(path))
    return paths
