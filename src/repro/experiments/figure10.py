"""Figure 10: energy vs interval length — the three-mode lower envelope."""

from __future__ import annotations

from ..core.energy import ModeEnergyModel
from ..core.envelope import envelope_series, region_slopes, verify_lemma1
from ..core.inflection import inflection_points
from ..power.technology import paper_nodes
from .reporting import ExperimentResult, Table, fmt_ratio


def run(feature_nm: int = 70, n_points: int = 16) -> ExperimentResult:
    """Regenerate the Figure 10 curve data for one technology node."""
    model = ModeEnergyModel(paper_nodes()[feature_nm])
    points = inflection_points(model)
    series = envelope_series(model, max_length=20_000, n_points=n_points)
    rows = []
    for length, active, drowsy, sleep in series:
        best = min(
            value for value in (active, drowsy, sleep) if value == value
        )  # NaN-safe min
        rows.append(
            [
                f"{length:.0f}",
                fmt_ratio(active, 1),
                fmt_ratio(drowsy, 1) if drowsy == drowsy else "-",
                fmt_ratio(sleep, 1) if sleep == sleep else "-",
                fmt_ratio(best, 1),
            ]
        )
    table = Table(
        title=f"Figure 10 — per-mode interval energy at {feature_nm}nm "
        "(active-leakage-cycles)",
        headers=["interval", "active", "drowsy", "sleep", "envelope"],
        rows=rows,
    )
    slopes = region_slopes(model)
    return ExperimentResult(
        name="figure10",
        description="Energy consumption of the three operating modes and their lower envelope",
        tables=[table],
        notes=[
            f"inflection points: a={points.active_drowsy}, b={points.drowsy_sleep:.0f}",
            f"region slopes P1={slopes[0]:.3f}, P2={slopes[1]:.3f}, P3={slopes[2]:.4f}",
            f"Lemma 1 (a < b) holds: {verify_lemma1(model)}",
        ],
    )
