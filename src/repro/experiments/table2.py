"""Table 2: optimal leakage savings as technology scales (70-180 nm)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.stacked import stacked_trio_savings
from ..power.technology import paper_nodes
from . import paper_values
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner

#: Table 2 scheme order (matches :data:`repro.core.stacked.TRIO_SCHEMES`).
SCHEMES = ["OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid"]


def compute(suite: SuiteRunner) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Benchmark-average savings per cache, node and scheme.

    All technology nodes are evaluated in one stacked array pass per
    benchmark population (float-identical to the former per-node loop).
    """
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    ordered = sorted(paper_nodes().items())
    models = [ModeEnergyModel(node) for _, node in ordered]
    for cache in ("icache", "dcache"):
        populations = suite.intervals_by_benchmark(cache)
        grids = [
            stacked_trio_savings(models, annotated.intervals)
            for annotated in populations.values()
        ]
        results[cache] = {
            feature_nm: {
                name: float(np.mean([float(grid[i, j]) for grid in grids]))
                for i, name in enumerate(SCHEMES)
            }
            for j, (feature_nm, _) in enumerate(ordered)
        }
    return results


def run(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Regenerate Table 2 and print it against the paper's values."""
    suite = suite if suite is not None else SuiteRunner()
    measured = compute(suite)
    tables = []
    for cache in ("icache", "dcache"):
        rows = []
        for scheme in SCHEMES:
            for source, data in (
                ("measured", measured[cache]),
                ("paper", paper_values.TABLE2[cache]),
            ):
                rows.append(
                    [f"{scheme} ({source})"]
                    + [fmt_pct(data[nm][scheme]) for nm in (70, 100, 130, 180)]
                )
        tables.append(
            Table(
                title=f"Table 2 — {cache} optimal savings (%) by technology",
                headers=["scheme", "70nm", "100nm", "130nm", "180nm"],
                rows=rows,
            )
        )
    notes = [
        "savings increase as technology scales down (smaller drowsy-sleep point)",
        "sleep's ~30-point lead over drowsy at 70nm collapses at 180nm "
        "(flipping outright on the I-cache) — the paper's dominance shift",
    ]
    return ExperimentResult(
        name="table2",
        description="Optimal leakage savings with technology scaling",
        tables=tables,
        notes=notes,
    )
