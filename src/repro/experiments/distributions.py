"""Diagnostic: per-benchmark interval-length distributions.

Not a paper artifact, but the quantity everything else is made of: the
cycle-mass of each cache's intervals across the Theorem 1 length classes
plus finer sub-bands.  This is the view the workload calibration was
driven by (DESIGN.md §3.5) and the first thing to inspect when porting
the library to new workloads.
"""

from __future__ import annotations

from typing import List

from ..core.energy import ModeEnergyModel
from ..core.inflection import inflection_points
from ..power.technology import paper_nodes
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner

#: Sub-band boundaries (cycles) used on top of the a/b class edges.
FINE_BOUNDARIES = [6, 100, 1057, 4000, 10_000, 30_000, 100_000, 300_000]


def run(suite: SuiteRunner | None = None) -> ExperimentResult:
    """Tabulate interval cycle-mass per benchmark, cache and band."""
    suite = suite if suite is not None else SuiteRunner()
    model = ModeEnergyModel(paper_nodes()[70])
    points = inflection_points(model)
    edges = FINE_BOUNDARIES
    labels = [f"<={edges[0]}"] + [
        f"{lo}-{hi}" for lo, hi in zip(edges, edges[1:])
    ] + [f">{edges[-1]}"]
    tables: List[Table] = []
    for cache in ("icache", "dcache"):
        rows = []
        for name, annotated in suite.intervals_by_benchmark(cache).items():
            mass = annotated.intervals.cycle_mass_by_class(edges)
            rows.append([name] + [fmt_pct(m) for m in mass])
        tables.append(
            Table(
                title=f"Interval cycle-mass (%) — {cache}",
                headers=["benchmark"] + labels,
                rows=rows,
            )
        )
    return ExperimentResult(
        name="distributions",
        description="Per-benchmark interval-length distributions (cycle mass)",
        tables=tables,
        notes=[
            f"Theorem 1 class edges at this node: a={points.active_drowsy}, "
            f"b={points.drowsy_sleep_cycles}",
            "mass beyond ~100K cycles is what sleep mode harvests; the "
            "(1057, 10K] band is what separates OPT-Sleep from OPT-Sleep(10K)",
        ],
    )
