"""Experiment harness: one module per table/figure, plus ablations.

See DESIGN.md §2 for the experiment-to-paper mapping.  Run everything
from the command line with ``python -m repro all`` or individually, e.g.
``python -m repro table1``.
"""

from .reporting import (
    ExperimentResult,
    Table,
    fmt_pct,
    fmt_ratio,
    save_csv,
    table_to_csv,
)
from .runner import experiment_names, run_all, run_experiment
from .suite import BenchmarkRun, SuiteRunner

__all__ = [
    "BenchmarkRun",
    "ExperimentResult",
    "SuiteRunner",
    "Table",
    "experiment_names",
    "fmt_pct",
    "fmt_ratio",
    "run_all",
    "run_experiment",
    "save_csv",
    "table_to_csv",
]
