"""Figure 7: hybrid (sleep+drowsy) vs pure sleep over the sleep threshold.

The sweep raises the minimum interval length eligible for sleep from the
sleep-drowsy inflection point (1057 cycles at 70 nm) to 10 000 cycles.
The pure-sleep method keeps shorter intervals fully active; the hybrid
additionally puts everything in ``(a, θ]`` into drowsy mode.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.inflection import inflection_points
from ..core.policy import OptHybrid, OptSleep
from ..core.savings import evaluate_policy
from ..power.technology import paper_nodes
from .reporting import ExperimentResult, Table, fmt_pct
from .suite import SuiteRunner

#: The paper's sweep grid (its x-axis ticks).
DEFAULT_THRESHOLDS = [1057, 1200, 1500, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000]


def compute(
    suite: SuiteRunner,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    feature_nm: int = 70,
) -> Dict[str, Dict[str, List[float]]]:
    """Average savings series per cache: ``{'sleep': [...], 'hybrid': [...]}``."""
    node = paper_nodes()[feature_nm]
    model = ModeEnergyModel(node)
    floor = inflection_points(model).drowsy_sleep
    series: Dict[str, Dict[str, List[float]]] = {}
    for cache in ("icache", "dcache"):
        populations = list(suite.intervals_by_benchmark(cache).values())
        sleep_series, hybrid_series = [], []
        for threshold in thresholds:
            threshold = max(float(threshold), floor)
            sleep_vals = [
                evaluate_policy(OptSleep(model, threshold), a.intervals).saving_fraction
                for a in populations
            ]
            hybrid_vals = [
                evaluate_policy(
                    OptHybrid(model, sleep_threshold=threshold), a.intervals
                ).saving_fraction
                for a in populations
            ]
            sleep_series.append(float(np.mean(sleep_vals)))
            hybrid_series.append(float(np.mean(hybrid_vals)))
        series[cache] = {"sleep": sleep_series, "hybrid": hybrid_series}
    return series


def run(
    suite: SuiteRunner | None = None,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
) -> ExperimentResult:
    """Regenerate both Figure 7 panels."""
    suite = suite if suite is not None else SuiteRunner()
    series = compute(suite, thresholds)
    tables = []
    for cache in ("icache", "dcache"):
        rows = [
            [
                str(threshold),
                fmt_pct(series[cache]["sleep"][i]),
                fmt_pct(series[cache]["hybrid"][i]),
                fmt_pct(series[cache]["hybrid"][i] - series[cache]["sleep"][i]),
            ]
            for i, threshold in enumerate(thresholds)
        ]
        tables.append(
            Table(
                title=f"Figure 7 — {cache}: sleep vs sleep+drowsy savings (%)",
                headers=["min sleep interval", "Sleep", "Sleep+Drowsy", "gap"],
                rows=rows,
            )
        )
    return ExperimentResult(
        name="figure7",
        description="Hybrid vs pure sleep across the minimum sleep interval",
        tables=tables,
        notes=[
            "hybrid >= sleep everywhere; the gap shrinks as the threshold "
            "approaches the sleep-drowsy inflection point",
            "the gap is smaller for the data cache than the instruction cache",
        ],
    )
