"""Trace-driven simulation: traces in, interval populations out.

:class:`TraceSimulator` walks a trace through the pipeline timing model
and the memory hierarchy, producing a :class:`SimulationResult` holding

* the per-frame access-interval populations of the L1 instruction and
  data caches (what the limit analysis consumes),
* hierarchy statistics, cycle count and IPC.

Two execution paths produce bit-identical results: the batched kernel
(:mod:`repro.cache.kernel`), used whenever the hierarchy supports it,
and the scalar per-access loop, kept both as a fallback for exotic
configurations and as the equivalence oracle the kernel is tested
against (``kernel=False`` forces it).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..cache.hierarchy import HierarchyConfig, MemoryHierarchy
from ..cache.kernel import (
    SimulationProfile,
    kernel_supported,
    resolve_kernel_mode,
    run_batched,
    validated_chunks,
)
from ..cache.stats import HierarchyStats
from ..core.intervals import IntervalSet
from ..errors import SimulationError
from .pipeline import IssueClock, PipelineConfig
from .trace import NO_ACCESS, STORE, TraceChunk


@dataclass(frozen=True)
class SimulationResult:
    """Everything a limit-study experiment needs from one run."""

    cycles: int
    instructions: int
    stall_cycles: int
    l1i_intervals: IntervalSet
    l1d_intervals: IntervalSet
    stats: HierarchyStats
    #: Where the run's accesses and wall time went.  Excluded from
    #: equality: a batched and a scalar run of the same trace compare
    #: equal on every simulated quantity.
    profile: Optional[SimulationProfile] = field(
        default=None, compare=False, repr=False
    )

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def intervals_for(self, which: str) -> IntervalSet:
        """Interval population by cache name (``'l1i'`` or ``'l1d'``)."""
        key = which.lower()
        if key in ("l1i", "icache", "i"):
            return self.l1i_intervals
        if key in ("l1d", "dcache", "d"):
            return self.l1d_intervals
        raise SimulationError(f"unknown cache selector {which!r}")


class TraceSimulator:
    """Drives a memory hierarchy with an instruction trace."""

    def __init__(
        self,
        hierarchy: Optional[MemoryHierarchy] = None,
        pipeline: Optional[PipelineConfig] = None,
        kernel: Optional[bool | str] = None,
    ) -> None:
        self.hierarchy = (
            hierarchy if hierarchy is not None else MemoryHierarchy(HierarchyConfig.paper())
        )
        self.clock = IssueClock(pipeline)
        #: None = auto (``REPRO_KERNEL`` or best available when the
        #: hierarchy supports the kernel); ``"scalar"``/``"batched"``/
        #: ``"compiled"`` select explicitly (raising if the hierarchy is
        #: unsupported); legacy bools mean batched (True) / scalar (False).
        self.kernel = kernel
        self._ran = False

    def run(self, trace: Iterable[TraceChunk] | TraceChunk) -> SimulationResult:
        """Consume the whole trace and return the collected results.

        A simulator instance runs one trace; build a fresh instance (and
        hierarchy) per workload.
        """
        if self._ran:
            raise SimulationError(
                "TraceSimulator instances are single-use; build a new one"
            )
        self._ran = True
        if isinstance(trace, TraceChunk):
            trace = (trace,)

        mode = resolve_kernel_mode(self.kernel)
        if mode == "scalar":
            return self._run_scalar(trace)
        if self.kernel is None and not kernel_supported(self.hierarchy):
            # Auto-selection falls back to the scalar oracle for exotic
            # hierarchies; an explicit request lets run_batched raise.
            return self._run_scalar(trace)
        return self._run_batched(trace, mode)

    def _run_batched(
        self, trace: Iterable[TraceChunk], mode: str = "batched"
    ) -> SimulationResult:
        hierarchy = self.hierarchy
        outcome = run_batched(
            hierarchy, self.clock, trace,
            residual="compiled" if mode == "compiled" else "python",
        )
        return SimulationResult(
            cycles=outcome.cycles,
            instructions=outcome.instructions,
            stall_cycles=outcome.stall_cycles,
            l1i_intervals=hierarchy.l1i.intervals(),
            l1d_intervals=hierarchy.l1d.intervals(),
            stats=hierarchy.stats(),
            profile=outcome.profile,
        )

    def _run_scalar(self, trace: Iterable[TraceChunk]) -> SimulationResult:
        hierarchy = self.hierarchy
        clock = self.clock
        config = clock.config
        l1i_hit = hierarchy.config.l1i.hit_latency
        l1d_hit = hierarchy.config.l1d.hit_latency
        load_mlp = config.load_mlp
        store_buffer = config.store_buffer
        fetch = hierarchy.fetch_instruction
        data = hierarchy.access_data
        issue = clock.issue
        stall = clock.stall
        # The fetch unit reads aligned instruction groups; the I-cache is
        # accessed once per group, not once per instruction.
        group_bits = config.fetch_group_bytes.bit_length() - 1
        prev_igroup = -1
        accesses_before = hierarchy.l1i.stats.accesses + hierarchy.l1d.stats.accesses
        started = _time.perf_counter()

        # Same entry validation as the batched kernel: malformed chunks
        # fail with a named error, not garbage deep in the access loop.
        for chunk in validated_chunks(trace):
            pcs = chunk.pcs
            addrs = chunk.data_addresses
            kinds = chunk.data_kinds
            for i in range(len(chunk)):
                now = issue()
                pc = int(pcs[i])
                igroup = pc >> group_bits
                if igroup != prev_igroup:
                    prev_igroup = igroup
                    latency = fetch(pc, now)
                    if latency > l1i_hit:
                        # Front-end misses stall the in-order fetch fully.
                        stall(latency - l1i_hit)
                kind = kinds[i]
                if kind != NO_ACCESS:
                    is_store = kind == STORE
                    latency = data(int(addrs[i]), now, is_store)
                    if latency > l1d_hit and not (is_store and store_buffer):
                        # Load misses overlap via the MLP divisor.
                        stall(-(-(latency - l1d_hit) // load_mlp))

        end_time = clock.cycle + 1
        hierarchy.finish(end_time)
        accesses = (
            hierarchy.l1i.stats.accesses + hierarchy.l1d.stats.accesses
            - accesses_before
        )
        profile = SimulationProfile(
            mode="scalar",
            fast_path_accesses=0,
            slow_path_accesses=accesses,
            stage_seconds={"scalar": _time.perf_counter() - started},
            residual_impl="scalar",
        )
        return SimulationResult(
            cycles=end_time,
            instructions=clock.instructions,
            stall_cycles=clock.stall_cycles,
            l1i_intervals=hierarchy.l1i.intervals(),
            l1d_intervals=hierarchy.l1d.intervals(),
            stats=hierarchy.stats(),
            profile=profile,
        )


def simulate_trace(
    trace: Iterable[TraceChunk] | TraceChunk,
    hierarchy: Optional[MemoryHierarchy] = None,
    pipeline: Optional[PipelineConfig] = None,
    kernel: Optional[bool | str] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`TraceSimulator`.

    Chunks are validated up front on both execution paths (dtype, shape,
    data-kind/address consistency; the kernel additionally rejects
    non-monotonic access times): malformed input raises
    :class:`~repro.errors.TraceValidationError` naming the offending
    chunk instead of failing deep inside the simulation loop.
    """
    return TraceSimulator(hierarchy, pipeline, kernel=kernel).run(trace)
