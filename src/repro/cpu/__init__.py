"""CPU substrate: traces, pipeline timing, trace-driven simulation.

The reproduction's substitute for SimpleScalar's sim-alpha (DESIGN.md
§3.4): traces of retired instructions are timed by a 4-wide in-order
issue model and driven through the cache hierarchy to produce the
per-frame access-interval populations the limit study consumes.
"""

from .pipeline import IssueClock, PipelineConfig
from .simulator import SimulationResult, TraceSimulator, simulate_trace
from .trace import (
    LOAD,
    NO_ACCESS,
    STORE,
    Access,
    TraceChunk,
    load_trace_npz,
    load_trace_text,
    merge_chunks,
    save_trace_npz,
    save_trace_text,
)

__all__ = [
    "Access",
    "IssueClock",
    "LOAD",
    "NO_ACCESS",
    "PipelineConfig",
    "STORE",
    "SimulationResult",
    "TraceChunk",
    "TraceSimulator",
    "load_trace_npz",
    "load_trace_text",
    "merge_chunks",
    "save_trace_npz",
    "save_trace_text",
    "simulate_trace",
]
