"""Instruction/data access traces.

The reproduction is trace-driven (the substitute for SimpleScalar running
Alpha binaries — see DESIGN.md §3.4): a trace is a sequence of retired
instructions, each carrying its fetch PC and at most one data access.
Traces are held column-wise in :class:`TraceChunk` objects (numpy arrays)
and streamed chunk-by-chunk so multi-million-instruction workloads never
materialize object lists.

Two interchange formats are supported:

* ``.npz`` — the native format (compressed numpy columns);
* a line-oriented text format ``pc[,daddr,L|S]`` for human-written test
  fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import TraceError

#: Data-kind codes in a chunk's ``data_kinds`` column.
NO_ACCESS, LOAD, STORE = 0, 1, 2


@dataclass(frozen=True)
class Access:
    """Scalar view of one retired instruction."""

    pc: int
    data_address: Optional[int] = None
    is_store: bool = False

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise TraceError(f"pc cannot be negative, got {self.pc!r}")
        if self.data_address is not None and self.data_address < 0:
            raise TraceError(
                f"data address cannot be negative, got {self.data_address!r}"
            )
        if self.is_store and self.data_address is None:
            raise TraceError("a store must carry a data address")


class TraceChunk:
    """A column-wise batch of instructions.

    Attributes
    ----------
    pcs: fetch addresses (int64).
    data_addresses: data addresses, ``-1`` where the instruction has none.
    data_kinds: ``NO_ACCESS`` / ``LOAD`` / ``STORE`` per instruction.
    """

    def __init__(
        self,
        pcs: Sequence[int] | np.ndarray,
        data_addresses: Sequence[int] | np.ndarray | None = None,
        data_kinds: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        pcs = np.asarray(pcs, dtype=np.int64)
        if pcs.ndim != 1:
            raise TraceError(f"pcs must be one-dimensional, got shape {pcs.shape}")
        if pcs.size and int(pcs.min()) < 0:
            raise TraceError("pcs cannot be negative")
        n = pcs.size
        if data_addresses is None:
            data_addresses = np.full(n, -1, dtype=np.int64)
        else:
            data_addresses = np.asarray(data_addresses, dtype=np.int64)
        if data_kinds is None:
            data_kinds = np.where(data_addresses >= 0, LOAD, NO_ACCESS).astype(
                np.uint8
            )
        else:
            data_kinds = np.asarray(data_kinds, dtype=np.uint8)
        if data_addresses.shape != pcs.shape or data_kinds.shape != pcs.shape:
            raise TraceError("trace columns must share one shape")
        if bool(np.any((data_kinds != NO_ACCESS) & (data_addresses < 0))):
            raise TraceError("a load/store row must carry a data address")
        if bool(np.any((data_kinds == NO_ACCESS) & (data_addresses >= 0))):
            raise TraceError("a no-access row cannot carry a data address")
        if data_kinds.size and int(data_kinds.max()) > STORE:
            raise TraceError("data_kinds contains an unknown code")
        self.pcs = pcs
        self.data_addresses = data_addresses
        self.data_kinds = data_kinds

    def __len__(self) -> int:
        return int(self.pcs.size)

    def __iter__(self) -> Iterator[Access]:
        for pc, addr, kind in zip(self.pcs, self.data_addresses, self.data_kinds):
            yield Access(
                int(pc),
                int(addr) if kind != NO_ACCESS else None,
                bool(kind == STORE),
            )

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access]) -> "TraceChunk":
        """Build a chunk from scalar records (test convenience)."""
        accesses = list(accesses)
        pcs = np.array([a.pc for a in accesses], dtype=np.int64)
        addrs = np.array(
            [a.data_address if a.data_address is not None else -1 for a in accesses],
            dtype=np.int64,
        )
        kinds = np.array(
            [
                NO_ACCESS
                if a.data_address is None
                else (STORE if a.is_store else LOAD)
                for a in accesses
            ],
            dtype=np.uint8,
        )
        return cls(pcs, addrs, kinds)

    def concat(self, other: "TraceChunk") -> "TraceChunk":
        """Concatenate two chunks."""
        return TraceChunk(
            np.concatenate([self.pcs, other.pcs]),
            np.concatenate([self.data_addresses, other.data_addresses]),
            np.concatenate([self.data_kinds, other.data_kinds]),
        )

    def slice(self, start: int, stop: int) -> "TraceChunk":
        """A sub-chunk covering instructions ``start..stop``."""
        return TraceChunk(
            self.pcs[start:stop],
            self.data_addresses[start:stop],
            self.data_kinds[start:stop],
        )


def merge_chunks(chunks: Iterable[TraceChunk]) -> TraceChunk:
    """Concatenate many chunks into one."""
    chunks = list(chunks)
    if not chunks:
        return TraceChunk(np.empty(0, dtype=np.int64))
    return TraceChunk(
        np.concatenate([c.pcs for c in chunks]),
        np.concatenate([c.data_addresses for c in chunks]),
        np.concatenate([c.data_kinds for c in chunks]),
    )


# ----------------------------------------------------------------------
# Interchange formats
# ----------------------------------------------------------------------


def save_trace_npz(path: str | Path, chunk: TraceChunk) -> None:
    """Write a chunk in the native compressed format."""
    np.savez_compressed(
        Path(path),
        pcs=chunk.pcs,
        data_addresses=chunk.data_addresses,
        data_kinds=chunk.data_kinds,
    )


def load_trace_npz(path: str | Path) -> TraceChunk:
    """Read a chunk written by :func:`save_trace_npz`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with np.load(path) as data:
        try:
            return TraceChunk(
                data["pcs"], data["data_addresses"], data["data_kinds"]
            )
        except KeyError as exc:
            raise TraceError(f"trace file {path} is missing column {exc}") from None


def save_trace_text(path: str | Path, chunk: TraceChunk) -> None:
    """Write the line format ``pc[,daddr,L|S]`` (one instruction per line)."""
    with open(Path(path), "w", encoding="ascii") as handle:
        for access in chunk:
            if access.data_address is None:
                handle.write(f"{access.pc}\n")
            else:
                kind = "S" if access.is_store else "L"
                handle.write(f"{access.pc},{access.data_address},{kind}\n")


def load_trace_text(path: str | Path) -> TraceChunk:
    """Read the line format written by :func:`save_trace_text`."""
    accesses: List[Access] = []
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            try:
                if len(parts) == 1:
                    accesses.append(Access(int(parts[0])))
                elif len(parts) == 3:
                    accesses.append(
                        Access(int(parts[0]), int(parts[1]), parts[2].strip() == "S")
                    )
                else:
                    raise ValueError("wrong field count")
            except (ValueError, TraceError) as exc:
                raise TraceError(
                    f"{path}:{lineno}: malformed trace line {line!r} ({exc})"
                ) from None
    return TraceChunk.from_accesses(accesses)
