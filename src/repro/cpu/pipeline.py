"""Pipeline timing model.

The paper times its traces on a SimpleScalar model of the Alpha 21264 — a
4-wide superscalar.  The limit analysis consumes only the *cycle stamps*
of L1 accesses, so this substrate approximates the machine with an
in-order, width-limited issue model:

* up to ``width`` instructions issue per cycle;
* an L1 miss stalls the stream for the extra latency beyond the L1 hit
  time (the hit latency itself is pipelined away);
* instruction and data misses do not overlap (in-order assumption).

This perturbs interval lengths by small constants relative to an
out-of-order model — negligible against inflection points of 10^3..10^5
cycles (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Fixed-point resolution of the CPI accumulator: fractions of a cycle are
#: carried in units of 2**-CPI_FP_BITS.  Integer arithmetic keeps the clock
#: exactly replayable in closed form — after ``n`` issues and no stalls the
#: cycle is ``(n * cpi_fp) >> CPI_FP_BITS`` — which is what lets the batched
#: kernel (:mod:`repro.cache.kernel`) compute issue times for whole chunks
#: in one vectorized expression while staying bit-identical to the scalar
#: path.  At 2**-20 cycles the quantization of ``base_cpi`` is below one
#: part per million, invisible next to the model's own approximations.
CPI_FP_BITS = 20


def cpi_fixed_point(base_cpi: float) -> int:
    """``base_cpi`` in fixed-point accumulator units (2**-CPI_FP_BITS)."""
    return round(base_cpi * (1 << CPI_FP_BITS))


@dataclass(frozen=True)
class PipelineConfig:
    """Timing parameters of the issue model.

    Attributes
    ----------
    width: instructions issued per cycle (4 matches the 21264).
    base_cpi: cycles per instruction charged by the core itself —
        dependency chains, branch mispredictions and issue-slot
        fragmentation that keep real machines far from their peak width.
        The 21264 sustains roughly 1.5 IPC on SPEC2000, so the default is
        0.65 CPI; memory stalls come on top.  Must be at least
        ``1/width``.
    stall_on_miss: charge miss latencies as stalls; disabling yields a
        fixed-IPC clock, useful for deterministic unit tests.
    load_mlp: memory-level-parallelism divisor applied to load-miss
        stalls.  The 21264 is out of order and overlaps independent
        misses; an in-order model charging full latency per load miss
        collapses IPC far below the machine the paper timed.  A divisor
        of 4 lands IPC in the 1-2 range typical of SPEC2000 on the 21264.
    store_buffer: when True (default), stores retire through a store
        buffer and never stall the stream.
    fetch_group_bytes: the fetch unit reads instructions in aligned
        groups of this many bytes (16 = the 21264's 4-instruction fetch
        slot); the I-cache sees one access per group, so a 64 B line is
        touched four times as a sequential run passes through it.
    """

    width: int = 4
    base_cpi: float = 0.65
    stall_on_miss: bool = True
    load_mlp: int = 4
    store_buffer: bool = True
    fetch_group_bytes: int = 16

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(
                f"pipeline width must be positive, got {self.width!r}"
            )
        if self.fetch_group_bytes <= 0 or (
            self.fetch_group_bytes & (self.fetch_group_bytes - 1)
        ):
            raise ConfigurationError(
                "fetch group size must be a positive power of two, got "
                f"{self.fetch_group_bytes!r}"
            )
        if self.base_cpi < 1.0 / self.width:
            raise ConfigurationError(
                f"base CPI {self.base_cpi!r} is below the issue-width bound "
                f"1/{self.width}"
            )
        if self.load_mlp <= 0:
            raise ConfigurationError(
                f"load MLP divisor must be positive, got {self.load_mlp!r}"
            )


class IssueClock:
    """Tracks the current cycle as instructions issue and stalls accrue."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.cycle = 0
        self._cpi_fp = cpi_fixed_point(self.config.base_cpi)
        self._cpi_accumulator = 0
        self.instructions = 0
        self.stall_cycles = 0

    def issue(self) -> int:
        """Issue one instruction; returns the cycle it issues in.

        The core's base CPI is charged through a fixed-point fractional
        accumulator (units of 2**-CPI_FP_BITS cycles), so a 0.65-CPI
        machine advances the clock by 0 or 1 cycles per instruction with
        the right long-run average, and the base issue time of the n-th
        instruction has the closed form ``(n * cpi_fp) >> CPI_FP_BITS``
        plus accrued stalls.
        """
        issued_at = self.cycle
        self.instructions += 1
        self._cpi_accumulator += self._cpi_fp
        advance = self._cpi_accumulator >> CPI_FP_BITS
        if advance:
            self._cpi_accumulator &= (1 << CPI_FP_BITS) - 1
            self.cycle += advance
        return issued_at

    def stall(self, extra_latency: int) -> None:
        """Stall the stream for ``extra_latency`` cycles beyond a hit."""
        if extra_latency < 0:
            raise ConfigurationError(
                f"stall cycles cannot be negative, got {extra_latency!r}"
            )
        if not self.config.stall_on_miss or extra_latency == 0:
            return
        self.cycle += extra_latency
        self.stall_cycles += extra_latency

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle so far."""
        return self.instructions / self.cycle if self.cycle else 0.0
