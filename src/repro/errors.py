"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The subtypes
mirror the major subsystems: configuration, power modelling, interval
analysis, policy evaluation, simulation and tracing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object was constructed with invalid parameters.

    Raised for things like a non-power-of-two cache size, a negative
    latency, or a technology node with a drowsy voltage above Vdd.
    """


class PowerModelError(ReproError):
    """A power model was asked for a quantity it cannot produce.

    Raised, for example, when a leakage model is evaluated for an unknown
    operating mode, or a calibration has no solution under the supplied
    circuit durations.
    """


class IntervalError(ReproError):
    """An interval or interval sequence violates its invariants.

    Raised for non-positive interval lengths, unsorted access times, or
    attempts to build intervals from fewer than the required accesses.
    """


class PolicyError(ReproError):
    """A leakage-management policy made or was asked for an invalid decision.

    Raised when a mode is assigned to an interval too short to be feasible
    under that mode (e.g. sleeping an interval shorter than the sleep
    transition time), or when a policy is evaluated against an energy model
    it was not built for.
    """


class SimulationError(ReproError):
    """The cache/CPU simulation reached an inconsistent state.

    Raised for malformed traces (time moving backwards), accesses outside
    the configured address space, or hierarchy misconfiguration discovered
    at run time.
    """


class TraceError(ReproError):
    """A trace file or trace stream could not be parsed or validated."""


class TraceFormatError(TraceError):
    """A recorded trace file violates the on-disk format.

    Raised for bad magic/version, truncated frames, per-chunk checksum
    mismatches, or a whole-trace digest that does not match the chunk
    stream.  Distinct from :class:`TraceError` so callers can tell
    corruption of a recorded artifact apart from malformed fixture input.
    """


class TraceValidationError(SimulationError):
    """A trace chunk fed to the simulation kernel violates its contract.

    Raised at the kernel entry (wrong column dtype/shape, unknown data
    kinds, inconsistent address columns, non-monotonic access times) so
    malformed external traces fail with a named, actionable error instead
    of deep inside the residual loop.
    """


class WorkloadRefError(ReproError):
    """A workload reference could not be parsed or resolved.

    Raised by the workload registry (:mod:`repro.traces.registry`) for
    unknown benchmark names, malformed ``trace:`` refs, and trace refs
    pointing at missing or unreadable files.
    """


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown name or bad args."""


class EngineError(ReproError):
    """The execution engine was misconfigured or reached a broken state.

    Raised for invalid jobs (unknown benchmark, non-positive scale),
    invalid worker counts or timeouts, and engine-level invariants; pool
    and cache *failures* are handled by falling back, not by raising.
    """
