"""Unit conventions and small conversion helpers.

The library works in three unit systems, and this module is the single
place where the conventions are written down:

* **Cycles** — all interval lengths, durations and inflection points are in
  processor clock cycles, matching how the paper reports them (Table 1).
* **Normalized energy** — the core policy mathematics uses energy expressed
  in *active-line-leakage-cycles*: the energy one cache line leaks in one
  cycle while fully powered is ``1.0``.  Leakage savings are ratios, so
  this normalization cancels and lets the entire limit analysis run
  without committing to absolute watts.
* **Physical units** — the :mod:`repro.power` models produce absolute
  values (watts, joules, seconds, volts) when a clock frequency and device
  parameters are supplied.  The helpers below convert between the two
  systems.

Constants follow SI.  Temperatures are kelvin.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Elementary charge (C).
ELECTRON_CHARGE = 1.602176634e-19

#: Reference junction temperature used by the default leakage models (K).
#: HotLeakage-style models evaluate leakage at an elevated operating
#: temperature; 353 K (80 C) is a common choice for cache limit studies.
DEFAULT_TEMPERATURE_K = 353.0


def thermal_voltage(temperature_k: float = DEFAULT_TEMPERATURE_K) -> float:
    """Return the thermal voltage ``kT/q`` in volts.

    ``vT`` is roughly 26 mV at room temperature and grows linearly with
    temperature; every subthreshold-leakage exponent in
    :mod:`repro.power.leakage` is expressed in multiples of it.
    """
    if temperature_k <= 0:
        raise ConfigurationError(
            f"temperature must be positive, got {temperature_k!r} K"
        )
    return BOLTZMANN * temperature_k / ELECTRON_CHARGE


def cycle_time_s(frequency_hz: float) -> float:
    """Return the clock period in seconds for a clock ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ConfigurationError(
            f"clock frequency must be positive, got {frequency_hz!r} Hz"
        )
    return 1.0 / frequency_hz


def joules_to_leakage_cycles(
    energy_j: float, line_leakage_w: float, frequency_hz: float
) -> float:
    """Convert an absolute energy to active-line-leakage-cycles.

    ``line_leakage_w`` is the leakage power of one fully-active cache line;
    one leakage-cycle is the energy that line dissipates in one clock
    period.  This is the conversion used to express a CACTI-style re-fetch
    energy in the normalized units the inflection-point equations use.
    """
    if line_leakage_w <= 0:
        raise ConfigurationError(
            f"line leakage power must be positive, got {line_leakage_w!r} W"
        )
    return energy_j / (line_leakage_w * cycle_time_s(frequency_hz))


def leakage_cycles_to_joules(
    cycles: float, line_leakage_w: float, frequency_hz: float
) -> float:
    """Inverse of :func:`joules_to_leakage_cycles`."""
    if line_leakage_w <= 0:
        raise ConfigurationError(
            f"line leakage power must be positive, got {line_leakage_w!r} W"
        )
    return cycles * line_leakage_w * cycle_time_s(frequency_hz)


def as_percentage(fraction: float, digits: int = 1) -> str:
    """Format a 0..1 fraction as a percentage string, e.g. ``'96.4%'``."""
    return f"{100.0 * fraction:.{digits}f}%"
