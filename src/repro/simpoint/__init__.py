"""SimPoint substrate: BBV profiling, k-means, representative windows.

The reproduction's stand-in for the SimPoint toolchain the paper uses to
keep simulation time reasonable (§4.1); see DESIGN.md §3.6.
"""

from .bbv import BBVProfile, BBVProfiler, profile_trace
from .kmeans import KMeansResult, bic_score, choose_k, kmeans
from .simpoint import (
    SimPointSelection,
    estimate_weighted,
    select_simpoints,
    select_simpoints_for_trace,
    window_slice,
)

__all__ = [
    "BBVProfile",
    "BBVProfiler",
    "KMeansResult",
    "SimPointSelection",
    "bic_score",
    "choose_k",
    "estimate_weighted",
    "kmeans",
    "profile_trace",
    "select_simpoints",
    "select_simpoints_for_trace",
    "window_slice",
]
