"""Basic-block-vector (BBV) profiling (Sherwood et al. [14]).

SimPoint characterizes program phases by counting, for each fixed-size
window of the instruction stream, how often each basic block executes.
Windows with similar vectors execute similar code, so a handful of
representative windows can stand in for the whole run.

Our traces carry PCs rather than compiler basic blocks, so blocks are
approximated by aligned code regions of ``block_bytes`` (64 B = one cache
line ≈ a few basic blocks) — the standard approximation when profiling
at trace level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..cpu.trace import TraceChunk
from ..errors import ConfigurationError


@dataclass(frozen=True)
class BBVProfile:
    """Per-window basic-block execution frequencies.

    Attributes
    ----------
    vectors: (n_windows, n_blocks) row-normalized frequency matrix.
    block_ids: column index -> block id (aligned code-region number).
    window_instructions: instructions per profiling window.
    """

    vectors: np.ndarray
    block_ids: np.ndarray
    window_instructions: int

    @property
    def n_windows(self) -> int:
        """Number of profiled windows."""
        return int(self.vectors.shape[0])

    def distance(self, i: int, j: int) -> float:
        """Manhattan distance between two windows' vectors."""
        return float(np.abs(self.vectors[i] - self.vectors[j]).sum())


class BBVProfiler:
    """Streams a trace into a :class:`BBVProfile`.

    Parameters
    ----------
    window_instructions:
        Instructions per window (the paper's SimPoint methodology uses
        fixed windows; anything from 10K to 100M works — smaller windows
        suit our shorter synthetic runs).
    block_bytes:
        Code-region granularity approximating a basic block.
    """

    def __init__(self, window_instructions: int = 100_000, block_bytes: int = 64) -> None:
        if window_instructions <= 0:
            raise ConfigurationError(
                f"window size must be positive, got {window_instructions!r}"
            )
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigurationError(
                f"block granularity must be a positive power of two, got {block_bytes!r}"
            )
        self.window_instructions = window_instructions
        self._block_shift = block_bytes.bit_length() - 1
        self._windows: List[Dict[int, int]] = []
        self._current: Dict[int, int] = {}
        self._filled = 0

    def observe(self, chunk: TraceChunk) -> None:
        """Accumulate one trace chunk into the profile."""
        pcs = chunk.pcs
        position = 0
        n = len(chunk)
        while position < n:
            take = min(n - position, self.window_instructions - self._filled)
            blocks, counts = np.unique(
                pcs[position : position + take] >> self._block_shift,
                return_counts=True,
            )
            current = self._current
            for block, count in zip(blocks, counts):
                block = int(block)
                current[block] = current.get(block, 0) + int(count)
            self._filled += take
            position += take
            if self._filled == self.window_instructions:
                self._windows.append(self._current)
                self._current = {}
                self._filled = 0

    def profile(self, drop_partial: bool = True) -> BBVProfile:
        """Finalize into a row-normalized :class:`BBVProfile`.

        ``drop_partial`` discards a trailing window that did not fill
        completely (SimPoint's convention).
        """
        windows = list(self._windows)
        if not drop_partial and self._current:
            windows.append(self._current)
        if not windows:
            raise ConfigurationError(
                "no complete profiling window; shrink window_instructions"
            )
        block_ids = sorted({block for window in windows for block in window})
        index = {block: i for i, block in enumerate(block_ids)}
        vectors = np.zeros((len(windows), len(block_ids)), dtype=np.float64)
        for row, window in enumerate(windows):
            for block, count in window.items():
                vectors[row, index[block]] = count
        totals = vectors.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return BBVProfile(
            vectors=vectors / totals,
            block_ids=np.array(block_ids, dtype=np.int64),
            window_instructions=self.window_instructions,
        )


def profile_trace(
    chunks: Iterable[TraceChunk],
    window_instructions: int = 100_000,
    block_bytes: int = 64,
) -> BBVProfile:
    """Profile a whole trace in one call."""
    profiler = BBVProfiler(window_instructions, block_bytes)
    for chunk in chunks:
        profiler.observe(chunk)
    return profiler.profile()
