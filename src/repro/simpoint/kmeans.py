"""K-means clustering (the engine under SimPoint's phase detection).

A dependency-free implementation with k-means++ seeding, Lloyd
iterations, and a Bayesian-Information-Criterion-style score used to
pick the cluster count, mirroring how SimPoint chooses k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Members per cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest_sq = np.full(n, np.inf)
    for i in range(1, k):
        distance_sq = ((points - centroids[i - 1]) ** 2).sum(axis=1)
        np.minimum(closest_sq, distance_sq, out=closest_sq)
        total = closest_sq.sum()
        if total <= 0:
            centroids[i:] = points[rng.integers(n, size=k - i)]
            break
        probabilities = closest_sq / total
        centroids[i] = points[rng.choice(n, p=probabilities)]
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 100,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups (Lloyd's algorithm)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ConfigurationError(
            f"points must be a non-empty 2-D array, got shape {points.shape}"
        )
    if not 1 <= k <= points.shape[0]:
        raise ConfigurationError(
            f"k must be in [1, n_points={points.shape[0]}], got {k!r}"
        )
    rng = np.random.default_rng(seed)
    centroids = _plus_plus_init(points, k, rng)
    labels = np.zeros(points.shape[0], dtype=np.int64)
    for _ in range(max_iterations):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                farthest = distances.min(axis=1).argmax()
                new_centroids[cluster] = points[farthest]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tolerance:
            break
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(points.shape[0]), labels].sum())
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia)


def bic_score(points: np.ndarray, result: KMeansResult) -> float:
    """BIC-style score of a clustering (higher is better).

    SimPoint picks the smallest k whose BIC is close to the best
    observed; the exact spherical-Gaussian formulation follows the
    original X-means derivation.
    """
    n, d = points.shape
    k = result.k
    if n <= k:
        return -math.inf
    variance = result.inertia / (d * (n - k))
    if variance <= 0:
        variance = 1e-12
    sizes = result.cluster_sizes()
    log_likelihood = 0.0
    for size in sizes:
        if size <= 0:
            continue
        log_likelihood += (
            size * math.log(size / n)
            - 0.5 * size * d * math.log(2.0 * math.pi * variance)
            - 0.5 * (size - 1) * d
        )
    parameters = k * (d + 1)
    return log_likelihood - 0.5 * parameters * math.log(n)


def choose_k(
    points: np.ndarray,
    max_k: int = 10,
    seed: int = 0,
    bic_threshold: float = 0.9,
) -> KMeansResult:
    """SimPoint's k selection: smallest k with near-best BIC.

    Runs k-means for k = 1..max_k, then returns the smallest k whose BIC
    reaches ``bic_threshold`` of the way from the worst to the best
    score.
    """
    points = np.asarray(points, dtype=np.float64)
    max_k = min(max_k, points.shape[0])
    results = [kmeans(points, k, seed=seed) for k in range(1, max_k + 1)]
    scores = [bic_score(points, result) for result in results]
    finite = [score for score in scores if math.isfinite(score)]
    if not finite:
        return results[0]
    best, worst = max(finite), min(finite)
    if best == worst:
        return results[0]
    cutoff = worst + bic_threshold * (best - worst)
    for result, score in zip(results, scores):
        if math.isfinite(score) and score >= cutoff:
            return result
    return results[-1]
