"""SimPoint: representative-window selection (Sherwood et al. [14]).

The paper cuts simulation cost by running only the simulation points
SimPoint selects.  This module reproduces the pipeline: profile the trace
into basic-block vectors, cluster the windows, and pick — per cluster —
the window closest to the centroid, weighted by cluster population.

:func:`estimate_weighted` then lets an experiment evaluate any per-window
metric on the selected windows only and combine the results with the
SimPoint weights, the same way the paper extrapolates whole-benchmark
behaviour from a few windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

import numpy as np

from ..cpu.trace import TraceChunk, merge_chunks
from ..errors import ConfigurationError
from .bbv import BBVProfile, profile_trace
from .kmeans import KMeansResult, choose_k, kmeans


@dataclass(frozen=True)
class SimPointSelection:
    """Chosen simulation points and their weights.

    Attributes
    ----------
    windows: indices of the representative windows, ascending.
    weights: fraction of the run each representative stands for.
    labels: cluster assignment of every window.
    window_instructions: profiling window size in instructions.
    """

    windows: np.ndarray
    weights: np.ndarray
    labels: np.ndarray
    window_instructions: int

    def __post_init__(self) -> None:
        if self.windows.shape != self.weights.shape:
            raise ConfigurationError("windows and weights must align")
        if abs(float(self.weights.sum()) - 1.0) > 1e-9:
            raise ConfigurationError("simpoint weights must sum to 1")

    @property
    def k(self) -> int:
        """Number of simulation points."""
        return int(self.windows.size)

    def coverage(self) -> float:
        """Fraction of windows the selection summarizes (always 1.0 for a
        full clustering; exposed for API symmetry with sampled modes)."""
        return 1.0


def select_simpoints(
    profile: BBVProfile,
    max_k: int = 10,
    k: int | None = None,
    seed: int = 0,
) -> SimPointSelection:
    """Cluster a BBV profile and pick representative windows.

    ``k=None`` chooses the cluster count by BIC (SimPoint's default).
    """
    points = profile.vectors
    if k is not None:
        result: KMeansResult = kmeans(points, k, seed=seed)
    else:
        result = choose_k(points, max_k=max_k, seed=seed)
    windows: List[int] = []
    weights: List[float] = []
    n = points.shape[0]
    for cluster in range(result.k):
        members = np.flatnonzero(result.labels == cluster)
        if members.size == 0:
            continue
        distances = ((points[members] - result.centroids[cluster]) ** 2).sum(axis=1)
        windows.append(int(members[distances.argmin()]))
        weights.append(members.size / n)
    order = np.argsort(windows)
    return SimPointSelection(
        windows=np.array(windows, dtype=np.int64)[order],
        weights=np.array(weights, dtype=np.float64)[order],
        labels=result.labels,
        window_instructions=profile.window_instructions,
    )


def select_simpoints_for_trace(
    chunks: Iterable[TraceChunk],
    window_instructions: int = 100_000,
    max_k: int = 10,
    seed: int = 0,
) -> SimPointSelection:
    """Profile and select in one call."""
    return select_simpoints(
        profile_trace(chunks, window_instructions), max_k=max_k, seed=seed
    )


def window_slice(
    chunks: Sequence[TraceChunk], window: int, window_instructions: int
) -> TraceChunk:
    """Extract one profiling window's instructions from a chunked trace."""
    if window < 0:
        raise ConfigurationError(f"window index cannot be negative, got {window!r}")
    start = window * window_instructions
    stop = start + window_instructions
    pieces: List[TraceChunk] = []
    position = 0
    for chunk in chunks:
        chunk_start, chunk_stop = position, position + len(chunk)
        if chunk_stop > start and chunk_start < stop:
            lo = max(start - chunk_start, 0)
            hi = min(stop - chunk_start, len(chunk))
            pieces.append(chunk.slice(lo, hi))
        position = chunk_stop
        if position >= stop:
            break
    if not pieces:
        raise ConfigurationError(
            f"window {window} lies beyond the end of the trace"
        )
    return merge_chunks(pieces)


def estimate_weighted(
    selection: SimPointSelection,
    metric: Callable[[int], float],
) -> float:
    """Weighted combination of a per-window metric over the simpoints.

    ``metric(window_index)`` evaluates the quantity of interest (miss
    rate, leakage saving, IPC...) on one representative window; the
    return value is the SimPoint estimate for the whole run.
    """
    total = 0.0
    for window, weight in zip(selection.windows, selection.weights):
        total += weight * metric(int(window))
    return total
