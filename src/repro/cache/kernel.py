"""Batched simulation kernel: chunk-at-a-time cache and timing processing.

The scalar simulation path calls :meth:`SetAssociativeCache.access_block`
once per fetch group and data access — millions of Python-level calls per
run.  This module processes whole trace chunks at a time instead, while
staying *bit-identical* to the scalar path:

1. **Vectorized front end** — fetch-group run-length dedup of
   ``pcs >> group_bits``, ``NO_ACCESS`` filtering, and per-cache
   classification of every access into *fast path* or *residual*.

2. **Fast path** — an access is a guaranteed hit, for any replacement
   policy and associativity (direct-mapped included), when the previous
   access to the same *set* touched the same block: a block can only
   leave the cache through an intervening fill in its set.  These
   accesses (the common case: sequential fetch runs, hot lines) are
   resolved in one vectorized pass per chunk — no tag probe, no policy
   call, no per-event Python.

3. **Residual loop** — the (small) remaining stream of potential misses
   and conflicts runs through a tight scalar loop that probes tags, picks
   victims through the real replacement policy state, charges L2/memory
   latencies and accrues pipeline stalls.

Timing closes the loop exactly: the fixed-point issue clock
(:mod:`repro.cpu.pipeline`) gives instruction ``i`` the closed-form base
issue time ``(i * cpi_fp) >> CPI_FP_BITS``, fast-path accesses never miss
and therefore never stall, so the stall prefix at every instruction is
determined by the residual stream alone.  Access times for the fast path
are reconstructed vectorially afterwards from the residual stall records,
and interval records are emitted to the
:class:`~repro.cache.generations.GenerationTracker` in exact event order.

Replacement-policy exactness: folding a run of same-block accesses into
one deferred ``last-touch`` update is exact for LRU (only the final touch
time matters, applied before the next same-set event reads the state),
and trivially exact for FIFO and random (access recency is ignored).
Policies outside that trio are rejected — callers fall back to the
scalar path.
"""

from __future__ import annotations

import ctypes
import os
import time as _time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from ..core.intervals import IntervalKind
from ..cpu.pipeline import CPI_FP_BITS, IssueClock
from ..cpu.trace import NO_ACCESS, STORE, TraceChunk
from ..errors import ConfigurationError, SimulationError, TraceValidationError
from . import native
from .cache import INVALID, SetAssociativeCache
from .hierarchy import MemoryHierarchy
from .replacement import FifoPolicy, LruPolicy, RandomPolicy

_NORMAL = int(IntervalKind.NORMAL)
_DEAD = int(IntervalKind.DEAD)
_COLD = int(IntervalKind.COLD)

#: Replacement policies whose on-access state the kernel can fold exactly.
EXACT_POLICIES = (LruPolicy, FifoPolicy, RandomPolicy)

#: Environment knob selecting the simulation kernel (see
#: :func:`resolve_kernel_mode`).
ENV_KERNEL = "REPRO_KERNEL"

#: Accepted kernel selectors.  ``auto`` resolves to ``compiled`` when
#: the native residual library is loadable and ``batched`` otherwise.
KERNEL_MODES = ("auto", "scalar", "batched", "compiled")

#: Residual-loop implementations inside the batched kernel.
RESIDUAL_IMPLS = ("python", "compiled")


def resolve_kernel_mode(value: object = None) -> str:
    """Resolve a kernel selector to ``scalar``/``batched``/``compiled``.

    ``value`` may be a mode string, a legacy bool (``True`` = batched,
    ``False`` = scalar), or ``None`` — which consults ``REPRO_KERNEL``
    and defaults to ``auto``.  ``auto`` prefers the compiled residual
    loop when the host can build/load it (:mod:`repro.cache.native`)
    and degrades to the pure-python batched loop otherwise, so a
    pure-python environment resolves identically everywhere with no
    configuration.
    """
    if value is None:
        value = os.environ.get(ENV_KERNEL, "").strip() or "auto"
    if isinstance(value, bool):
        value = "batched" if value else "scalar"
    mode = str(value).strip().lower()
    if mode not in KERNEL_MODES:
        raise ConfigurationError(
            f"unknown kernel mode {value!r}; choose one of "
            f"{list(KERNEL_MODES)} (also settable via {ENV_KERNEL})"
        )
    if mode == "auto":
        return "compiled" if native.native_available() else "batched"
    return mode


def resolve_residual_impl(residual: Optional[str] = None) -> str:
    """Resolve the residual-loop implementation for the batched kernel.

    ``None`` follows the resolved kernel mode; ``"compiled"`` degrades
    to ``"python"`` when the native library is unavailable — requesting
    the compiled loop is a preference, never a hard requirement, so
    compiler-less hosts run the whole suite unchanged.
    """
    if residual is None:
        mode = resolve_kernel_mode()
        residual = "compiled" if mode == "compiled" else "python"
    impl = str(residual).strip().lower()
    if impl not in RESIDUAL_IMPLS:
        raise ConfigurationError(
            f"unknown residual implementation {residual!r}; choose one of "
            f"{list(RESIDUAL_IMPLS)}"
        )
    if impl == "compiled" and not native.native_available():
        return "python"
    return impl


@dataclass(frozen=True)
class SimulationProfile:
    """Where a simulation's accesses and wall time went.

    ``fast_path_accesses`` counts L1 accesses resolved by the vectorized
    guaranteed-hit pass; ``slow_path_accesses`` counts residual-loop (or
    scalar-path) accesses.  ``stage_seconds`` holds per-stage wall time
    for the batched pipeline (empty for scalar runs).
    """

    mode: str  #: ``"batched"`` or ``"scalar"``.
    fast_path_accesses: int = 0
    slow_path_accesses: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Which residual implementation ran: ``"python"`` or ``"compiled"``
    #: for batched runs, ``"scalar"`` for the oracle path.
    residual_impl: str = "python"

    @property
    def total_accesses(self) -> int:
        return self.fast_path_accesses + self.slow_path_accesses

    @property
    def fast_path_share(self) -> float:
        """Fraction of L1 accesses resolved on the fast path (0..1)."""
        total = self.total_accesses
        return self.fast_path_accesses / total if total else 0.0

    def to_dict(self) -> Dict:
        """JSON-ready record for manifests and telemetry."""
        return {
            "mode": self.mode,
            "residual_impl": self.residual_impl,
            "fast_path_accesses": int(self.fast_path_accesses),
            "slow_path_accesses": int(self.slow_path_accesses),
            "fast_path_share": float(self.fast_path_share),
            "stage_seconds": {
                k: float(v) for k, v in sorted(self.stage_seconds.items())
            },
        }


def kernel_supported(hierarchy: MemoryHierarchy) -> bool:
    """Whether the batched kernel reproduces this hierarchy exactly."""
    if type(hierarchy) is not MemoryHierarchy:
        return False
    for cache in (hierarchy.l1i, hierarchy.l1d):
        if type(cache) is not SetAssociativeCache:
            return False
        if type(cache.replacement) not in EXACT_POLICIES:
            return False
        if cache.stats.accesses:  # the kernel must own the cache from cold
            return False
    return True


class _Lane:
    """Batched per-cache state: carries, aliases into the scalar cache."""

    def __init__(self, cache: SetAssociativeCache) -> None:
        if type(cache.replacement) not in EXACT_POLICIES:
            raise SimulationError(
                "batched kernel supports lru/fifo/random replacement only; "
                f"got {type(cache.replacement).__name__}"
            )
        if cache.stats.accesses:
            raise SimulationError(
                "batched kernel must attach to a fresh cache"
            )
        self.cache = cache
        config = cache.config
        self.assoc = config.associativity
        self.set_mask = config.n_sets - 1
        self.offset_bits = config.offset_bits
        self.n_sets = config.n_sets
        self.tags = cache._tags  # shared list: scalar ops in the loop
        self.blocks_seen = cache._blocks_seen
        self.tracker = cache.tracker
        self.start_time = cache.tracker.start_time if cache.tracker else 0
        self.frame_last = [-1] * config.n_lines
        policy = cache.replacement
        self.lru_touch = policy._last_touch if isinstance(policy, LruPolicy) else None
        self.fifo_next = policy._next_way if isinstance(policy, FifoPolicy) else None
        self.rng = policy._rng if isinstance(policy, RandomPolicy) else None
        # Classification carries across chunks.  -2 marks "no event yet"
        # (block numbers are non-negative).
        self.set_last_block = np.full(config.n_sets, -2, dtype=np.int64)
        self.set_last_time = np.zeros(config.n_sets, dtype=np.int64)
        self.set_last_frame = [-1] * config.n_sets
        # Per-run totals for the profile.
        self.fast_accesses = 0
        self.slow_accesses = 0

    def classify(self, blocks: np.ndarray):
        """Split one chunk's access stream into fast-path and residual.

        Returns ``(sets, order, ssets, sblocks, firsts, fast, pred)``:
        the set index per event, the stable set-sort permutation and the
        sorted views, the first-of-set mask (in sorted order), the
        fast-path mask and the same-set predecessor index (original event
        order; ``-1`` for the first event of a set in this chunk).
        """
        count = len(blocks)
        sets = blocks & self.set_mask
        order = np.argsort(sets, kind="stable")
        ssets = sets[order]
        sblocks = blocks[order]
        firsts = np.empty(count, dtype=bool)
        same = np.empty(count, dtype=bool)
        firsts[0] = True
        np.not_equal(ssets[1:], ssets[:-1], out=firsts[1:])
        same[0] = False
        np.equal(sblocks[1:], sblocks[:-1], out=same[1:])
        same[1:] &= ~firsts[1:]
        # First event of each set continues (or breaks) the previous
        # chunk's trailing run.
        same[firsts] = self.set_last_block[ssets[firsts]] == sblocks[firsts]
        fast = np.empty(count, dtype=bool)
        fast[order] = same
        pred_sorted = np.full(count, -1, dtype=np.int64)
        if count > 1:
            cont = ~firsts[1:]
            pred_sorted[1:][cont] = order[:-1][cont]
        pred = np.empty(count, dtype=np.int64)
        pred[order] = pred_sorted
        return sets, order, ssets, sblocks, firsts, fast, pred

    def catchup_positions(
        self, res_idx: np.ndarray, pred: np.ndarray, fast: np.ndarray,
        pos: np.ndarray,
    ) -> np.ndarray:
        """Per residual event: position of the fast run it must catch up.

        A residual event whose same-set predecessor is a fast-path access
        ends that run; before the event touches the set it must apply the
        run's final access time to the replacement and tracker state.
        Returns ``-1`` where there is nothing to catch up.
        """
        out = np.full(len(res_idx), -1, dtype=np.int64)
        p = pred[res_idx]
        has = p >= 0
        pi = p[has]
        out[has] = np.where(fast[pi], pos[pi], -1)
        return out

    def flush_stats(self, accesses: int, hits: int, misses: int,
                    compulsory: int, evictions: int) -> None:
        stats = self.cache.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += misses
        stats.compulsory_misses += compulsory
        stats.evictions += evictions

    def close_trailing_runs(self, sets, t_ev, trailing_idx) -> None:
        """Chunk-end catch-up of runs still open when the chunk ended."""
        frame_last = self.frame_last
        lru_touch = self.lru_touch
        set_last_frame = self.set_last_frame
        for event in trailing_idx.tolist():
            frame = set_last_frame[sets[event]]
            stamp = int(t_ev[event])
            frame_last[frame] = stamp
            if lru_touch is not None:
                lru_touch[frame] = stamp

    def sync_tracker(self) -> None:
        """Write the folded per-frame last-access times back."""
        if self.tracker is not None:
            self.tracker.set_last_access(
                np.asarray(self.frame_last, dtype=np.int64)
            )


def _emit_intervals(lane: _Lane, gaps_fast_keys, gaps_fast, res_keys,
                    res_gaps, res_kinds) -> None:
    """Merge fast-path and residual interval records into event order."""
    if lane.tracker is None:
        return
    fast_kinds = np.full(len(gaps_fast_keys), _NORMAL, dtype=np.uint8)
    keys = np.concatenate([gaps_fast_keys, res_keys])
    gaps = np.concatenate([gaps_fast, res_gaps])
    kinds = np.concatenate([fast_kinds, res_kinds])
    merged = np.argsort(keys, kind="stable")
    lane.tracker.extend(gaps[merged], kinds[merged])


def _event_frames(lane: _Lane, count, order, ssets, firsts, fast, res_frames,
                  carry_frames) -> np.ndarray:
    """Frame touched by every event, reconstructed for annotation.

    Residual frames come from the loop; a fast event touches its run's
    frame, forward-filled from the nearest earlier same-set event (or the
    pre-chunk carry for a run continuing across the chunk boundary).
    """
    frames = np.full(count, -1, dtype=np.int64)
    frames[np.flatnonzero(~fast)] = res_frames
    sorted_frames = frames[order]
    boundary = firsts & (sorted_frames == -1)
    sorted_frames[boundary] = carry_frames[ssets[boundary]]
    valid = sorted_frames >= 0
    seed = np.where(valid, np.arange(count), 0)
    np.maximum.accumulate(seed, out=seed)
    filled = sorted_frames[seed]
    frames[order] = filled
    return frames


def _compiled_timed_chunk(
    lib, lane_i, lane_d, miss_cb, rng_cb, timing, stalls,
    m_pos, m_is_d, m_block, m_set, m_catch, m_base, m_cbase, m_store,
):
    """Run one chunk's merged residual stream through the C loop.

    Returns ``(stalls, stall_positions, stall_totals, records_i,
    records_d, counters_i, counters_d)`` with the same content the
    python residual loop would have produced (records as arrays instead
    of lists; the assembly stage accepts either).
    """
    n = len(m_pos)
    n_d = int(np.count_nonzero(m_is_d))
    bridge_i = native.LaneBridge(lane_i, n - n_d, want_frames=True)
    bridge_d = native.LaneBridge(lane_d, n_d, want_frames=True)
    bridge_d.set_lane_id(1)
    cfg = native.make_config(
        invalid_tag=INVALID,
        kind_normal=_NORMAL,
        kind_cold=_COLD,
        kind_dead=_DEAD,
        chunk_start_stalls=stalls,
        **timing,
    )
    stall_positions = np.empty(n, dtype=np.int64)
    stall_totals = np.empty(n, dtype=np.int64)
    n_stalls = np.zeros(1, dtype=np.int64)
    is_d_u8 = np.ascontiguousarray(m_is_d).view(np.uint8)
    store_u8 = np.ascontiguousarray(m_store).view(np.uint8)
    stalls = int(
        lib.repro_residual_timed(
            n,
            native.ptr_i64(np.ascontiguousarray(m_pos)),
            native.ptr_u8(is_d_u8),
            native.ptr_i64(np.ascontiguousarray(m_block)),
            native.ptr_i64(np.ascontiguousarray(m_set)),
            native.ptr_i64(np.ascontiguousarray(m_catch)),
            native.ptr_i64(np.ascontiguousarray(m_base)),
            native.ptr_i64(np.ascontiguousarray(m_cbase)),
            native.ptr_u8(store_u8),
            ctypes.byref(bridge_i.struct),
            ctypes.byref(bridge_d.struct),
            ctypes.byref(cfg),
            miss_cb,
            rng_cb,
            native.ptr_i64(stall_positions),
            native.ptr_i64(stall_totals),
            native.ptr_i64(n_stalls),
        )
    )
    bridge_i.writeback()
    bridge_d.writeback()
    count = int(n_stalls[0])
    return (
        stalls,
        stall_positions[:count],
        stall_totals[:count],
        bridge_i.records(),
        bridge_d.records(),
        bridge_i.counters(),
        bridge_d.counters(),
    )


class BatchedCacheKernel:
    """Array-at-a-time access engine for one :class:`SetAssociativeCache`.

    Accepts arrays of ``(block, time)`` per chunk and applies them with
    results bit-identical to calling :meth:`~SetAssociativeCache.
    access_block` in a loop: same statistics, same evictions, same
    generation intervals in the same order.  Attach to a *fresh* cache;
    times must be non-decreasing across all calls.

    This is the standalone form of the kernel (used directly by tests and
    by array-driven workloads); the trace simulator drives the same lane
    machinery through :func:`run_batched`, where access times additionally
    depend on the misses the kernel itself discovers.
    """

    def __init__(
        self, cache: SetAssociativeCache, residual: Optional[str] = None
    ) -> None:
        self._lane = _Lane(cache)
        self.cache = cache
        #: Residual implementation actually in use ("python"/"compiled").
        self.residual_impl = resolve_residual_impl(residual)
        self._seen_cb = None
        self._rng_cb = None
        if self.residual_impl == "compiled":
            lanes = (self._lane, self._lane)
            self._seen_cb = native.make_seen_cb(lanes)
            self._rng_cb = native.make_rng_cb(lanes)

    def access_blocks(self, blocks: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Access ``blocks[k]`` at ``times[k]``; returns the hit mask."""
        blocks = np.ascontiguousarray(blocks, dtype=np.int64)
        times = np.ascontiguousarray(times, dtype=np.int64)
        if blocks.shape != times.shape:
            raise SimulationError("blocks and times must align")
        count = len(blocks)
        if count == 0:
            return np.zeros(0, dtype=bool)
        if bool(np.any(np.diff(times) < 0)) or (
            int(times[0]) < int(self._lane.set_last_time.max())
        ):
            raise TraceValidationError(
                "access times must be non-decreasing: the trace's timestamps "
                "move backwards (within this batch or relative to an earlier "
                "one); sort the trace by time before feeding it to the kernel"
            )
        lane = self._lane
        sets, order, ssets, sblocks, firsts, fast, pred = lane.classify(blocks)
        hits = fast.copy()
        res_idx = np.flatnonzero(~fast)
        catch = lane.catchup_positions(res_idx, pred, fast, np.arange(count))
        lane.fast_accesses += int(fast.sum())
        lane.slow_accesses += len(res_idx)

        if self.residual_impl == "compiled" and len(res_idx):
            records, counters = self._access_residual_compiled(
                hits, blocks, times, sets, res_idx, catch
            )
            res_keys, res_gaps, res_kinds = records
            n_hits, n_miss, n_comp, n_evict = counters
        else:
            # Residual loop (times are inputs; no stall bookkeeping).
            tags = lane.tags
            assoc = lane.assoc
            frame_last = lane.frame_last
            lru_touch = lane.lru_touch
            fifo_next = lane.fifo_next
            rng = lane.rng
            blocks_seen = lane.blocks_seen
            set_last_frame = lane.set_last_frame
            start_time = lane.start_time
            res_keys, res_gaps, res_kinds = [], [], []
            n_hits = n_miss = n_comp = n_evict = 0
            for event, block, set_index, catch_pos in zip(
                res_idx.tolist(),
                blocks[res_idx].tolist(),
                sets[res_idx].tolist(),
                catch.tolist(),
            ):
                now = int(times[event])
                if catch_pos >= 0:
                    stamp = int(times[catch_pos])
                    run_frame = set_last_frame[set_index]
                    frame_last[run_frame] = stamp
                    if lru_touch is not None:
                        lru_touch[run_frame] = stamp
                base = set_index * assoc
                way = -1
                for candidate in range(assoc):
                    if tags[base + candidate] == block:
                        way = candidate
                        break
                if way >= 0:
                    n_hits += 1
                    hits[event] = True
                    frame = base + way
                    last = frame_last[frame]
                    gap = now - last
                    if gap > 0:
                        res_keys.append(event)
                        res_gaps.append(gap)
                        res_kinds.append(_NORMAL)
                else:
                    n_miss += 1
                    if block not in blocks_seen:
                        n_comp += 1
                        blocks_seen.add(block)
                    victim = -1
                    for candidate in range(assoc):
                        if tags[base + candidate] == INVALID:
                            victim = candidate
                            break
                    if victim < 0:
                        if lru_touch is not None:
                            window = lru_touch[base : base + assoc]
                            victim = window.index(min(window))
                        elif fifo_next is not None:
                            victim = fifo_next[set_index]
                            fifo_next[set_index] = (victim + 1) % assoc
                        else:
                            victim = rng.randrange(assoc)
                        n_evict += 1
                    frame = base + victim
                    tags[frame] = block
                    last = frame_last[frame]
                    if last == -1:
                        gap = now - start_time
                        kind = _COLD
                    else:
                        gap = now - last
                        kind = _DEAD
                    if gap > 0:
                        res_keys.append(event)
                        res_gaps.append(gap)
                        res_kinds.append(kind)
                if lru_touch is not None:
                    lru_touch[frame] = now
                frame_last[frame] = now
                set_last_frame[set_index] = frame

        lane.flush_stats(count, n_hits + int(fast.sum()), n_miss, n_comp, n_evict)

        # Fast-path interval records (vectorized), then merge in order.
        fast_idx = np.flatnonzero(fast)
        if len(fast_idx):
            fast_pred = pred[fast_idx]
            prev_times = np.where(
                fast_pred >= 0,
                times[np.maximum(fast_pred, 0)],
                lane.set_last_time[sets[fast_idx]],
            )
            fast_gaps = times[fast_idx] - prev_times
            keep = fast_gaps > 0
            fast_keys = fast_idx[keep]
            fast_gaps = fast_gaps[keep]
        else:
            fast_keys = np.zeros(0, dtype=np.int64)
            fast_gaps = np.zeros(0, dtype=np.int64)
        _emit_intervals(
            lane, fast_keys, fast_gaps,
            np.asarray(res_keys, dtype=np.int64),
            np.asarray(res_gaps, dtype=np.int64),
            np.asarray(res_kinds, dtype=np.uint8),
        )

        # Chunk-end carries: per-set last block/time, trailing-run catch-up.
        last_of_set = np.empty(count, dtype=bool)
        last_of_set[-1] = True
        np.not_equal(ssets[1:], ssets[:-1], out=last_of_set[:-1])
        last_idx = order[last_of_set]
        lane.set_last_block[ssets[last_of_set]] = sblocks[last_of_set]
        lane.set_last_time[ssets[last_of_set]] = times[last_idx]
        lane.close_trailing_runs(sets, times, last_idx[fast[last_idx]])
        return hits

    def _access_residual_compiled(self, hits, blocks, times, sets, res_idx, catch):
        """One chunk's residual stream through the C loop (access form)."""
        lane = self._lane
        lib = native.load_native()
        n_res = len(res_idx)
        bridge = native.LaneBridge(lane, n_res, want_frames=False)
        cfg = native.make_config(
            invalid_tag=INVALID,
            kind_normal=_NORMAL,
            kind_cold=_COLD,
            kind_dead=_DEAD,
        )
        hit_out = np.zeros(n_res, dtype=np.uint8)
        lib.repro_residual_access(
            n_res,
            native.ptr_i64(np.ascontiguousarray(res_idx)),
            native.ptr_i64(np.ascontiguousarray(blocks[res_idx])),
            native.ptr_i64(np.ascontiguousarray(sets[res_idx])),
            native.ptr_i64(np.ascontiguousarray(catch)),
            native.ptr_i64(times),
            ctypes.byref(bridge.struct),
            ctypes.byref(cfg),
            self._seen_cb,
            self._rng_cb,
            native.ptr_u8(hit_out),
        )
        bridge.writeback()
        hits[res_idx[hit_out.astype(bool)]] = True
        keys, gaps, kinds, _ = bridge.records()
        return (keys, gaps, kinds), bridge.counters()

    def finish(self, end_time: int) -> None:
        """Sync folded state and close the cache's generation timelines."""
        self._lane.sync_tracker()
        self.cache.finish(end_time)

    @property
    def profile_counts(self):
        """``(fast_path, slow_path)`` access counts so far."""
        return self._lane.fast_accesses, self._lane.slow_accesses


@dataclass(frozen=True)
class BatchedRunResult:
    """Timing outcome of :func:`run_batched` (intervals land in-place)."""

    cycles: int
    instructions: int
    stall_cycles: int
    profile: SimulationProfile


def validate_chunk(chunk: TraceChunk, index: Optional[int] = None) -> TraceChunk:
    """Validate one chunk at the simulation entry point.

    The :class:`~repro.cpu.trace.TraceChunk` constructor enforces these
    invariants, but real traces arrive through readers, adapters and
    pickles that can hand the kernel arrays mutated or built after
    construction.  Checking up front turns a crash (or silent garbage)
    deep in the residual loop into a named, actionable error.
    """
    label = "trace chunk" if index is None else f"trace chunk {index}"
    if not isinstance(chunk, TraceChunk):
        raise TraceValidationError(
            f"{label}: expected a TraceChunk, got {type(chunk).__name__}; "
            "build chunks with repro.cpu.trace.TraceChunk or stream them "
            "with repro.traces"
        )
    pcs, addrs, kinds = chunk.pcs, chunk.data_addresses, chunk.data_kinds
    for name, array, dtype in (
        ("pcs", pcs, np.int64),
        ("data_addresses", addrs, np.int64),
        ("data_kinds", kinds, np.uint8),
    ):
        if not isinstance(array, np.ndarray) or array.dtype != dtype:
            got = getattr(array, "dtype", type(array).__name__)
            raise TraceValidationError(
                f"{label}: {name} must be a numpy array of dtype "
                f"{np.dtype(dtype).name}, got {got}"
            )
        if array.ndim != 1:
            raise TraceValidationError(
                f"{label}: {name} must be one-dimensional, got shape "
                f"{array.shape}"
            )
    if not (pcs.shape == addrs.shape == kinds.shape):
        raise TraceValidationError(
            f"{label}: column lengths differ (pcs {pcs.shape[0]}, "
            f"data_addresses {addrs.shape[0]}, data_kinds {kinds.shape[0]})"
        )
    if pcs.size:
        if int(pcs.min()) < 0:
            raise TraceValidationError(
                f"{label}: program counters must be non-negative"
            )
        if int(kinds.max()) > STORE:
            raise TraceValidationError(
                f"{label}: unknown data kind {int(kinds.max())}; kinds must "
                f"be NO_ACCESS (0), LOAD (1) or STORE (2)"
            )
        if bool(np.any((kinds != NO_ACCESS) & (addrs < 0))):
            raise TraceValidationError(
                f"{label}: load/store instructions must carry a data address "
                "(data_addresses >= 0)"
            )
        if bool(np.any((kinds == NO_ACCESS) & (addrs >= 0))):
            raise TraceValidationError(
                f"{label}: non-memory instructions must use data address -1 "
                "(an address is present but the kind says NO_ACCESS)"
            )
    return chunk


def validated_chunks(trace: Iterable[TraceChunk]) -> Iterable[TraceChunk]:
    """Wrap a chunk stream so every chunk is validated as it is consumed."""
    for index, chunk in enumerate(trace):
        yield validate_chunk(chunk, index)


def _assemble_chunk(
    lane_i, lane_d, plans, counters, res_records_i, res_records_d,
    i_observer, d_observer, ipos, dpos, iblocks, dblocks, dstores,
    pcs, addrs, instructions, cpi_fp, stall_pos_arr, stall_tot_arr,
    chunk_start_stalls, stage, perf,
):
    """Assembly stage of :func:`run_batched` for one chunk.

    Reconstructs every access time, emits intervals in event order, rolls
    the carries, and feeds the annotation observers.  Residual records may
    be python lists (pure-python residual) or numpy arrays (compiled
    residual); the two produce identical output.
    """
    t_start = perf()
    for lane, pos, blocks, records, observer in (
        (lane_i, ipos, iblocks, res_records_i, i_observer),
        (lane_d, dpos, dblocks, res_records_d, d_observer),
    ):
        if len(blocks) == 0:
            continue
        (sets, order, ssets, sblocks, firsts, fast, pred, res_idx,
         _, carry_frames) = plans[id(lane)]
        if len(stall_pos_arr):
            record_index = np.searchsorted(stall_pos_arr, pos, side="left")
            stall_prefix = np.where(
                record_index > 0,
                stall_tot_arr[np.maximum(record_index - 1, 0)],
                chunk_start_stalls,
            )
        else:
            stall_prefix = chunk_start_stalls
        t_ev = (((instructions + pos) * cpi_fp) >> CPI_FP_BITS) + stall_prefix
        fast_idx = np.flatnonzero(fast)
        if len(fast_idx):
            fast_pred = pred[fast_idx]
            prev_times = np.where(
                fast_pred >= 0,
                t_ev[np.maximum(fast_pred, 0)],
                lane.set_last_time[sets[fast_idx]],
            )
            fast_gaps = t_ev[fast_idx] - prev_times
            keep = fast_gaps > 0
            fast_keys = pos[fast_idx[keep]]
            fast_gaps = fast_gaps[keep]
        else:
            fast_keys = np.zeros(0, dtype=np.int64)
            fast_gaps = np.zeros(0, dtype=np.int64)
        keys_out, gaps_out, kinds_out, frames_out = records
        _emit_intervals(
            lane, fast_keys, fast_gaps,
            np.asarray(keys_out, dtype=np.int64),
            np.asarray(gaps_out, dtype=np.int64),
            np.asarray(kinds_out, dtype=np.uint8),
        )
        hits, misses, compulsory, evictions = counters[id(lane)]
        lane.flush_stats(
            len(blocks), hits + int(fast.sum()), misses, compulsory, evictions
        )
        last_of_set = np.empty(len(blocks), dtype=bool)
        last_of_set[-1] = True
        np.not_equal(ssets[1:], ssets[:-1], out=last_of_set[:-1])
        last_idx = order[last_of_set]
        lane.set_last_block[ssets[last_of_set]] = sblocks[last_of_set]
        lane.set_last_time[ssets[last_of_set]] = t_ev[last_idx]
        lane.close_trailing_runs(sets, t_ev, last_idx[fast[last_idx]])
        if observer is not None:
            frames = _event_frames(
                lane, len(blocks), order, ssets, firsts, fast,
                np.asarray(frames_out, dtype=np.int64), carry_frames,
            )
            stage["assembly"] += perf() - t_start
            t_start = perf()
            if lane is lane_d:
                observer(blocks, frames, t_ev, pcs[pos], addrs[pos], dstores)
            else:
                observer(blocks, frames, t_ev)
            stage["annotate"] += perf() - t_start
            t_start = perf()
    stage["assembly"] += perf() - t_start


def run_batched(
    hierarchy: MemoryHierarchy,
    clock: IssueClock,
    trace: Iterable[TraceChunk],
    i_observer: Optional[Callable] = None,
    d_observer: Optional[Callable] = None,
    residual: Optional[str] = None,
) -> BatchedRunResult:
    """Drive a full hierarchy through the batched kernel.

    Consumes the trace chunk by chunk, mirrors every observable side
    effect of the scalar simulation path (cache statistics, replacement
    and tracker state, L2 accesses, the issue clock), calls
    ``hierarchy.finish`` and syncs ``clock``, returning the timing totals
    plus the run profile.

    ``i_observer(blocks, frames, times)`` and ``d_observer(blocks,
    frames, times, pcs, addresses, stores)`` are invoked once per chunk
    with per-access arrays in event order — the prefetchability annotator
    hooks in here without perturbing the kernel.
    """
    if not kernel_supported(hierarchy):
        raise SimulationError("hierarchy is not supported by the batched kernel")
    lane_i = _Lane(hierarchy.l1i)
    lane_d = _Lane(hierarchy.l1d)
    config = clock.config
    cpi_fp = clock._cpi_fp
    group_bits = config.fetch_group_bytes.bit_length() - 1
    stall_on_miss = config.stall_on_miss
    load_mlp = config.load_mlp
    store_buffer = config.store_buffer
    l1i_hit = hierarchy.config.l1i.hit_latency
    l1d_hit = hierarchy.config.l1d.hit_latency
    l2_hit = hierarchy.config.l2.hit_latency
    memory_latency = hierarchy.config.l2.hit_latency + hierarchy.config.memory_latency
    l2_access = hierarchy.l2.access_block
    annotate = i_observer is not None or d_observer is not None

    residual_impl = resolve_residual_impl(residual)
    if residual_impl == "compiled":
        native_lib = native.load_native()
        native_miss_cb = native.make_miss_cb((lane_i, lane_d), l2_access)
        native_rng_cb = native.make_rng_cb((lane_i, lane_d))
        native_timing = {
            "l1i_hit": l1i_hit,
            "l1d_hit": l1d_hit,
            "l2_hit": l2_hit,
            "memory_latency": memory_latency,
            "stall_on_miss": int(bool(stall_on_miss)),
            "load_mlp": load_mlp,
            "store_buffer": int(bool(store_buffer)),
        }
    else:
        native_lib = None

    prev_igroup = -1
    instructions = 0  # instructions consumed before the current chunk
    stalls = 0  # cumulative stall cycles
    stage = {"frontend": 0.0, "residual": 0.0, "assembly": 0.0, "annotate": 0.0}
    perf = _time.perf_counter

    for chunk_index, chunk in enumerate(trace):
        validate_chunk(chunk, chunk_index)
        n = len(chunk)
        if n == 0:
            continue
        t_start = perf()
        pcs = chunk.pcs
        addrs = chunk.data_addresses
        kinds = chunk.data_kinds

        igroups = pcs >> group_bits
        imask = np.empty(n, dtype=bool)
        imask[0] = int(igroups[0]) != prev_igroup
        np.not_equal(igroups[1:], igroups[:-1], out=imask[1:])
        prev_igroup = int(igroups[-1])
        ipos = np.flatnonzero(imask)
        iblocks = pcs[ipos] >> lane_i.offset_bits
        dpos = np.flatnonzero(kinds != NO_ACCESS)
        dblocks = addrs[dpos] >> lane_d.offset_bits
        dstores = kinds[dpos] == STORE

        plans = {}
        for lane, pos, blocks in (
            (lane_i, ipos, iblocks),
            (lane_d, dpos, dblocks),
        ):
            if len(blocks):
                sets, order, ssets, sblocks, firsts, fast, pred = lane.classify(blocks)
            else:
                sets = order = ssets = sblocks = pred = np.zeros(0, dtype=np.int64)
                firsts = fast = np.zeros(0, dtype=bool)
            res_idx = np.flatnonzero(~fast)
            catch = lane.catchup_positions(res_idx, pred, fast, pos)
            lane.fast_accesses += len(blocks) - len(res_idx)
            lane.slow_accesses += len(res_idx)
            carry_frames = (
                np.asarray(lane.set_last_frame, dtype=np.int64) if annotate else None
            )
            plans[id(lane)] = (
                sets, order, ssets, sblocks, firsts, fast, pred, res_idx,
                catch, carry_frames,
            )

        sets_i, _, _, _, _, fast_i, _, res_i, catch_i, _ = plans[id(lane_i)]
        sets_d, _, _, _, _, fast_d, _, res_d, catch_d, _ = plans[id(lane_d)]

        # Merge both lanes' residual events by (instruction, I-before-D).
        key_i = ipos[res_i] << np.int64(1)
        key_d = (dpos[res_d] << np.int64(1)) | np.int64(1)
        keys = np.concatenate([key_i, key_d])
        morder = np.argsort(keys, kind="stable")
        m_pos = (keys >> 1)[morder]
        m_is_d = (keys & 1).astype(bool)[morder]
        m_block = np.concatenate([iblocks[res_i], dblocks[res_d]])[morder]
        m_set = np.concatenate([sets_i[res_i], sets_d[res_d]])[morder]
        m_catch = np.concatenate([catch_i, catch_d])[morder]
        m_store = np.concatenate(
            [np.zeros(len(res_i), dtype=bool), dstores[res_d]]
        )[morder]
        m_base = ((instructions + m_pos) * cpi_fp) >> CPI_FP_BITS
        m_cbase = ((instructions + np.maximum(m_catch, 0)) * cpi_fp) >> CPI_FP_BITS
        stage["frontend"] += perf() - t_start

        # ------------------------------------------------------------------
        # Residual loop: the only per-event Python in the batched path.
        # Mirrors SetAssociativeCache.access_block_ex plus the simulator's
        # stall rules, with the policy/tracker state folded per run.
        # ------------------------------------------------------------------
        t_start = perf()
        chunk_start_stalls = stalls
        if native_lib is not None:
            if len(m_pos):
                (
                    stalls,
                    stall_positions,
                    stall_totals,
                    res_records_i,
                    res_records_d,
                    counters_i,
                    counters_d,
                ) = _compiled_timed_chunk(
                    native_lib, lane_i, lane_d, native_miss_cb, native_rng_cb,
                    native_timing, stalls,
                    m_pos, m_is_d, m_block, m_set, m_catch, m_base, m_cbase,
                    m_store,
                )
            else:
                stall_positions = stall_totals = np.zeros(0, dtype=np.int64)
                res_records_i = res_records_d = (
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.uint8),
                    np.zeros(0, dtype=np.int64),
                )
                counters_i = counters_d = [0, 0, 0, 0]
            counters = {id(lane_i): counters_i, id(lane_d): counters_d}
            stage["residual"] += perf() - t_start
            _assemble_chunk(
                lane_i, lane_d, plans, counters, res_records_i, res_records_d,
                i_observer, d_observer, ipos, dpos, iblocks, dblocks, dstores,
                pcs, addrs, instructions, cpi_fp,
                np.asarray(stall_positions, dtype=np.int64),
                np.asarray(stall_totals, dtype=np.int64),
                chunk_start_stalls, stage, perf,
            )
            instructions += n
            continue
        stall_positions: list = []  # chunk-local instruction positions
        stall_totals: list = []  # cumulative stalls after each record
        current_pos = -1
        stalls_at_pos = stalls
        res_records_i = ([], [], [], [])  # keys, gaps, kinds, frames
        res_records_d = ([], [], [], [])
        counters = {id(lane_i): [0, 0, 0, 0], id(lane_d): [0, 0, 0, 0]}
        for pos, is_d, block, set_index, catch_pos, base_time, catch_base, is_store in zip(
            m_pos.tolist(), m_is_d.tolist(), m_block.tolist(), m_set.tolist(),
            m_catch.tolist(), m_base.tolist(), m_cbase.tolist(), m_store.tolist(),
        ):
            if pos != current_pos:
                current_pos = pos
                stalls_at_pos = stalls
            now = base_time + stalls_at_pos
            lane = lane_d if is_d else lane_i
            keys_out, gaps_out, kinds_out, frames_out = (
                res_records_d if is_d else res_records_i
            )
            tags = lane.tags
            assoc = lane.assoc
            frame_last = lane.frame_last
            lru_touch = lane.lru_touch
            if catch_pos >= 0:
                # Close the fast run this event ends: its final access
                # time lands on the replacement and tracker state first.
                record = bisect_left(stall_positions, catch_pos)
                run_time = catch_base + (
                    stall_totals[record - 1] if record else chunk_start_stalls
                )
                run_frame = lane.set_last_frame[set_index]
                frame_last[run_frame] = run_time
                if lru_touch is not None:
                    lru_touch[run_frame] = run_time
            base = set_index * assoc
            way = -1
            for candidate in range(assoc):
                if tags[base + candidate] == block:
                    way = candidate
                    break
            stats = counters[id(lane)]
            if way >= 0:
                stats[0] += 1
                frame = base + way
                gap = now - frame_last[frame]
                if gap > 0:
                    keys_out.append(pos)
                    gaps_out.append(gap)
                    kinds_out.append(_NORMAL)
            else:
                stats[1] += 1
                blocks_seen = lane.blocks_seen
                if block not in blocks_seen:
                    stats[2] += 1
                    blocks_seen.add(block)
                victim = -1
                for candidate in range(assoc):
                    if tags[base + candidate] == INVALID:
                        victim = candidate
                        break
                if victim < 0:
                    if lru_touch is not None:
                        window = lru_touch[base : base + assoc]
                        victim = window.index(min(window))
                    elif lane.fifo_next is not None:
                        victim = lane.fifo_next[set_index]
                        lane.fifo_next[set_index] = (victim + 1) % assoc
                    else:
                        victim = lane.rng.randrange(assoc)
                    stats[3] += 1
                frame = base + victim
                tags[frame] = block
                last = frame_last[frame]
                if last == -1:
                    gap = now - lane.start_time
                    kind = _COLD
                else:
                    gap = now - last
                    kind = _DEAD
                if gap > 0:
                    keys_out.append(pos)
                    gaps_out.append(gap)
                    kinds_out.append(kind)
                # The miss walks the L2; its latency stalls the stream.
                latency = l2_hit if l2_access(block, now) else memory_latency
                if is_d:
                    if not (is_store and store_buffer):
                        extra = -(-(latency - l1d_hit) // load_mlp)
                        if stall_on_miss and extra:
                            stalls += extra
                            stall_positions.append(pos)
                            stall_totals.append(stalls)
                else:
                    extra = latency - l1i_hit
                    if stall_on_miss and extra:
                        stalls += extra
                        stall_positions.append(pos)
                        stall_totals.append(stalls)
            if lru_touch is not None:
                lru_touch[frame] = now
            frame_last[frame] = now
            frames_out.append(frame)
            lane.set_last_frame[set_index] = frame
        stage["residual"] += perf() - t_start

        _assemble_chunk(
            lane_i, lane_d, plans, counters, res_records_i, res_records_d,
            i_observer, d_observer, ipos, dpos, iblocks, dblocks, dstores,
            pcs, addrs, instructions, cpi_fp,
            np.asarray(stall_positions, dtype=np.int64),
            np.asarray(stall_totals, dtype=np.int64),
            chunk_start_stalls, stage, perf,
        )
        instructions += n

    # Close the run: sync the clock and the trackers, then finish.
    total_cycles = ((instructions * cpi_fp) >> CPI_FP_BITS) + stalls
    clock.cycle = total_cycles
    clock.instructions = instructions
    clock.stall_cycles = stalls
    clock._cpi_accumulator = (instructions * cpi_fp) & ((1 << CPI_FP_BITS) - 1)
    lane_i.sync_tracker()
    lane_d.sync_tracker()
    end_time = total_cycles + 1
    hierarchy.finish(end_time)
    profile = SimulationProfile(
        mode="batched",
        fast_path_accesses=lane_i.fast_accesses + lane_d.fast_accesses,
        slow_path_accesses=lane_i.slow_accesses + lane_d.slow_accesses,
        stage_seconds=dict(stage),
        residual_impl=residual_impl,
    )
    return BatchedRunResult(
        cycles=end_time,
        instructions=instructions,
        stall_cycles=stalls,
        profile=profile,
    )
