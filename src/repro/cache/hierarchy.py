"""The paper's three-level memory hierarchy (§4.1).

L1 instruction and data caches backed by a unified L2, which is backed by
main memory.  Each access returns the latency the pipeline model should
charge; the L1 caches carry generation trackers so per-frame access
intervals can be extracted after a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .cache import SetAssociativeCache
from .config import (
    CacheConfig,
    paper_l1d_config,
    paper_l1i_config,
    paper_l2_config,
)
from .stats import HierarchyStats


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of the full hierarchy.

    ``memory_latency`` is the L2-miss penalty to main memory in cycles.
    """

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    memory_latency: int = 100

    def __post_init__(self) -> None:
        if self.memory_latency <= 0:
            raise ConfigurationError(
                f"memory latency must be positive, got {self.memory_latency!r}"
            )
        if len({self.l1i.line_bytes, self.l1d.line_bytes, self.l2.line_bytes}) != 1:
            raise ConfigurationError(
                "all levels must share one line size in this model"
            )

    @classmethod
    def paper(cls) -> "HierarchyConfig":
        """The Alpha 21264-like hierarchy of §4.1."""
        return cls(paper_l1i_config(), paper_l1d_config(), paper_l2_config())


class MemoryHierarchy:
    """L1I + L1D over a unified L2 over main memory.

    Parameters
    ----------
    config:
        Geometry/timing for all levels; defaults to the paper's.
    track_l2:
        Track L2 generations too (off by default: the paper studies L1
        leakage, and L2 tracking costs time and memory).
    """

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        replacement: str = "lru",
        track_l2: bool = False,
    ) -> None:
        self.config = config if config is not None else HierarchyConfig.paper()
        self.l1i = SetAssociativeCache(self.config.l1i, replacement)
        self.l1d = SetAssociativeCache(self.config.l1d, replacement)
        self.l2 = SetAssociativeCache(
            self.config.l2, replacement, track_generations=track_l2
        )
        self._finished = False

    # ------------------------------------------------------------------
    # Access paths (return the latency in cycles)
    # ------------------------------------------------------------------

    def fetch_instruction(self, address: int, time: int) -> int:
        """Instruction fetch; returns its latency in cycles."""
        block = address >> self.config.l1i.offset_bits
        if self.l1i.access_block(block, time):
            return self.config.l1i.hit_latency
        return self._access_l2(block, time)

    def access_data(self, address: int, time: int, is_store: bool = False) -> int:
        """Data load/store; returns its latency in cycles.

        Stores are modelled write-allocate/write-back, so they walk the
        same fill path as loads.
        """
        block = address >> self.config.l1d.offset_bits
        if self.l1d.access_block(block, time):
            return self.config.l1d.hit_latency
        return self._access_l2(block, time)

    def _access_l2(self, block: int, time: int) -> int:
        if self.l2.access_block(block, time):
            return self.config.l2.hit_latency
        return self.config.l2.hit_latency + self.config.memory_latency

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def finish(self, end_time: int) -> None:
        """Close all generation timelines at the end of simulation."""
        self.l1i.finish(end_time)
        self.l1d.finish(end_time)
        if self.l2.tracker is not None:
            self.l2.finish(end_time)
        self._finished = True

    def stats(self) -> HierarchyStats:
        """Per-level statistics."""
        stats = HierarchyStats()
        for cache in (self.l1i, self.l1d, self.l2):
            stats.levels[cache.config.name] = cache.stats
        return stats
