"""Lazy builder/loader for the compiled residual kernel.

The compiled residual loop lives in ``_residual.c`` next to this module
— plain C with no Python dependency — and is built on first use with
whatever C compiler the host provides (``$CC``, else ``cc``/``gcc``/
``clang`` on ``$PATH``)::

    cc -O3 -shared -fPIC -o <cache>/repro_residual-<tag>.so _residual.c

The build is content-addressed: ``<tag>`` hashes the C source, so a
stale cached library is never loaded after the source changes, and
concurrent builders race harmlessly (atomic rename, last writer wins).
The library lands in a per-user cache directory (``REPRO_NATIVE_DIR``,
else ``$XDG_CACHE_HOME/repro-native``, else ``~/.cache/repro-native``)
rather than the result-cache dir, which tests point at throwaway
tmpdirs — recompiling per test run would dwarf the speedup.

Everything degrades gracefully: no compiler, an unwritable cache dir,
or a failed build all make :func:`native_available` return ``False``
(memoized, diagnosed by :func:`native_build_error`) and the kernel
falls back to the pure-python residual loop.  ``REPRO_KERNEL=batched``
forces the fallback without touching this module.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

#: Override for the directory compiled libraries are cached in.
ENV_NATIVE_DIR = "REPRO_NATIVE_DIR"

#: ABI stamp the built library must report (see ``_residual.c``).
NATIVE_ABI = 1

_SOURCE = Path(__file__).with_name("_residual.c")

_i64 = ctypes.c_int64
_i64p = ctypes.POINTER(ctypes.c_int64)
_u8p = ctypes.POINTER(ctypes.c_uint8)

#: (lane_id, block, now) -> bit0: L2 hit, bit1: block already seen.
MISS_CB = ctypes.CFUNCTYPE(_i64, _i64, _i64, _i64)
#: (lane_id, set_index) -> victim way from the live python rng.
RNG_CB = ctypes.CFUNCTYPE(_i64, _i64, _i64)
#: (lane_id, block) -> 1 if already seen (recording it otherwise).
SEEN_CB = ctypes.CFUNCTYPE(_i64, _i64, _i64)


class NativeLane(ctypes.Structure):
    """Mirror of ``repro_lane`` in ``_residual.c`` (field order matters)."""

    _fields_ = [
        ("lane_id", _i64),
        ("assoc", _i64),
        ("start_time", _i64),
        ("tags", _i64p),
        ("frame_last", _i64p),
        ("lru_touch", _i64p),
        ("fifo_next", _i64p),
        ("set_last_frame", _i64p),
        ("rec_keys", _i64p),
        ("rec_gaps", _i64p),
        ("rec_kinds", _u8p),
        ("rec_frames", _i64p),
        ("rec_n", _i64),
        ("frames_n", _i64),
        ("hits", _i64),
        ("misses", _i64),
        ("compulsory", _i64),
        ("evictions", _i64),
    ]


class NativeConfig(ctypes.Structure):
    """Mirror of ``repro_cfg`` in ``_residual.c``."""

    _fields_ = [
        ("invalid_tag", _i64),
        ("kind_normal", _i64),
        ("kind_cold", _i64),
        ("kind_dead", _i64),
        ("l1i_hit", _i64),
        ("l1d_hit", _i64),
        ("l2_hit", _i64),
        ("memory_latency", _i64),
        ("stall_on_miss", _i64),
        ("load_mlp", _i64),
        ("store_buffer", _i64),
        ("chunk_start_stalls", _i64),
    ]


_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_probed = False
_error: Optional[str] = None


def native_source() -> Path:
    """Path of the C source the library is built from."""
    return _SOURCE


def native_build_dir() -> Path:
    """Directory compiled libraries are cached in (not created here)."""
    override = os.environ.get(ENV_NATIVE_DIR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro-native"
    home = Path.home()
    if str(home) and home != Path("/"):
        return home / ".cache" / "repro-native"
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _compiler() -> Optional[List[str]]:
    cc = os.environ.get("CC")
    if cc:
        return cc.split()
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return [candidate]
    return None


def _build(source: Path, target: Path) -> None:
    """Compile ``source`` into ``target`` atomically (tmp + rename)."""
    compiler = _compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found ($CC, cc, gcc or clang)")
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    os.close(fd)
    command = compiler + [
        "-O3", "-shared", "-fPIC", "-o", tmp, str(source)
    ]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise RuntimeError(
                f"{' '.join(command)} failed ({proc.returncode}): "
                f"{detail[:500]}"
            )
        os.replace(tmp, target)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass


def _library_path() -> Path:
    tag = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    return native_build_dir() / f"repro_residual-{tag}.so"


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_residual_abi.restype = _i64
    lib.repro_residual_abi.argtypes = []
    lib.repro_residual_timed.restype = _i64
    lib.repro_residual_timed.argtypes = [
        _i64,                       # n
        _i64p, _u8p, _i64p, _i64p,  # m_pos, m_is_d, m_block, m_set
        _i64p, _i64p, _i64p, _u8p,  # m_catch, m_base, m_cbase, m_store
        ctypes.POINTER(NativeLane), ctypes.POINTER(NativeLane),
        ctypes.POINTER(NativeConfig),
        MISS_CB, RNG_CB,
        _i64p, _i64p, _i64p,        # stall_positions, stall_totals, n_out
    ]
    lib.repro_residual_access.restype = None
    lib.repro_residual_access.argtypes = [
        _i64,                       # n_res
        _i64p, _i64p, _i64p,        # res_event, res_block, res_set
        _i64p, _i64p,               # res_catch, times
        ctypes.POINTER(NativeLane), ctypes.POINTER(NativeConfig),
        SEEN_CB, RNG_CB,
        _u8p,                       # hit_out
    ]
    return lib


def load_native() -> Optional[ctypes.CDLL]:
    """The compiled residual library, building it on first use.

    Returns ``None`` (memoized, with the reason in
    :func:`native_build_error`) when the host cannot build or load it.
    """
    global _lib, _probed, _error
    with _lock:
        if _probed:
            return _lib
        _probed = True
        try:
            path = _library_path()
            if not path.is_file():
                _build(_SOURCE, path)
            lib = _bind(ctypes.CDLL(str(path)))
            abi = int(lib.repro_residual_abi())
            if abi != NATIVE_ABI:
                raise RuntimeError(
                    f"compiled residual library reports ABI {abi}, "
                    f"expected {NATIVE_ABI}"
                )
            _lib = lib
        except Exception as error:  # noqa: BLE001 - any failure => fallback
            _error = f"{type(error).__name__}: {error}"
            _lib = None
        return _lib


def native_available() -> bool:
    """Whether the compiled residual loop can run on this host."""
    return load_native() is not None


def native_build_error() -> Optional[str]:
    """Why the compiled residual loop is unavailable (``None`` if it is)."""
    load_native()
    return _error


def reset_native_cache() -> None:
    """Forget the memoized load (tests re-probe after monkeypatching)."""
    global _lib, _probed, _error
    with _lock:
        _lib = None
        _probed = False
        _error = None


# ----------------------------------------------------------------------
# Marshalling helpers shared by both compiled entry points
# ----------------------------------------------------------------------

def ptr_i64(array: Optional[np.ndarray]):
    if array is None:
        return None
    return array.ctypes.data_as(_i64p)


def ptr_u8(array: np.ndarray):
    return array.ctypes.data_as(_u8p)


class LaneBridge:
    """Snapshot one kernel lane's list state into int64 arrays and back.

    The python residual loop mutates the scalar cache's *lists* in
    place (``cache._tags``, the policy's ``_last_touch``/``_next_way``
    — shared by aliasing); the compiled loop works on array snapshots
    and :meth:`writeback` re-fills the same list objects, preserving
    every alias.
    """

    def __init__(self, lane, n_events: int, want_frames: bool) -> None:
        self.lane = lane
        self.tags = np.asarray(lane.tags, dtype=np.int64)
        self.frame_last = np.asarray(lane.frame_last, dtype=np.int64)
        self.lru = (
            np.asarray(lane.lru_touch, dtype=np.int64)
            if lane.lru_touch is not None else None
        )
        self.fifo = (
            np.asarray(lane.fifo_next, dtype=np.int64)
            if lane.fifo_next is not None else None
        )
        self.set_last_frame = np.asarray(lane.set_last_frame, dtype=np.int64)
        self.keys = np.empty(n_events, dtype=np.int64)
        self.gaps = np.empty(n_events, dtype=np.int64)
        self.kinds = np.empty(n_events, dtype=np.uint8)
        self.frames = np.empty(n_events, dtype=np.int64) if want_frames else None
        self.struct = NativeLane()
        self.struct.lane_id = 0
        self.struct.assoc = int(lane.assoc)
        self.struct.start_time = int(lane.start_time)
        self.struct.tags = ptr_i64(self.tags)
        self.struct.frame_last = ptr_i64(self.frame_last)
        self.struct.lru_touch = ptr_i64(self.lru)
        self.struct.fifo_next = ptr_i64(self.fifo)
        self.struct.set_last_frame = ptr_i64(self.set_last_frame)
        self.struct.rec_keys = ptr_i64(self.keys)
        self.struct.rec_gaps = ptr_i64(self.gaps)
        self.struct.rec_kinds = ptr_u8(self.kinds)
        self.struct.rec_frames = ptr_i64(self.frames)
        self.struct.rec_n = 0
        self.struct.frames_n = 0
        self.struct.hits = 0
        self.struct.misses = 0
        self.struct.compulsory = 0
        self.struct.evictions = 0

    def set_lane_id(self, lane_id: int) -> None:
        self.struct.lane_id = int(lane_id)

    def writeback(self) -> None:
        lane = self.lane
        lane.tags[:] = self.tags.tolist()
        lane.frame_last[:] = self.frame_last.tolist()
        if self.lru is not None:
            lane.lru_touch[:] = self.lru.tolist()
        if self.fifo is not None:
            lane.fifo_next[:] = self.fifo.tolist()
        lane.set_last_frame[:] = self.set_last_frame.tolist()

    def records(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = int(self.struct.rec_n)
        frames = (
            self.frames[: int(self.struct.frames_n)]
            if self.frames is not None
            else np.zeros(0, dtype=np.int64)
        )
        return self.keys[:n], self.gaps[:n], self.kinds[:n], frames

    def counters(self) -> List[int]:
        s = self.struct
        return [int(s.hits), int(s.misses), int(s.compulsory), int(s.evictions)]


def make_config(
    *,
    invalid_tag: int,
    kind_normal: int,
    kind_cold: int,
    kind_dead: int,
    l1i_hit: int = 0,
    l1d_hit: int = 0,
    l2_hit: int = 0,
    memory_latency: int = 0,
    stall_on_miss: int = 0,
    load_mlp: int = 1,
    store_buffer: int = 0,
    chunk_start_stalls: int = 0,
) -> NativeConfig:
    return NativeConfig(
        invalid_tag=invalid_tag,
        kind_normal=kind_normal,
        kind_cold=kind_cold,
        kind_dead=kind_dead,
        l1i_hit=l1i_hit,
        l1d_hit=l1d_hit,
        l2_hit=l2_hit,
        memory_latency=memory_latency,
        stall_on_miss=stall_on_miss,
        load_mlp=load_mlp,
        store_buffer=store_buffer,
        chunk_start_stalls=chunk_start_stalls,
    )


def make_rng_cb(lanes) -> RNG_CB:
    """Victim-way callback drawing from each lane's live python rng."""
    rngs = [lane.rng for lane in lanes]
    assocs = [lane.assoc for lane in lanes]

    def _draw(lane_id: int, set_index: int) -> int:
        return rngs[lane_id].randrange(assocs[lane_id])

    return RNG_CB(_draw)


def make_seen_cb(lanes) -> SEEN_CB:
    """Compulsory-miss callback against each lane's live seen-set."""
    seen = [lane.blocks_seen for lane in lanes]

    def _probe(lane_id: int, block: int) -> int:
        s = seen[lane_id]
        if block in s:
            return 1
        s.add(block)
        return 0

    return SEEN_CB(_probe)


def make_miss_cb(lanes, l2_access) -> MISS_CB:
    """Combined seen-set + L2-walk callback for the timed loop.

    The L1 victim draw and the L2 walk touch disjoint state (each
    :class:`~repro.cache.replacement.RandomPolicy` owns its own seeded
    rng), so folding the L2 access into the miss probe — ahead of the
    victim pick — is observably identical to the python loop's order.
    """
    seen = [lane.blocks_seen for lane in lanes]

    def _probe(lane_id: int, block: int, now: int) -> int:
        result = 0
        s = seen[lane_id]
        if block in s:
            result = 2
        else:
            s.add(block)
        if l2_access(block, now):
            result |= 1
        return result

    return MISS_CB(_probe)
