"""Cache substrate: set-associative caches, hierarchy, generation tracking.

This subpackage stands in for the memory system of the paper's
SimpleScalar/Alpha-21264 setup (§4.1): 64 KB 2-way L1I (1-cycle), 64 KB
2-way L1D (3-cycle), 2 MB direct-mapped unified L2 (7-cycle), LRU
replacement, 64 B lines.
"""

from .cache import INVALID, SetAssociativeCache
from .decay import COUNTER_LIMIT, DecayCache, DecayEnergyReport
from .config import (
    CacheConfig,
    paper_l1d_config,
    paper_l1i_config,
    paper_l2_config,
)
from .generations import GenerationTracker
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_replacement_policy,
)
from .stats import CacheStats, HierarchyStats

__all__ = [
    "CacheConfig",
    "CacheStats",
    "COUNTER_LIMIT",
    "DecayCache",
    "DecayEnergyReport",
    "FifoPolicy",
    "GenerationTracker",
    "HierarchyConfig",
    "HierarchyStats",
    "INVALID",
    "LruPolicy",
    "MemoryHierarchy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "make_replacement_policy",
    "paper_l1d_config",
    "paper_l1i_config",
    "paper_l2_config",
]
