/* Compiled residual loops for the batched simulation kernel.
 *
 * This file is deliberately a *plain* C shared library — no Python.h —
 * so it can be built lazily with nothing but a C compiler and loaded
 * through ctypes (see repro/cache/native.py).  It mirrors, operation
 * for operation, the two pure-python residual loops in
 * repro/cache/kernel.py:
 *
 *   repro_residual_timed   <->  the merged I/D residual loop inside
 *                               run_batched (tag probe, victim pick,
 *                               interval records, stall accrual)
 *   repro_residual_access  <->  BatchedCacheKernel.access_blocks'
 *                               residual loop (times are inputs)
 *
 * Everything that involves unbounded python state stays in python and
 * is reached through callbacks: the L2 walk + compulsory-miss set on a
 * miss, and the live random-policy rng on a random eviction.  That is
 * what keeps the compiled path bit-identical to the scalar oracle —
 * the rng draws the same MT19937 stream, the L2 keeps its own exact
 * statistics — while the per-event arithmetic runs at C speed.
 *
 * All integers are int64 (block numbers, cycle counts and frame
 * indices all fit comfortably); python floor-division semantics are
 * reproduced exactly where the stall formula needs them.
 */

#include <stdint.h>

typedef int64_t i64;
typedef uint8_t u8;

/* (lane_id, block, now) -> bit0: L2 hit, bit1: block already seen.   */
typedef i64 (*repro_miss_cb)(i64, i64, i64);
/* (lane_id, set_index) -> victim way, drawn from the live python rng. */
typedef i64 (*repro_rng_cb)(i64, i64);
/* (lane_id, block) -> 1 if already seen (recording it otherwise).     */
typedef i64 (*repro_seen_cb)(i64, i64);

/* One cache lane's folded state (aliases numpy int64 arrays that the
 * python wrapper snapshots from the scalar cache's lists and writes
 * back afterwards).  lru_touch / fifo_next are NULL when the lane's
 * replacement policy is not LRU / FIFO respectively; a lane with both
 * NULL is random-replacement and evicts through the rng callback. */
typedef struct {
    i64 lane_id;        /* 0 = instruction lane, 1 = data lane */
    i64 assoc;
    i64 start_time;
    i64 *tags;          /* n_lines */
    i64 *frame_last;    /* n_lines */
    i64 *lru_touch;     /* n_lines, or NULL */
    i64 *fifo_next;     /* n_sets,  or NULL */
    i64 *set_last_frame;/* n_sets  */
    /* Per-lane outputs (preallocated by the wrapper). */
    i64 *rec_keys;
    i64 *rec_gaps;
    u8  *rec_kinds;
    i64 *rec_frames;    /* may be NULL (access loop records no frames) */
    i64 rec_n;          /* records emitted (gap > 0) */
    i64 frames_n;       /* frames recorded == events seen by this lane */
    i64 hits;
    i64 misses;
    i64 compulsory;
    i64 evictions;
} repro_lane;

typedef struct {
    i64 invalid_tag;
    i64 kind_normal;
    i64 kind_cold;
    i64 kind_dead;
    i64 l1i_hit;
    i64 l1d_hit;
    i64 l2_hit;
    i64 memory_latency;
    i64 stall_on_miss;
    i64 load_mlp;
    i64 store_buffer;
    i64 chunk_start_stalls;
} repro_cfg;

/* Python's floor division, exact for every sign combination. */
static i64 repro_floordiv(i64 a, i64 b)
{
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        q -= 1;
    return q;
}

/* bisect_left over the (non-decreasing) stall position records. */
static i64 repro_bisect_left(const i64 *arr, i64 n, i64 value)
{
    i64 lo = 0, hi = n;
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        if (arr[mid] < value)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Close the fast run a residual event ends: the run's final access
 * time lands on the replacement and tracker state before the event
 * touches the set.  (run_frame >= 0 always holds when a catch-up is
 * requested — a fast run can only continue from a frame some earlier
 * residual event placed — the guard just keeps a corrupt input from
 * scribbling out of bounds.) */
static void repro_catch_up(repro_lane *lane, i64 set_index, i64 run_time)
{
    i64 run_frame = lane->set_last_frame[set_index];
    if (run_frame < 0)
        return;
    lane->frame_last[run_frame] = run_time;
    if (lane->lru_touch)
        lane->lru_touch[run_frame] = run_time;
}

/* Probe the set for `block`; returns the way or -1. */
static i64 repro_probe(const repro_lane *lane, i64 base, i64 block)
{
    i64 c;
    for (c = 0; c < lane->assoc; c++)
        if (lane->tags[base + c] == block)
            return c;
    return -1;
}

/* Pick the victim way for a fill (first invalid way, else policy). */
static i64 repro_victim(repro_lane *lane, i64 base, i64 set_index,
                        i64 invalid_tag, repro_rng_cb rng_cb)
{
    i64 c;
    for (c = 0; c < lane->assoc; c++)
        if (lane->tags[base + c] == invalid_tag)
            return c;
    /* No invalid way: a real eviction. */
    if (lane->lru_touch) {
        i64 best = lane->lru_touch[base];
        i64 victim = 0;
        for (c = 1; c < lane->assoc; c++) {
            if (lane->lru_touch[base + c] < best) {
                best = lane->lru_touch[base + c];
                victim = c;
            }
        }
        lane->evictions += 1;
        return victim;
    }
    if (lane->fifo_next) {
        i64 victim = lane->fifo_next[set_index];
        lane->fifo_next[set_index] = (victim + 1) % lane->assoc;
        lane->evictions += 1;
        return victim;
    }
    lane->evictions += 1;
    return rng_cb(lane->lane_id, set_index);
}

static void repro_record(repro_lane *lane, i64 key, i64 gap, u8 kind)
{
    if (gap > 0) {
        lane->rec_keys[lane->rec_n] = key;
        lane->rec_gaps[lane->rec_n] = gap;
        lane->rec_kinds[lane->rec_n] = kind;
        lane->rec_n += 1;
    }
}

/* The merged I/D residual loop of run_batched.  Returns the cumulative
 * stall count after the chunk; stall records land in stall_positions /
 * stall_totals with *n_stalls_out entries. */
i64 repro_residual_timed(
    i64 n,
    const i64 *m_pos, const u8 *m_is_d, const i64 *m_block,
    const i64 *m_set, const i64 *m_catch, const i64 *m_base,
    const i64 *m_cbase, const u8 *m_store,
    repro_lane *lane_i, repro_lane *lane_d,
    const repro_cfg *cfg,
    repro_miss_cb miss_cb, repro_rng_cb rng_cb,
    i64 *stall_positions, i64 *stall_totals, i64 *n_stalls_out)
{
    i64 stalls = cfg->chunk_start_stalls;
    i64 current_pos = -1;
    i64 stalls_at_pos = stalls;
    i64 n_stalls = 0;
    i64 e;

    for (e = 0; e < n; e++) {
        i64 pos = m_pos[e];
        i64 block = m_block[e];
        i64 set_index = m_set[e];
        i64 catch_pos = m_catch[e];
        int is_d = m_is_d[e] != 0;
        repro_lane *lane = is_d ? lane_d : lane_i;
        i64 base, way, frame, now;

        if (pos != current_pos) {
            current_pos = pos;
            stalls_at_pos = stalls;
        }
        now = m_base[e] + stalls_at_pos;

        if (catch_pos >= 0) {
            i64 record = repro_bisect_left(stall_positions, n_stalls, catch_pos);
            i64 run_time = m_cbase[e] + (record ? stall_totals[record - 1]
                                                : cfg->chunk_start_stalls);
            repro_catch_up(lane, set_index, run_time);
        }

        base = set_index * lane->assoc;
        way = repro_probe(lane, base, block);
        if (way >= 0) {
            lane->hits += 1;
            frame = base + way;
            repro_record(lane, pos, now - lane->frame_last[frame],
                         (u8)cfg->kind_normal);
        } else {
            i64 probe, latency, last;
            lane->misses += 1;
            probe = miss_cb(lane->lane_id, block, now);
            if (!(probe & 2))
                lane->compulsory += 1;
            frame = base + repro_victim(lane, base, set_index,
                                        cfg->invalid_tag, rng_cb);
            lane->tags[frame] = block;
            last = lane->frame_last[frame];
            if (last == -1)
                repro_record(lane, pos, now - lane->start_time,
                             (u8)cfg->kind_cold);
            else
                repro_record(lane, pos, now - last, (u8)cfg->kind_dead);
            /* The miss walks the L2; its latency stalls the stream. */
            latency = (probe & 1) ? cfg->l2_hit : cfg->memory_latency;
            if (is_d) {
                if (!(m_store[e] && cfg->store_buffer)) {
                    i64 extra = -repro_floordiv(
                        -(latency - cfg->l1d_hit), cfg->load_mlp);
                    if (cfg->stall_on_miss && extra) {
                        stalls += extra;
                        stall_positions[n_stalls] = pos;
                        stall_totals[n_stalls] = stalls;
                        n_stalls += 1;
                    }
                }
            } else {
                i64 extra = latency - cfg->l1i_hit;
                if (cfg->stall_on_miss && extra) {
                    stalls += extra;
                    stall_positions[n_stalls] = pos;
                    stall_totals[n_stalls] = stalls;
                    n_stalls += 1;
                }
            }
        }
        if (lane->lru_touch)
            lane->lru_touch[frame] = now;
        lane->frame_last[frame] = now;
        lane->rec_frames[lane->frames_n] = frame;
        lane->frames_n += 1;
        lane->set_last_frame[set_index] = frame;
    }
    *n_stalls_out = n_stalls;
    return stalls;
}

/* The residual loop of BatchedCacheKernel.access_blocks: access times
 * are inputs here, so there is no stall bookkeeping and no L2 walk —
 * only the seen-set callback on a miss and the rng on a random
 * eviction.  hit_out[k] is set to 1 when residual event k hit. */
void repro_residual_access(
    i64 n_res,
    const i64 *res_event, const i64 *res_block, const i64 *res_set,
    const i64 *res_catch, const i64 *times,
    repro_lane *lane, const repro_cfg *cfg,
    repro_seen_cb seen_cb, repro_rng_cb rng_cb,
    u8 *hit_out)
{
    i64 k;
    for (k = 0; k < n_res; k++) {
        i64 event = res_event[k];
        i64 block = res_block[k];
        i64 set_index = res_set[k];
        i64 catch_pos = res_catch[k];
        i64 now = times[event];
        i64 base, way, frame;

        if (catch_pos >= 0)
            repro_catch_up(lane, set_index, times[catch_pos]);

        base = set_index * lane->assoc;
        way = repro_probe(lane, base, block);
        if (way >= 0) {
            lane->hits += 1;
            hit_out[k] = 1;
            frame = base + way;
            repro_record(lane, event, now - lane->frame_last[frame],
                         (u8)cfg->kind_normal);
        } else {
            i64 last;
            lane->misses += 1;
            if (!seen_cb(lane->lane_id, block))
                lane->compulsory += 1;
            frame = base + repro_victim(lane, base, set_index,
                                        cfg->invalid_tag, rng_cb);
            lane->tags[frame] = block;
            last = lane->frame_last[frame];
            if (last == -1)
                repro_record(lane, event, now - lane->start_time,
                             (u8)cfg->kind_cold);
            else
                repro_record(lane, event, now - last, (u8)cfg->kind_dead);
        }
        if (lane->lru_touch)
            lane->lru_touch[frame] = now;
        lane->frame_last[frame] = now;
        lane->set_last_frame[set_index] = frame;
    }
}

/* ABI version stamp so the loader can reject a stale cached build. */
i64 repro_residual_abi(void)
{
    return 1;
}
