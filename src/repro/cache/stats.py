"""Cache access statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Counters accumulated by one cache level during simulation."""

    name: str = ""
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    compulsory_misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits per access (0 when no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from another stats object (same cache name)."""
        return CacheStats(
            name=self.name or other.name,
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            compulsory_misses=self.compulsory_misses + other.compulsory_misses,
            evictions=self.evictions + other.evictions,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for reports."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "compulsory_misses": self.compulsory_misses,
            "evictions": self.evictions,
            "miss_rate": self.miss_rate,
        }

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.name}: {self.accesses} accesses, "
            f"{100 * self.miss_rate:.2f}% miss rate, "
            f"{self.evictions} evictions"
        )


@dataclass
class HierarchyStats:
    """Statistics for every level of a memory hierarchy."""

    levels: Dict[str, CacheStats] = field(default_factory=dict)

    def level(self, name: str) -> CacheStats:
        """Stats for one level, creating an empty record if needed."""
        if name not in self.levels:
            self.levels[name] = CacheStats(name=name)
        return self.levels[name]

    def describe(self) -> str:
        """Multi-line summary of every level."""
        return "\n".join(stats.describe() for stats in self.levels.values())
