"""A set-associative cache with generation tracking.

This is the structural substrate under the whole study: it turns an
address/time stream into hits, misses, evictions, and — through an
attached :class:`~repro.cache.generations.GenerationTracker` — the
per-frame access intervals the limit analysis consumes.

The implementation favours a tight inner loop (the simulator calls
:meth:`SetAssociativeCache.access_block` millions of times) while keeping
replacement pluggable.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..errors import SimulationError
from .config import CacheConfig
from .generations import GenerationTracker
from .replacement import ReplacementPolicy, make_replacement_policy
from .stats import CacheStats

#: Tag value marking an empty frame.
INVALID = -1


class SetAssociativeCache:
    """One cache level.

    Parameters
    ----------
    config:
        Geometry and timing.
    replacement:
        Replacement policy name (``lru``/``fifo``/``random``) or instance.
    track_generations:
        When True, every access/fill is fed to a
        :class:`GenerationTracker` so intervals can be extracted after the
        run.  Disable for levels whose leakage is not under study (the L2
        in the paper's experiments) to save time and memory.
    """

    def __init__(
        self,
        config: CacheConfig,
        replacement: str | ReplacementPolicy = "lru",
        track_generations: bool = True,
    ) -> None:
        self.config = config
        if isinstance(replacement, str):
            replacement = make_replacement_policy(
                replacement, config.n_sets, config.associativity
            )
        if (
            replacement.n_sets != config.n_sets
            or replacement.associativity != config.associativity
        ):
            raise SimulationError(
                "replacement policy geometry does not match the cache"
            )
        self.replacement = replacement
        self.stats = CacheStats(name=config.name)
        self.tracker: Optional[GenerationTracker] = (
            GenerationTracker(config.n_lines) if track_generations else None
        )
        self._tags = [INVALID] * config.n_lines
        self._blocks_seen: Set[int] = set()
        self._assoc = config.associativity
        self._set_mask = config.n_sets - 1

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, time: int) -> bool:
        """Access a byte address at ``time``; returns True on a hit."""
        return self.access_block(address >> self.config.offset_bits, time)

    def access_block(self, block: int, time: int) -> bool:
        """Access a block number at ``time``; returns True on a hit.

        On a miss the block is filled immediately (the latency cost is the
        caller's concern), evicting the replacement policy's victim when
        the set is full.
        """
        return self.access_block_ex(block, time)[0]

    def access_block_ex(self, block: int, time: int) -> Tuple[bool, int]:
        """Like :meth:`access_block`, also returning the frame touched.

        Used by observers (e.g. the prefetchability annotator) that track
        per-frame state of their own.
        """
        set_index = block & self._set_mask
        base = set_index * self._assoc
        tags = self._tags
        stats = self.stats
        stats.accesses += 1
        # Hit scan.
        for way in range(self._assoc):
            if tags[base + way] == block:
                stats.hits += 1
                self.replacement.on_access(set_index, way, time)
                if self.tracker is not None:
                    self.tracker.on_hit(base + way, time)
                return True, base + way
        # Miss: find an empty way or evict the victim.
        stats.misses += 1
        if block not in self._blocks_seen:
            stats.compulsory_misses += 1
            self._blocks_seen.add(block)
        victim = -1
        for way in range(self._assoc):
            if tags[base + way] == INVALID:
                victim = way
                break
        if victim < 0:
            victim = self.replacement.victim_way(set_index)
            stats.evictions += 1
        tags[base + victim] = block
        self.replacement.on_access(set_index, victim, time)
        if self.tracker is not None:
            self.tracker.on_fill(base + victim, time)
        return False, base + victim

    def probe(self, block: int) -> bool:
        """Check residency without updating any state."""
        base = (block & self._set_mask) * self._assoc
        return any(self._tags[base + way] == block for way in range(self._assoc))

    def resident_block(self, frame: int) -> int:
        """Block currently held by ``frame`` (``INVALID`` when empty)."""
        if not 0 <= frame < self.config.n_lines:
            raise SimulationError(
                f"frame {frame} outside 0..{self.config.n_lines - 1}"
            )
        return self._tags[frame]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def finish(self, end_time: int) -> None:
        """Close the generation tracker's timelines at ``end_time``."""
        if self.tracker is not None:
            self.tracker.finish(end_time)

    def intervals(self):
        """Interval population of this cache (after :meth:`finish`)."""
        if self.tracker is None:
            raise SimulationError(
                f"cache {self.config.name!r} was built without generation tracking"
            )
        return self.tracker.intervals()

    def flush(self) -> None:
        """Invalidate every frame and reset replacement state.

        Statistics and any already-collected intervals are preserved; the
        tracker, if present, sees no event (a flush is not an access), so
        flushing mid-run is only meaningful for functional tests.
        """
        self._tags = [INVALID] * self.config.n_lines
        self.replacement.reset()

    def occupancy(self) -> float:
        """Fraction of frames currently holding a block."""
        filled = sum(1 for tag in self._tags if tag != INVALID)
        return filled / self.config.n_lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SetAssociativeCache({self.config.describe()})"
