"""Cache generation tracking: from access events to interval populations.

A cache *generation* (Kaxiras et al. [6]) is the residency of one memory
block in one cache frame: fill, zero or more re-accesses (the *live*
period), then a *dead* period until eviction.  The limit analysis needs,
for every frame, the cycle gaps between consecutive accesses — this
tracker converts the cache's event stream into an
:class:`~repro.core.intervals.IntervalSet` without retaining full access
histories.

Interval kinds produced:

* a gap between two accesses within a generation — ``NORMAL``;
* the gap from a generation's last access to its eviction (the fill of
  the next generation) — ``DEAD``;
* the gap from the start of observation to a frame's first fill, and the
  whole timeline of frames never used — ``COLD``;
* the gap from the final access to the end of simulation — ``DEAD`` (the
  oracle knows the program ends; data is never needed again).

Intervals are stored in preallocated, doubling numpy buffers rather than
Python lists: the scalar :meth:`GenerationTracker.on_hit`/:meth:`on_fill`
path appends one record at a time, while the batched kernel
(:mod:`repro.cache.kernel`) lands whole chunks at once through
:meth:`GenerationTracker.extend`.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..core.intervals import IntervalKind, IntervalSet

#: Initial capacity of the interval buffers (doubles as needed).
_INITIAL_CAPACITY = 1024


class GenerationTracker:
    """Streaming per-frame interval collector.

    Parameters
    ----------
    n_frames:
        Number of cache frames being observed.
    start_time:
        Cycle at which observation begins (frames are empty/cold then).
    """

    def __init__(self, n_frames: int, start_time: int = 0) -> None:
        if n_frames <= 0:
            raise SimulationError(f"tracker needs frames, got {n_frames!r}")
        self.n_frames = n_frames
        self.start_time = start_time
        self._last_access = np.full(n_frames, -1, dtype=np.int64)
        self._lengths = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._kinds = np.empty(_INITIAL_CAPACITY, dtype=np.uint8)
        self._n = 0
        self._finished = False

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        capacity = len(self._lengths)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        lengths = np.empty(capacity, dtype=np.int64)
        kinds = np.empty(capacity, dtype=np.uint8)
        lengths[: self._n] = self._lengths[: self._n]
        kinds[: self._n] = self._kinds[: self._n]
        self._lengths = lengths
        self._kinds = kinds

    def _append(self, gap: int, kind: int) -> None:
        self._reserve(1)
        self._lengths[self._n] = gap
        self._kinds[self._n] = kind
        self._n += 1

    # ------------------------------------------------------------------
    # Event intake (called by the cache on every access)
    # ------------------------------------------------------------------

    def on_hit(self, frame: int, time: int) -> None:
        """A hit re-accesses the resident generation."""
        last = int(self._last_access[frame])
        if time < last:
            raise SimulationError(
                f"time moved backwards on frame {frame}: {last} -> {time}"
            )
        gap = time - last
        if gap > 0:
            self._append(gap, IntervalKind.NORMAL)
        self._last_access[frame] = time

    def on_fill(self, frame: int, time: int) -> None:
        """A miss fills the frame, starting a new generation.

        Closes the previous generation with a ``DEAD`` interval (or the
        frame's initial ``COLD`` interval if this is its first use).
        """
        last = int(self._last_access[frame])
        if last == -1:
            gap = time - self.start_time
            kind = IntervalKind.COLD
        else:
            if time < last:
                raise SimulationError(
                    f"time moved backwards on frame {frame}: {last} -> {time}"
                )
            gap = time - last
            kind = IntervalKind.DEAD
        if gap > 0:
            self._append(gap, kind)
        self._last_access[frame] = time

    # ------------------------------------------------------------------
    # Batched intake (used by the kernel)
    # ------------------------------------------------------------------

    def extend(self, lengths: np.ndarray, kinds: np.ndarray) -> None:
        """Append a block of already-computed intervals in event order.

        The caller (the batched kernel) guarantees the records are exactly
        the ones the scalar event path would have appended, in the same
        order; only positive lengths may be supplied.
        """
        if self._finished:
            raise SimulationError("tracker already finished")
        count = len(lengths)
        if count == 0:
            return
        self._reserve(count)
        self._lengths[self._n : self._n + count] = lengths
        self._kinds[self._n : self._n + count] = kinds
        self._n += count

    def set_last_access(self, last_access: np.ndarray) -> None:
        """Overwrite the per-frame last-access times (kernel sync point)."""
        if last_access.shape != (self.n_frames,):
            raise SimulationError(
                "last-access array does not match the tracked frame count"
            )
        self._last_access[:] = last_access

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finish(self, end_time: int) -> None:
        """Close every frame's timeline at ``end_time``.

        Idempotent only in the sense that it may be called once; further
        events are rejected afterwards.
        """
        if self._finished:
            raise SimulationError("tracker already finished")
        last = self._last_access
        if bool(np.any(last > end_time)):
            frame = int(np.argmax(last > end_time))
            raise SimulationError(
                f"end_time {end_time} precedes last access {int(last[frame])} "
                f"on frame {frame}"
            )
        cold = last == -1
        gaps = np.where(cold, end_time - self.start_time, end_time - last)
        kinds = np.where(
            cold, np.uint8(IntervalKind.COLD), np.uint8(IntervalKind.DEAD)
        )
        keep = gaps > 0
        self.extend(gaps[keep], kinds[keep])
        self._finished = True

    def intervals(self) -> IntervalSet:
        """The collected interval population (call :meth:`finish` first)."""
        if not self._finished:
            raise SimulationError(
                "call finish(end_time) before extracting intervals"
            )
        return IntervalSet(
            self._lengths[: self._n].copy(),
            self._kinds[: self._n].copy(),
        )
