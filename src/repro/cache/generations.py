"""Cache generation tracking: from access events to interval populations.

A cache *generation* (Kaxiras et al. [6]) is the residency of one memory
block in one cache frame: fill, zero or more re-accesses (the *live*
period), then a *dead* period until eviction.  The limit analysis needs,
for every frame, the cycle gaps between consecutive accesses — this
tracker converts the cache's event stream into an
:class:`~repro.core.intervals.IntervalSet` without retaining full access
histories.

Interval kinds produced:

* a gap between two accesses within a generation — ``NORMAL``;
* the gap from a generation's last access to its eviction (the fill of
  the next generation) — ``DEAD``;
* the gap from the start of observation to a frame's first fill, and the
  whole timeline of frames never used — ``COLD``;
* the gap from the final access to the end of simulation — ``DEAD`` (the
  oracle knows the program ends; data is never needed again).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import SimulationError
from ..core.intervals import IntervalKind, IntervalSet


class GenerationTracker:
    """Streaming per-frame interval collector.

    Parameters
    ----------
    n_frames:
        Number of cache frames being observed.
    start_time:
        Cycle at which observation begins (frames are empty/cold then).
    """

    def __init__(self, n_frames: int, start_time: int = 0) -> None:
        if n_frames <= 0:
            raise SimulationError(f"tracker needs frames, got {n_frames!r}")
        self.n_frames = n_frames
        self.start_time = start_time
        self._last_access = [-1] * n_frames
        self._lengths: List[int] = []
        self._kinds: List[int] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Event intake (called by the cache on every access)
    # ------------------------------------------------------------------

    def on_hit(self, frame: int, time: int) -> None:
        """A hit re-accesses the resident generation."""
        last = self._last_access[frame]
        if time < last:
            raise SimulationError(
                f"time moved backwards on frame {frame}: {last} -> {time}"
            )
        gap = time - last
        if gap > 0:
            self._lengths.append(gap)
            self._kinds.append(IntervalKind.NORMAL)
        self._last_access[frame] = time

    def on_fill(self, frame: int, time: int) -> None:
        """A miss fills the frame, starting a new generation.

        Closes the previous generation with a ``DEAD`` interval (or the
        frame's initial ``COLD`` interval if this is its first use).
        """
        last = self._last_access[frame]
        if last == -1:
            gap = time - self.start_time
            kind = IntervalKind.COLD
        else:
            if time < last:
                raise SimulationError(
                    f"time moved backwards on frame {frame}: {last} -> {time}"
                )
            gap = time - last
            kind = IntervalKind.DEAD
        if gap > 0:
            self._lengths.append(gap)
            self._kinds.append(kind)
        self._last_access[frame] = time

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finish(self, end_time: int) -> None:
        """Close every frame's timeline at ``end_time``.

        Idempotent only in the sense that it may be called once; further
        events are rejected afterwards.
        """
        if self._finished:
            raise SimulationError("tracker already finished")
        for frame in range(self.n_frames):
            last = self._last_access[frame]
            if last == -1:
                gap = end_time - self.start_time
                kind = IntervalKind.COLD
            else:
                if end_time < last:
                    raise SimulationError(
                        f"end_time {end_time} precedes last access {last} "
                        f"on frame {frame}"
                    )
                gap = end_time - last
                kind = IntervalKind.DEAD
            if gap > 0:
                self._lengths.append(gap)
                self._kinds.append(kind)
        self._finished = True

    def intervals(self) -> IntervalSet:
        """The collected interval population (call :meth:`finish` first)."""
        if not self._finished:
            raise SimulationError(
                "call finish(end_time) before extracting intervals"
            )
        return IntervalSet(
            np.asarray(self._lengths, dtype=np.int64),
            np.asarray(self._kinds, dtype=np.uint8),
        )
