"""A functional cache-decay implementation (Kaxiras et al. [6]).

The paper *models* the decay scheme analytically (its Sleep(10K) bars:
a line idles at full power for the decay interval, then sleeps, then
re-fetches).  This module implements the scheme *functionally* — per-line
counters, gating, induced misses — so the analytic
:class:`~repro.core.policy.DecaySleep` pricing can be cross-validated
against a mechanism that actually gates lines:

* every frame carries a coarse 2-bit decay counter advanced by a global
  tick (the hierarchical-counter trick of the decay paper);
* a counter that reaches saturation gates the frame off (state lost);
* an access to a gated frame is an *induced miss*: the line re-fetches,
  and the energy account charges the re-fetch plus the sleep residual
  for the gated span.

:meth:`DecayCache.energy_report` integrates leakage over the run and
must agree with the analytic pricing up to the transition-ramp terms the
counter mechanism cannot observe (the test suite pins the agreement).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.energy import ModeEnergyModel
from ..errors import ConfigurationError, SimulationError
from .cache import SetAssociativeCache
from .config import CacheConfig

#: Decay counters are 2-bit: a line is gated after 4 global ticks.
COUNTER_LIMIT = 4


@dataclass(frozen=True)
class DecayEnergyReport:
    """Leakage-energy account of a functional decay-cache run.

    Energies are in active-line-leakage-cycles, comparable to
    :class:`~repro.core.savings.SavingsReport` values.
    """

    baseline_energy: float
    energy: float
    induced_misses: int
    gated_cycles: int

    @property
    def saving_fraction(self) -> float:
        """Savings versus the all-active cache."""
        if self.baseline_energy <= 0:
            return 0.0
        return 1.0 - self.energy / self.baseline_energy


class DecayCache:
    """A set-associative cache with per-line decay gating.

    Parameters
    ----------
    config:
        Cache geometry.
    model:
        Energy model supplying mode powers, ramp costs and the re-fetch
        energy (its technology node defines the sleep residual).
    decay_interval:
        Cycles of idleness after which a line is gated.  Implemented with
        2-bit counters ticked every ``decay_interval / 4`` cycles, so
        actual gating happens between ``0.75x`` and ``1.0x`` the nominal
        interval, exactly as in the decay paper.
    """

    def __init__(
        self,
        config: CacheConfig,
        model: ModeEnergyModel,
        decay_interval: int = 10_000,
    ) -> None:
        if decay_interval < COUNTER_LIMIT:
            raise ConfigurationError(
                f"decay interval must be at least {COUNTER_LIMIT} cycles, "
                f"got {decay_interval!r}"
            )
        self.config = config
        self.model = model
        self.decay_interval = decay_interval
        self.tick_period = decay_interval // COUNTER_LIMIT
        self.cache = SetAssociativeCache(config, track_generations=False)
        n = config.n_lines
        self._last_access = [-1] * n
        self._gated_at = [-1] * n
        self._active_energy = 0.0
        self._sleep_energy = 0.0
        self._transition_energy = 0.0
        self.induced_misses = 0
        self.gated_cycles = 0
        self._end_time = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def _gate_time(self, last_access: int, now: int) -> int:
        """When the frame's counter saturated (or -1 if still awake).

        Counters tick on global-period boundaries, so gating lands on the
        first tick boundary at or after ``last_access + decay_interval``
        in this idealized variant.
        """
        deadline = last_access + self.decay_interval
        if now < deadline:
            return -1
        return deadline

    def access(self, block: int, time: int) -> bool:
        """Access a block; returns True for a genuine (non-induced) hit.

        Accounts the energy of the frame's interval that this access
        closes: active until gated, sleeping afterwards, plus ramps and
        the induced re-fetch when the access finds the frame gated.
        """
        if time < self._end_time:
            raise SimulationError("decay cache accesses must move forward in time")
        hit, frame = self.cache.access_block_ex(block, time)
        last = self._last_access[frame]
        if last >= 0:
            gate = self._gate_time(last, time)
            if gate < 0:
                self._active_energy += self.model.p_active * (time - last)
            else:
                d = self.model.durations
                self._active_energy += self.model.p_active * (gate - last)
                gated_span = time - gate
                self.gated_cycles += gated_span
                self._sleep_energy += self.model.p_sleep * gated_span
                ramp = (
                    0.5 * (self.model.p_active + self.model.p_sleep)
                    if self.model.trapezoidal_ramps
                    else self.model.p_active
                )
                self._transition_energy += ramp * min(d.s1 + d.s3, gated_span)
                if hit:
                    # The data was gated away: an induced miss.
                    self.induced_misses += 1
                    hit = False
                self._transition_energy += self.model.refetch_energy
        self._last_access[frame] = time
        self._end_time = time
        return hit

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def finish(self, end_time: int) -> None:
        """Close every frame's timeline at ``end_time``."""
        if end_time < self._end_time:
            raise SimulationError("end_time precedes the last access")
        for frame in range(self.config.n_lines):
            last = self._last_access[frame]
            if last < 0:
                # Never used: gated from the start at sleep residual.
                self._sleep_energy += self.model.p_sleep * end_time
                self.gated_cycles += end_time
                continue
            gate = self._gate_time(last, end_time)
            if gate < 0:
                self._active_energy += self.model.p_active * (end_time - last)
            else:
                self._active_energy += self.model.p_active * (gate - last)
                span = end_time - gate
                self.gated_cycles += span
                self._sleep_energy += self.model.p_sleep * span
        self._end_time = end_time

    def energy_report(self) -> DecayEnergyReport:
        """The integrated leakage-energy account (call :meth:`finish`)."""
        total = self._active_energy + self._sleep_energy + self._transition_energy
        baseline = self.model.p_active * self.config.n_lines * self._end_time
        return DecayEnergyReport(
            baseline_energy=baseline,
            energy=total,
            induced_misses=self.induced_misses,
            gated_cycles=self.gated_cycles,
        )
