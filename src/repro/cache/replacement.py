"""Replacement policies for the set-associative cache.

The paper uses LRU throughout the hierarchy; FIFO and random are provided
for tests and for sensitivity studies (interval distributions are mildly
replacement-sensitive, which the ablation benches can demonstrate).

A policy instance is bound to one cache's geometry and tracks whatever
per-set state it needs.  The cache calls :meth:`on_access` for every hit
or fill and :meth:`victim_way` when a set is full.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError


class ReplacementPolicy:
    """Interface: pick victims within a set and observe accesses."""

    def __init__(self, n_sets: int, associativity: int) -> None:
        if n_sets <= 0 or associativity <= 0:
            raise ConfigurationError(
                "invalid geometry for replacement policy: "
                f"{(n_sets, associativity)!r}"
            )
        self.n_sets = n_sets
        self.associativity = associativity

    def on_access(self, set_index: int, way: int, time: int) -> None:
        """Observe a hit or fill of ``way`` in ``set_index`` at ``time``."""
        raise NotImplementedError

    def victim_way(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all history (cache flush)."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used, via per-frame last-touch timestamps."""

    def __init__(self, n_sets: int, associativity: int) -> None:
        super().__init__(n_sets, associativity)
        self._last_touch = [-1] * (n_sets * associativity)

    def on_access(self, set_index: int, way: int, time: int) -> None:
        self._last_touch[set_index * self.associativity + way] = time

    def victim_way(self, set_index: int) -> int:
        base = set_index * self.associativity
        touches = self._last_touch[base : base + self.associativity]
        return touches.index(min(touches))

    def reset(self) -> None:
        self._last_touch = [-1] * (self.n_sets * self.associativity)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest *fill*, ignoring hits."""

    def __init__(self, n_sets: int, associativity: int) -> None:
        super().__init__(n_sets, associativity)
        self._next_way = [0] * n_sets

    def on_access(self, set_index: int, way: int, time: int) -> None:
        # FIFO ignores reference recency entirely.
        return None

    def victim_way(self, set_index: int) -> int:
        way = self._next_way[set_index]
        self._next_way[set_index] = (way + 1) % self.associativity
        return way

    def reset(self) -> None:
        self._next_way = [0] * self.n_sets


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, n_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(n_sets, associativity)
        self._seed = seed
        self._rng = random.Random(seed)

    def on_access(self, set_index: int, way: int, time: int) -> None:
        return None

    def victim_way(self, set_index: int) -> int:
        return self._rng.randrange(self.associativity)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


REPLACEMENT_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_replacement_policy(
    name: str, n_sets: int, associativity: int
) -> ReplacementPolicy:
    """Factory from a policy name (``lru``, ``fifo``, ``random``)."""
    try:
        cls = REPLACEMENT_POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"known: {sorted(REPLACEMENT_POLICIES)}"
        ) from None
    return cls(n_sets, associativity)
