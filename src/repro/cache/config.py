"""Cache geometry configuration.

The paper's memory hierarchy (§4.1, Alpha 21264-like): a 64 KB 2-way L1
instruction cache with single-cycle hits, a 64 KB 2-way L1 data cache with
3-cycle hits, and a unified 2 MB direct-mapped L2 with 7-cycle hits; LRU
replacement throughout.  :func:`paper_l1i_config` and friends build those
exact geometries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes
    ----------
    name: label used in statistics and reports.
    size_bytes: total data capacity; must be a power of two.
    line_bytes: line (block) size; must be a power of two.
    associativity: ways per set; must divide the line count.
    hit_latency: cycles to service a hit.
    """

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    hit_latency: int

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.size_bytes):
            raise ConfigurationError(
                f"cache size must be a power of two, got {self.size_bytes!r}"
            )
        if not _is_power_of_two(self.line_bytes):
            raise ConfigurationError(
                f"line size must be a power of two, got {self.line_bytes!r}"
            )
        if self.line_bytes > self.size_bytes:
            raise ConfigurationError(
                f"line size {self.line_bytes} exceeds cache size {self.size_bytes}"
            )
        if self.associativity <= 0:
            raise ConfigurationError(
                f"associativity must be positive, got {self.associativity!r}"
            )
        if self.n_lines % self.associativity != 0:
            raise ConfigurationError(
                f"{self.n_lines} lines cannot be split into "
                f"{self.associativity}-way sets"
            )
        if not _is_power_of_two(self.n_sets):
            raise ConfigurationError(
                f"set count must be a power of two, got {self.n_sets}"
            )
        if self.hit_latency <= 0:
            raise ConfigurationError(
                f"hit latency must be positive, got {self.hit_latency!r}"
            )

    @property
    def n_lines(self) -> int:
        """Total cache frames."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_lines // self.associativity

    @property
    def offset_bits(self) -> int:
        """Bits of byte offset within a line."""
        return self.line_bytes.bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Bits of set index."""
        return self.n_sets.bit_length() - 1

    def block_of(self, address: int) -> int:
        """Block (line-aligned) number of a byte address."""
        if address < 0:
            raise ConfigurationError(f"address cannot be negative, got {address!r}")
        return address >> self.offset_bits

    def set_of_block(self, block: int) -> int:
        """Set index holding a block number."""
        return block & (self.n_sets - 1)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. '64KB 2-way 64B-line (1-cycle)'."""
        size = (
            f"{self.size_bytes // (1024 * 1024)}MB"
            if self.size_bytes >= 1024 * 1024
            else f"{self.size_bytes // 1024}KB"
        )
        way = "direct-mapped" if self.associativity == 1 else f"{self.associativity}-way"
        return f"{size} {way} {self.line_bytes}B-line ({self.hit_latency}-cycle)"


def paper_l1i_config() -> CacheConfig:
    """The paper's L1 instruction cache: 64 KB, 2-way, 1-cycle hits."""
    return CacheConfig("L1I", 64 * 1024, 64, 2, 1)


def paper_l1d_config() -> CacheConfig:
    """The paper's L1 data cache: 64 KB, 2-way, 3-cycle hits."""
    return CacheConfig("L1D", 64 * 1024, 64, 2, 3)


def paper_l2_config() -> CacheConfig:
    """The paper's unified L2: 2 MB, direct-mapped, 7-cycle hits."""
    return CacheConfig("L2", 2 * 1024 * 1024, 64, 1, 7)
