"""Oracle mode assignment and the Theorem 1 optimality verifier.

The *oracle assignment* picks, for each interval independently, the
feasible mode with the lowest energy — the true per-interval optimum that
Theorem 1 proves is attained by the inflection-point region policy.  This
module exists to make that claim checkable:

* :func:`oracle_modes` computes the argmin assignment directly from the
  energy functions (no inflection points involved);
* :func:`oracle_energy` is the corresponding minimum total energy;
* :func:`assignment_energy` prices any candidate assignment, so tests can
  confirm that no alternative (including random perturbations of the
  optimal one) does better — the contradiction argument of the appendix.
"""

from __future__ import annotations

import numpy as np

from ..errors import PolicyError
from .energy import ModeEnergyModel
from .envelope import envelope_array
from .policy import DROWSY, SLEEP


def oracle_modes(model: ModeEnergyModel, lengths: np.ndarray) -> np.ndarray:
    """Per-interval energy-argmin mode codes (feasibility respected).

    Ties break toward the less aggressive mode (active over drowsy over
    sleep), mirroring the paper's half-open region boundaries.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    codes = np.zeros(lengths.shape, dtype=np.uint8)
    best = model.active_energy_array(lengths)
    drowsy_ok = lengths >= model.drowsy_min_length
    if np.any(drowsy_ok):
        drowsy = model.drowsy_energy_array(lengths[drowsy_ok])
        better = drowsy < best[drowsy_ok]
        idx = np.flatnonzero(drowsy_ok)[better]
        codes[idx] = DROWSY
        best[idx] = drowsy[better]
    sleep_ok = lengths >= model.sleep_min_length
    if np.any(sleep_ok):
        sleep = model.sleep_energy_array(lengths[sleep_ok])
        better = sleep < best[sleep_ok]
        idx = np.flatnonzero(sleep_ok)[better]
        codes[idx] = SLEEP
        best[idx] = sleep[better]
    return codes


def oracle_energy(model: ModeEnergyModel, lengths: np.ndarray) -> float:
    """Total energy of the oracle assignment (the Figure 10 envelope sum)."""
    return float(envelope_array(model, np.asarray(lengths, dtype=np.float64)).sum())


def assignment_energy(
    model: ModeEnergyModel, lengths: np.ndarray, codes: np.ndarray
) -> float:
    """Total energy of an arbitrary per-interval mode assignment.

    Raises :class:`PolicyError` if any assignment is infeasible — an
    infeasible assignment has no defined energy, so it cannot be compared.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.shape != lengths.shape:
        raise PolicyError(
            f"assignment shape {codes.shape} does not match lengths "
            f"shape {lengths.shape}"
        )
    if np.any((codes == DROWSY) & (lengths < model.drowsy_min_length)) or np.any(
        (codes == SLEEP) & (lengths < model.sleep_min_length)
    ):
        raise PolicyError("assignment applies a mode to an infeasible interval")
    energy = model.active_energy_array(lengths)
    mask = codes == DROWSY
    if np.any(mask):
        energy[mask] = model.drowsy_energy_array(lengths[mask])
    mask = codes == SLEEP
    if np.any(mask):
        energy[mask] = model.sleep_energy_array(lengths[mask])
    return float(energy.sum())


def is_optimal_assignment(
    model: ModeEnergyModel,
    lengths: np.ndarray,
    codes: np.ndarray,
    tolerance: float = 1e-9,
) -> bool:
    """Whether ``codes`` attains the oracle energy for ``lengths``."""
    return assignment_energy(model, lengths, codes) <= oracle_energy(
        model, lengths
    ) + tolerance
