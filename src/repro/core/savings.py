"""The optimal leakage-saving accumulation (the paper's Figure 5).

Given a set of intervals and a policy, total leakage saving is the sum of
per-interval savings versus the all-active baseline::

    saving = 1 - (policy energy + bookkeeping overhead) / baseline energy

where ``baseline = p_active * total interval cycles`` and, following the
paper's methodology, the dynamic energy of every induced miss is *removed
from* the savings (our sleep energies already include it).  A
:class:`SavingsReport` additionally breaks the result down by mode so the
experiments can explain *where* the savings come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..errors import IntervalError
from .intervals import IntervalSet
from .modes import Mode
from .policy import CODE_MODES, Policy


@dataclass(frozen=True)
class ModeBreakdown:
    """Contribution of one operating mode to a policy's assignment."""

    mode: Mode
    interval_count: int
    cycles: int
    energy: float
    total_cycles: int = 0  #: All interval cycles of the population.

    @property
    def cycle_share(self) -> float:
        """Fraction of all interval cycles spent under this mode (0..1)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.cycles / self.total_cycles


@dataclass(frozen=True)
class SavingsReport:
    """Outcome of evaluating one policy over one interval population."""

    policy_name: str
    baseline_energy: float
    policy_energy: float
    overhead_energy: float
    breakdown: Dict[Mode, ModeBreakdown]

    @property
    def total_energy(self) -> float:
        """Policy energy including bookkeeping overhead."""
        return self.policy_energy + self.overhead_energy

    @property
    def saving_fraction(self) -> float:
        """Leakage power saving versus the all-active cache (0..1)."""
        if self.baseline_energy <= 0:
            return 0.0
        return 1.0 - self.total_energy / self.baseline_energy

    @property
    def remaining_fraction(self) -> float:
        """Leakage left after the policy, as a fraction of baseline."""
        return 1.0 - self.saving_fraction

    def cycles_in(self, mode: Mode) -> int:
        """Interval cycles assigned to ``mode``."""
        entry = self.breakdown.get(mode)
        return entry.cycles if entry is not None else 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.policy_name}: saves {100 * self.saving_fraction:.1f}% "
            f"(baseline {self.baseline_energy:.0f}, "
            f"policy {self.total_energy:.0f} leakage-cycles)"
        )


def evaluate_policy(
    policy: Policy,
    intervals: IntervalSet,
    dead_aware: bool = False,
) -> SavingsReport:
    """Run the Figure 5 accumulation for one policy.

    Parameters
    ----------
    policy:
        A bound policy (carries its energy model and inflection points).
    intervals:
        The interval population (typically merged over all cache frames).
    dead_aware:
        When True, slept dead/cold intervals are not charged re-fetch
        energy (the ablation of §3.1); the paper's default is False.
    """
    if not len(intervals):
        raise IntervalError("cannot evaluate a policy over zero intervals")
    lengths = intervals.lengths
    energies = policy.energies(lengths, intervals.kinds, dead_aware=dead_aware)
    codes = policy.modes(lengths)
    baseline = float(policy.model.active_energy_array(lengths).sum())
    total_cycles = int(lengths.sum())
    overhead = policy.overhead_power_fraction * float(total_cycles)
    breakdown: Dict[Mode, ModeBreakdown] = {}
    for code, mode in CODE_MODES.items():
        mask = codes == code
        if not np.any(mask):
            continue
        breakdown[mode] = ModeBreakdown(
            mode=mode,
            interval_count=int(mask.sum()),
            cycles=int(lengths[mask].sum()),
            energy=float(energies[mask].sum()),
            total_cycles=total_cycles,
        )
    return SavingsReport(
        policy_name=policy.name,
        baseline_energy=baseline,
        policy_energy=float(energies.sum()),
        overhead_energy=overhead,
        breakdown=breakdown,
    )


def evaluate_policies(
    policies: Iterable[Policy],
    intervals: IntervalSet,
    dead_aware: bool = False,
) -> List[SavingsReport]:
    """Evaluate several policies over the same interval population."""
    return [evaluate_policy(p, intervals, dead_aware=dead_aware) for p in policies]


def average_saving(reports: Iterable[SavingsReport]) -> float:
    """Arithmetic mean of saving fractions (the paper's benchmark average)."""
    reports = list(reports)
    if not reports:
        raise IntervalError("cannot average zero savings reports")
    return float(np.mean([r.saving_fraction for r in reports]))
