"""Operating modes of a cache line.

The paper's limit analysis assigns exactly one of three operating modes to
every cache access interval (Theorem 1):

* :data:`Mode.ACTIVE` — full Vdd, data immediately accessible, full leakage.
* :data:`Mode.DROWSY` — reduced retention voltage; state is preserved but
  the line must be ramped back to Vdd (``d3`` cycles) before an access.
* :data:`Mode.SLEEP` — Gated-Vdd; leakage is almost eliminated but the
  state is destroyed, so the line must be re-fetched from L2 (an *induced
  miss*) before the next access.
"""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """Operating mode assigned to one cache access interval."""

    ACTIVE = "active"
    DROWSY = "drowsy"
    SLEEP = "sleep"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def preserves_state(self) -> bool:
        """Whether data survives the interval in this mode."""
        return self is not Mode.SLEEP
