"""Cache access intervals (the paper's §3.1).

An *interval* is the time a cache line rests between two consecutive
accesses.  The limit analysis classifies every interval by length and
applies one operating mode to its whole duration, so intervals — not
individual accesses — are the unit the entire library works in.

Three interval kinds are distinguished (the paper discusses but then
deliberately ignores the live/dead distinction; we keep it for the dead
interval ablation):

* ``NORMAL`` — between two accesses to the same resident line.  Sleeping
  it destroys state that is still needed, so an induced-miss re-fetch is
  charged.
* ``DEAD`` — between the last access of a cache generation and its
  eviction (or end of simulation).  The data is never used again; sleeping
  costs no re-fetch.
* ``COLD`` — from the start of observation until a frame's first fill.
  The frame can rest unpowered at no cost; no entry ramp or re-fetch.

For efficiency on multi-million-access traces, intervals are held
column-wise in an :class:`IntervalSet` (numpy arrays) rather than as
object lists; :class:`Interval` is the scalar view used at API edges and
in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import IntervalError


class IntervalKind(enum.IntEnum):
    """Position of an interval within a cache generation."""

    NORMAL = 0
    DEAD = 1
    COLD = 2


@dataclass(frozen=True)
class Interval:
    """One cache access interval.

    Attributes
    ----------
    length: duration in cycles (strictly positive).
    kind: where in the generation the interval sits.
    """

    length: int
    kind: IntervalKind = IntervalKind.NORMAL

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise IntervalError(
                f"interval length must be positive, got {self.length!r}"
            )

    @property
    def is_live(self) -> bool:
        """Whether the resident data is accessed again after this interval."""
        return self.kind is IntervalKind.NORMAL


class IntervalSet:
    """Column-wise collection of intervals.

    Parameters
    ----------
    lengths:
        Positive interval durations in cycles.
    kinds:
        Optional parallel array of :class:`IntervalKind` values; defaults
        to all ``NORMAL``.
    """

    def __init__(
        self,
        lengths: Sequence[int] | np.ndarray,
        kinds: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.ndim != 1:
            raise IntervalError(
                f"lengths must be one-dimensional, got shape {lengths.shape}"
            )
        if lengths.size and int(lengths.min()) <= 0:
            raise IntervalError("all interval lengths must be positive")
        if kinds is None:
            kinds = np.zeros(lengths.shape, dtype=np.uint8)
        else:
            kinds = np.asarray(kinds, dtype=np.uint8)
            if kinds.shape != lengths.shape:
                raise IntervalError(
                    f"kinds shape {kinds.shape} does not match lengths "
                    f"shape {lengths.shape}"
                )
            if kinds.size and int(kinds.max()) > max(IntervalKind):
                raise IntervalError("kinds contains an unknown IntervalKind value")
        self.lengths = lengths
        self.kinds = kinds

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        """An interval set with no intervals."""
        return cls(np.empty(0, dtype=np.int64))

    @classmethod
    def from_intervals(cls, intervals: Iterable[Interval]) -> "IntervalSet":
        """Build from scalar :class:`Interval` objects."""
        intervals = list(intervals)
        return cls(
            np.array([iv.length for iv in intervals], dtype=np.int64),
            np.array([int(iv.kind) for iv in intervals], dtype=np.uint8),
        )

    @classmethod
    def from_access_times(
        cls,
        times: Sequence[int] | np.ndarray,
        start: int | None = None,
        end: int | None = None,
    ) -> "IntervalSet":
        """Build one frame's intervals from its sorted access cycle stamps.

        Gaps between consecutive accesses become ``NORMAL`` intervals
        (zero-length gaps — multiple accesses in the same cycle — are
        dropped, as no mode decision exists for them).  When ``start`` is
        given, the gap from ``start`` to the first access becomes a
        ``COLD`` interval; when ``end`` is given, the gap from the last
        access to ``end`` becomes a ``DEAD`` interval.
        """
        times = np.asarray(times, dtype=np.int64)
        if times.ndim != 1:
            raise IntervalError("access times must be one-dimensional")
        if times.size == 0:
            if start is not None and end is not None and end > start:
                return cls(
                    np.array([end - start], dtype=np.int64),
                    np.array([IntervalKind.COLD], dtype=np.uint8),
                )
            return cls.empty()
        if times.size > 1 and bool(np.any(np.diff(times) < 0)):
            raise IntervalError("access times must be sorted non-decreasing")
        gaps = np.diff(times)
        gaps = gaps[gaps > 0]
        lengths: List[np.ndarray] = [gaps]
        kinds: List[np.ndarray] = [np.zeros(gaps.shape, dtype=np.uint8)]
        if start is not None:
            if start > int(times[0]):
                raise IntervalError(
                    f"start={start} is after the first access at {int(times[0])}"
                )
            cold = int(times[0]) - start
            if cold > 0:
                lengths.insert(0, np.array([cold], dtype=np.int64))
                kinds.insert(0, np.array([IntervalKind.COLD], dtype=np.uint8))
        if end is not None:
            if end < int(times[-1]):
                raise IntervalError(
                    f"end={end} is before the last access at {int(times[-1])}"
                )
            dead = end - int(times[-1])
            if dead > 0:
                lengths.append(np.array([dead], dtype=np.int64))
                kinds.append(np.array([IntervalKind.DEAD], dtype=np.uint8))
        return cls(np.concatenate(lengths), np.concatenate(kinds))

    @classmethod
    def merge(cls, sets: Iterable["IntervalSet"]) -> "IntervalSet":
        """Concatenate several interval sets (e.g. one per cache frame)."""
        sets = [s for s in sets if len(s)]
        if not sets:
            return cls.empty()
        return cls(
            np.concatenate([s.lengths for s in sets]),
            np.concatenate([s.kinds for s in sets]),
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.lengths.size)

    def __iter__(self) -> Iterator[Interval]:
        for length, kind in zip(self.lengths, self.kinds):
            yield Interval(int(length), IntervalKind(int(kind)))

    def __getitem__(self, index: int) -> Interval:
        return Interval(int(self.lengths[index]), IntervalKind(int(self.kinds[index])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return bool(
            np.array_equal(self.lengths, other.lengths)
            and np.array_equal(self.kinds, other.kinds)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IntervalSet(n={len(self)}, total={self.total_cycles}, "
            f"dead={int(np.sum(self.kinds == IntervalKind.DEAD))})"
        )

    # ------------------------------------------------------------------
    # Views and statistics
    # ------------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Sum of all interval lengths — the all-active baseline exposure."""
        return int(self.lengths.sum())

    def of_kind(self, kind: IntervalKind) -> "IntervalSet":
        """The subset of intervals of one kind."""
        mask = self.kinds == int(kind)
        return IntervalSet(self.lengths[mask], self.kinds[mask])

    def live_only(self) -> "IntervalSet":
        """Only ``NORMAL`` intervals — the paper's default view (§3.1)."""
        return self.of_kind(IntervalKind.NORMAL)

    def as_normal(self) -> "IntervalSet":
        """All intervals re-labelled ``NORMAL``.

        This is the paper's simplification: 'we ignore the effect of live
        and dead intervals, and instead concentrate on the durations'.
        """
        return IntervalSet(self.lengths, np.zeros(self.lengths.shape, dtype=np.uint8))

    def count_by_class(
        self, boundaries: Sequence[float]
    ) -> List[int]:
        """Interval counts per length class.

        ``boundaries=[a, b]`` yields counts for ``(0, a]``, ``(a, b]``,
        ``(b, inf)`` — the three ranges of Figure 9.
        """
        edges = self._edges(boundaries)
        hist, _ = np.histogram(self.lengths, bins=edges)
        return [int(v) for v in hist]

    def cycle_mass_by_class(
        self, boundaries: Sequence[float]
    ) -> List[float]:
        """Fraction of total cycles falling in each length class."""
        edges = self._edges(boundaries)
        total = float(self.lengths.sum())
        if total == 0:
            return [0.0] * (len(edges) - 1)
        mass, _ = np.histogram(self.lengths, bins=edges, weights=self.lengths)
        return [float(v) / total for v in mass]

    @staticmethod
    def _edges(boundaries: Sequence[float]) -> np.ndarray:
        boundaries = list(boundaries)
        if any(b <= 0 for b in boundaries) or sorted(boundaries) != boundaries:
            raise IntervalError(
                f"class boundaries must be positive and sorted, got {boundaries!r}"
            )
        # np.histogram bins are half-open [lo, hi); the paper's classes are
        # (lo, hi], so shift edges by one half-cycle around the integer grid.
        return np.array([0.5] + [b + 0.5 for b in boundaries] + [np.inf])

    def statistics(self) -> "IntervalStatistics":
        """Summary statistics for reports."""
        if not len(self):
            return IntervalStatistics(0, 0, 0.0, 0, 0, 0.0)
        return IntervalStatistics(
            count=len(self),
            total_cycles=self.total_cycles,
            mean_length=float(self.lengths.mean()),
            median_length=int(np.median(self.lengths)),
            max_length=int(self.lengths.max()),
            dead_fraction=float(np.mean(self.kinds == IntervalKind.DEAD)),
        )


@dataclass(frozen=True)
class IntervalStatistics:
    """Summary statistics over an interval set."""

    count: int
    total_cycles: int
    mean_length: float
    median_length: int
    max_length: int
    dead_fraction: float

    def as_rows(self) -> List[Tuple[str, str]]:
        """Render as (label, value) rows for the report formatter."""
        return [
            ("intervals", f"{self.count}"),
            ("total cycles", f"{self.total_cycles}"),
            ("mean length", f"{self.mean_length:.1f}"),
            ("median length", f"{self.median_length}"),
            ("max length", f"{self.max_length}"),
            ("dead fraction", f"{self.dead_fraction:.3f}"),
        ]
