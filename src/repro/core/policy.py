"""Leakage-management policies (§3.2, §4.3–4.4 of the paper).

A policy maps every access interval to an operating mode, given perfect
knowledge of the interval's length.  The concrete policies mirror the
schemes the paper evaluates in Figures 7 and 8:

* :class:`AlwaysActive` — the baseline; no leakage is saved.
* :class:`OptDrowsy` — OPT-Drowsy: drowsy whenever feasible.
* :class:`OptSleep` — OPT-Sleep(θ): sleep every interval longer than the
  threshold θ (θ = the sleep-drowsy point for Table 2's OPT-Sleep,
  θ = 10 000 for OPT-Sleep(10K)); everything else stays active.
* :class:`DecaySleep` — Sleep(θ): the implementable cache-decay scheme —
  the line idles at full power for the decay interval *then* sleeps, and a
  per-line decay counter adds a constant leakage overhead.
* :class:`OptHybrid` — OPT-Hybrid: Theorem 1's optimal three-mode policy,
  with an optional raised sleep threshold for the Figure 7 sweep.

Policies assign modes vectorially over numpy length arrays; per-interval
energies come from the :class:`~repro.core.energy.ModeEnergyModel`.  The
``dead_aware`` evaluation path (used by the dead-interval ablation) prices
``DEAD``/``COLD`` intervals without the induced-miss re-fetch, since no
live data is destroyed by sleeping them.
"""

from __future__ import annotations

import numpy as np

from ..errors import PolicyError
from .energy import ModeEnergyModel
from .inflection import InflectionPoints, inflection_points
from .intervals import IntervalKind
from .modes import Mode

#: Integer codes used in vectorized mode arrays.
MODE_CODES = {Mode.ACTIVE: 0, Mode.DROWSY: 1, Mode.SLEEP: 2}
CODE_MODES = {code: mode for mode, code in MODE_CODES.items()}

ACTIVE, DROWSY, SLEEP = 0, 1, 2


class Policy:
    """Base class: assigns modes to intervals and prices the assignment.

    Subclasses implement :meth:`modes`; energy evaluation is shared.  A
    policy is bound to a :class:`ModeEnergyModel` at construction, since
    its decisions depend on the model's inflection points.
    """

    #: Extra always-on leakage (fraction of a line's active power) the
    #: policy's bookkeeping hardware costs — e.g. decay counters.
    overhead_power_fraction: float = 0.0

    def __init__(self, model: ModeEnergyModel, name: str | None = None) -> None:
        self.model = model
        self.points: InflectionPoints = inflection_points(model)
        self.name = name if name is not None else type(self).__name__

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        """Return an array of mode codes, one per interval length."""
        raise NotImplementedError

    def mode_for(self, length: int) -> Mode:
        """Scalar convenience wrapper around :meth:`modes`."""
        code = int(self.modes(np.array([length], dtype=np.int64))[0])
        return CODE_MODES[code]

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------

    def energies(
        self,
        lengths: np.ndarray,
        kinds: np.ndarray | None = None,
        dead_aware: bool = False,
    ) -> np.ndarray:
        """Per-interval energies under this policy's assignment.

        With ``dead_aware=True``, slept ``DEAD`` and ``COLD`` intervals are
        not charged the induced-miss re-fetch (no live data was lost), and
        ``COLD`` intervals also skip the power-down ramp (the frame was
        never powered).
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        codes = self.modes(lengths)
        self._validate_feasibility(lengths, codes)
        energy = self.model.active_energy_array(lengths)
        drowsy_mask = codes == DROWSY
        if np.any(drowsy_mask):
            energy[drowsy_mask] = self.model.drowsy_energy_array(lengths[drowsy_mask])
        sleep_mask = codes == SLEEP
        if np.any(sleep_mask):
            energy[sleep_mask] = self._sleep_energies(lengths[sleep_mask])
            if dead_aware and kinds is not None:
                kinds = np.asarray(kinds)
                not_live = sleep_mask & (kinds != IntervalKind.NORMAL)
                if np.any(not_live):
                    energy[not_live] -= self.model.refetch_energy
                cold = sleep_mask & (kinds == IntervalKind.COLD)
                if np.any(cold):
                    # No entry ramp either: the frame starts unpowered.
                    d = self.model.durations
                    ramp_saving = (
                        0.5 * (self.model.p_active - self.model.p_sleep) * d.s1
                        if self.model.trapezoidal_ramps
                        else (self.model.p_active - self.model.p_sleep) * d.s1
                    )
                    energy[cold] -= ramp_saving
        return energy

    def _sleep_energies(self, lengths: np.ndarray) -> np.ndarray:
        """Energy of slept intervals; subclasses may model a decay wait."""
        return self.model.sleep_energy_array(lengths)

    def _validate_feasibility(self, lengths: np.ndarray, codes: np.ndarray) -> None:
        drowsy_bad = np.any(
            (codes == DROWSY) & (lengths < self.model.drowsy_min_length)
        )
        sleep_bad = np.any(
            (codes == SLEEP) & (lengths < self._sleep_feasibility_floor())
        )
        if drowsy_bad or sleep_bad:
            raise PolicyError(
                f"policy {self.name!r} assigned a mode to an interval shorter "
                "than the mode's transition time"
            )

    def _sleep_feasibility_floor(self) -> float:
        return self.model.sleep_min_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class AlwaysActive(Policy):
    """The unmanaged baseline: every line stays at full Vdd."""

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(lengths).shape, dtype=np.uint8)


class OptDrowsy(Policy):
    """OPT-Drowsy: drowsy for every interval longer than ``a = d1 + d3``."""

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(lengths)
        codes = np.zeros(lengths.shape, dtype=np.uint8)
        codes[lengths > self.points.active_drowsy] = DROWSY
        return codes


class OptSleep(Policy):
    """OPT-Sleep(θ): optimally sleep every interval longer than θ.

    With ``threshold=None`` the threshold is the sleep-drowsy inflection
    point — the most aggressive sleeping that still beats drowsy mode
    (Table 2's OPT-Sleep).  Intervals at or below the threshold stay fully
    active (this scheme never uses drowsy mode).
    """

    def __init__(
        self,
        model: ModeEnergyModel,
        threshold: float | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(model, name)
        if threshold is None:
            threshold = self.points.drowsy_sleep
        if threshold < model.sleep_min_length:
            raise PolicyError(
                f"sleep threshold {threshold!r} is below the sleep transition "
                f"time of {model.sleep_min_length} cycles"
            )
        self.threshold = float(threshold)
        if name is None:
            self.name = f"OPT-Sleep({self._format_threshold()})"

    def _format_threshold(self) -> str:
        if self.threshold >= 1000 and self.threshold % 1000 == 0:
            return f"{int(self.threshold) // 1000}K"
        return f"{self.threshold:g}"

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(lengths)
        codes = np.zeros(lengths.shape, dtype=np.uint8)
        codes[lengths > self.threshold] = SLEEP
        return codes


class DecaySleep(Policy):
    """Sleep(θ): the implementable cache-decay scheme (Kaxiras et al. [6]).

    The policy has no oracle, so a line idles at full power for the decay
    interval θ and is only then gated off; it still re-fetches on the next
    access.  A per-line decay counter costs a small constant leakage
    overhead, charged over every cycle (``counter_overhead`` as a fraction
    of a line's active leakage).
    """

    def __init__(
        self,
        model: ModeEnergyModel,
        decay_interval: float = 10_000,
        counter_overhead: float = 0.002,
        name: str | None = None,
    ) -> None:
        super().__init__(model, name)
        if decay_interval <= 0:
            raise PolicyError(
                f"decay interval must be positive, got {decay_interval!r}"
            )
        if counter_overhead < 0:
            raise PolicyError(
                f"counter overhead cannot be negative, got {counter_overhead!r}"
            )
        self.decay_interval = float(decay_interval)
        self.overhead_power_fraction = float(counter_overhead)
        if name is None:
            threshold = (
                f"{int(self.decay_interval) // 1000}K"
                if self.decay_interval >= 1000 and self.decay_interval % 1000 == 0
                else f"{self.decay_interval:g}"
            )
            self.name = f"Sleep({threshold})"

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(lengths)
        codes = np.zeros(lengths.shape, dtype=np.uint8)
        sleepable = lengths >= self.decay_interval + self.model.sleep_min_length
        codes[sleepable] = SLEEP
        return codes

    def _sleep_energies(self, lengths: np.ndarray) -> np.ndarray:
        return self.model.decay_sleep_energy_array(lengths, self.decay_interval)

    def _sleep_feasibility_floor(self) -> float:
        return self.decay_interval + self.model.sleep_min_length


class OptHybrid(Policy):
    """OPT-Hybrid: Theorem 1's optimal three-mode policy.

    ``sleep_threshold`` raises the minimum interval length put to sleep
    above the inflection point (the Figure 7 sweep); drowsy mode covers
    everything between the active-drowsy point and the sleep threshold.
    """

    def __init__(
        self,
        model: ModeEnergyModel,
        sleep_threshold: float | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(model, name)
        floor = self.points.drowsy_sleep
        if sleep_threshold is None:
            sleep_threshold = floor
        if sleep_threshold < floor:
            raise PolicyError(
                f"hybrid sleep threshold {sleep_threshold!r} is below the "
                f"sleep-drowsy inflection point {floor:.1f}; sleeping there "
                "would cost more energy than drowsy mode"
            )
        self.sleep_threshold = float(sleep_threshold)
        if name is None:
            self.name = "OPT-Hybrid"

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(lengths)
        codes = np.zeros(lengths.shape, dtype=np.uint8)
        codes[lengths > self.points.active_drowsy] = DROWSY
        codes[lengths > self.sleep_threshold] = SLEEP
        return codes


def standard_policies(model: ModeEnergyModel) -> list:
    """The four oracle schemes of Figure 8, in its bar order."""
    return [
        OptDrowsy(model, name="OPT-Drowsy"),
        DecaySleep(model, decay_interval=10_000),
        OptSleep(model, threshold=10_000),
        OptHybrid(model),
    ]
