"""Inflection-point derivation (the paper's Equation 3 and Table 1).

Two inflection points split the interval-length axis into the three
operating-mode regions of Theorem 1:

* the **active-drowsy point** ``a = d1 + d3`` — by Definition 3 it is the
  sum of the drowsy entry and exit ramp durations (6 cycles for the
  paper's parameters, at every technology node);
* the **sleep-drowsy point** ``b`` — the interval length at which a sleep
  interval (including the induced-miss re-fetch energy) costs exactly as
  much as a drowsy interval.  Because both per-mode energies are affine in
  the interval length, ``b`` has the closed form::

        sleep_constant - drowsy_constant
    b = --------------------------------
             p_drowsy  -  p_sleep

The module also provides a bisection solver used by tests to confirm the
closed form against the raw energy functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PowerModelError
from ..power.technology import TechnologyNode
from .energy import ModeEnergyModel, TransitionDurations
from .modes import Mode


@dataclass(frozen=True)
class InflectionPoints:
    """The two mode-boundary interval lengths, in cycles.

    ``active_drowsy`` is exact (a sum of integer durations);
    ``drowsy_sleep`` carries the exact real solution of Equation 3 plus its
    rounded form as reported in the paper's Table 1.
    """

    active_drowsy: int
    drowsy_sleep: float

    @property
    def drowsy_sleep_cycles(self) -> int:
        """The sleep-drowsy point rounded to whole cycles (Table 1 form)."""
        return int(round(self.drowsy_sleep))

    def classify(self, length: float) -> Mode:
        """Map an interval length to its optimal mode (Theorem 1 policy).

        ``(0, a]`` -> active, ``(a, b]`` -> drowsy, ``(b, inf)`` -> sleep.
        """
        if length <= self.active_drowsy:
            return Mode.ACTIVE
        if length <= self.drowsy_sleep:
            return Mode.DROWSY
        return Mode.SLEEP


def solve_sleep_drowsy_point(model: ModeEnergyModel) -> float:
    """Solve Equation 3 (``E_S = E_D``) for the interval length.

    Raises :class:`PowerModelError` when sleep can never match drowsy
    (non-positive leakage-power gap) or when the crossing falls below the
    sleep feasibility bound, which would make the optimal policy ill
    defined.
    """
    gap = model.p_drowsy - model.p_sleep
    if gap <= 0:
        raise PowerModelError(
            "drowsy leakage must exceed sleep leakage for a sleep-drowsy "
            f"inflection point to exist (gap={gap!r})"
        )
    point = (model.sleep_constant - model.drowsy_constant) / gap
    if point < model.sleep_min_length:
        raise PowerModelError(
            f"sleep-drowsy crossing at {point:.1f} cycles is below the sleep "
            f"feasibility bound of {model.sleep_min_length} cycles; increase "
            "the re-fetch energy or shorten the sleep transitions"
        )
    return point


def solve_sleep_drowsy_point_bisect(
    model: ModeEnergyModel, hi: float = 1e9, tolerance: float = 1e-6
) -> float:
    """Numerically locate the Equation 3 crossing by bisection.

    Exists to cross-check :func:`solve_sleep_drowsy_point` in the test
    suite; both must agree to within ``tolerance``.
    """
    lo = float(model.sleep_min_length)

    def difference(length: float) -> float:
        return model.sleep_energy(length) - model.drowsy_energy(length)

    f_lo = difference(lo)
    if f_lo <= 0:
        return lo
    if difference(hi) > 0:
        raise PowerModelError(
            f"no sleep-drowsy crossing below {hi:g} cycles; sleep never wins"
        )
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if difference(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def inflection_points(model: ModeEnergyModel) -> InflectionPoints:
    """Compute both inflection points for an energy model."""
    return InflectionPoints(
        active_drowsy=model.durations.drowsy_overhead,
        drowsy_sleep=solve_sleep_drowsy_point(model),
    )


def inflection_points_for_node(
    node: TechnologyNode, durations: TransitionDurations | None = None
) -> InflectionPoints:
    """Convenience wrapper: build the energy model and solve."""
    return inflection_points(ModeEnergyModel(node, durations=durations))


def breakeven_table(
    nodes: dict,
    durations: TransitionDurations | None = None,
) -> dict:
    """Compute a Table 1-style mapping ``feature_nm -> InflectionPoints``."""
    return {
        key: inflection_points_for_node(node, durations)
        for key, node in sorted(nodes.items(), key=lambda item: item[0])
    }


def sanity_check_lemma1(points: InflectionPoints) -> bool:
    """Lemma 1: the active-drowsy point is below the sleep-drowsy point."""
    return points.active_drowsy < points.drowsy_sleep and math.isfinite(
        points.drowsy_sleep
    )
