"""The energy-versus-interval lower envelope (the paper's Figure 10).

For every interval length, each feasible operating mode has an affine
energy cost; the *lower envelope* — the pointwise minimum over feasible
modes — is what Theorem 1's optimal policy achieves.  The envelope is
piecewise linear with slopes ``P_active``, ``P_drowsy``, ``P_sleep`` over
the three regions split by the inflection points ``a`` and ``b``.

One boundary subtlety is worth recording: the paper assigns ``(0, a]`` to
active mode for *access latency* reasons (a line cannot ramp down and back
up inside fewer than ``d1 + d3`` cycles), not because active is cheaper in
energy at exactly ``a``.  All energy-optimality statements here therefore
hold for lengths strictly above ``a``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .energy import ModeEnergyModel
from .inflection import inflection_points
from .modes import Mode


def feasible_modes(model: ModeEnergyModel, length: float) -> List[Mode]:
    """All modes that can physically be applied to an interval."""
    return [mode for mode in Mode if model.feasible(mode, length)]


def envelope_energy(model: ModeEnergyModel, length: float) -> float:
    """Minimum energy over feasible modes at one interval length."""
    return min(model.energy(mode, length) for mode in feasible_modes(model, length))


def envelope_mode(model: ModeEnergyModel, length: float) -> Mode:
    """The energy-minimizing feasible mode at one interval length.

    Ties break toward the mode Theorem 1's region policy would pick
    (active < drowsy < sleep by increasing region), matching the paper's
    half-open region boundaries.
    """
    best = Mode.ACTIVE
    best_energy = float("inf")
    for mode in (Mode.ACTIVE, Mode.DROWSY, Mode.SLEEP):
        if not model.feasible(mode, length):
            continue
        energy = model.energy(mode, length)
        if energy < best_energy:
            best, best_energy = mode, energy
    return best


def envelope_array(model: ModeEnergyModel, lengths: np.ndarray) -> np.ndarray:
    """Vectorized lower envelope over an array of interval lengths."""
    lengths = np.asarray(lengths, dtype=np.float64)
    energy = model.active_energy_array(lengths)
    drowsy_ok = lengths >= model.drowsy_min_length
    if np.any(drowsy_ok):
        energy[drowsy_ok] = np.minimum(
            energy[drowsy_ok], model.drowsy_energy_array(lengths[drowsy_ok])
        )
    sleep_ok = lengths >= model.sleep_min_length
    if np.any(sleep_ok):
        energy[sleep_ok] = np.minimum(
            energy[sleep_ok], model.sleep_energy_array(lengths[sleep_ok])
        )
    return energy


def envelope_series(
    model: ModeEnergyModel, max_length: int, n_points: int = 200
) -> List[Tuple[float, float, float, float]]:
    """The Figure 10 plot data.

    Returns ``(length, active, drowsy-or-nan, sleep-or-nan)`` rows on a
    logarithmic length grid up to ``max_length``; infeasible modes are NaN
    so a plotting front end naturally truncates their segments.
    """
    grid = np.unique(
        np.round(np.logspace(0, np.log10(max_length), n_points)).astype(np.int64)
    )
    rows = []
    for length in grid:
        length = int(length)
        active = model.active_energy(length)
        drowsy = (
            model.drowsy_energy(length)
            if length >= model.drowsy_min_length
            else float("nan")
        )
        sleep = (
            model.sleep_energy(length)
            if length >= model.sleep_min_length
            else float("nan")
        )
        rows.append((float(length), active, drowsy, sleep))
    return rows


def region_slopes(model: ModeEnergyModel) -> Tuple[float, float, float]:
    """Slopes P1, P2, P3 of the envelope over the three Theorem 1 regions."""
    return (model.p_active, model.p_drowsy, model.p_sleep)


def verify_lemma1(model: ModeEnergyModel) -> bool:
    """Lemma 1: ``a < b`` for any physically-valid parameterization."""
    points = inflection_points(model)
    return points.active_drowsy < points.drowsy_sleep


def verify_envelope_matches_policy(
    model: ModeEnergyModel, lengths: np.ndarray, tolerance: float = 1e-9
) -> bool:
    """Theorem 1 check: the region policy achieves the lower envelope.

    True when, for every length strictly above the active-drowsy point,
    the mode chosen by the inflection-point classification attains the
    envelope energy (within ``tolerance``).
    """
    points = inflection_points(model)
    lengths = np.asarray(lengths, dtype=np.int64)
    lengths = lengths[lengths > points.active_drowsy]
    envelope = envelope_array(model, lengths)
    for length, env in zip(lengths, envelope):
        assigned = points.classify(float(length))
        if model.energy(assigned, float(length)) > env + tolerance:
            return False
    return True
