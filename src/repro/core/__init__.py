"""The paper's primary contribution: oracle leakage-limit analysis.

Everything here operates on *access intervals* — the time a cache line
rests between two accesses — and answers the paper's central question:
with perfect knowledge of the future address trace, how much leakage can
sleep (Gated-Vdd) and drowsy modes save?

The public surface:

* :class:`~repro.core.intervals.IntervalSet` — interval populations.
* :class:`~repro.core.energy.ModeEnergyModel` /
  :class:`~repro.core.energy.TransitionDurations` — Equations 1 and 2.
* :func:`~repro.core.inflection.inflection_points` — Equation 3 / Table 1.
* Policies (:class:`~repro.core.policy.OptHybrid` et al.) — Figures 7/8.
* :func:`~repro.core.savings.evaluate_policy` — the Figure 5 algorithm.
* :class:`~repro.core.model.StateMachineModel` — the §3.3 generalized
  model behind Table 2.
* :mod:`~repro.core.envelope` / :mod:`~repro.core.oracle` — Figure 10 and
  the Theorem 1 optimality machinery.
"""

from .energy import ModeEnergyModel, TransitionDurations
from .envelope import (
    envelope_array,
    envelope_energy,
    envelope_mode,
    envelope_series,
    verify_envelope_matches_policy,
    verify_lemma1,
)
from .inflection import (
    InflectionPoints,
    breakeven_table,
    inflection_points,
    inflection_points_for_node,
    solve_sleep_drowsy_point,
)
from .intervals import Interval, IntervalKind, IntervalSet, IntervalStatistics
from .model import StateMachineModel, Transition, technology_sweep
from .modes import Mode
from .oracle import (
    assignment_energy,
    is_optimal_assignment,
    oracle_energy,
    oracle_modes,
)
from .policy import (
    AlwaysActive,
    DecaySleep,
    OptDrowsy,
    OptHybrid,
    OptSleep,
    Policy,
    standard_policies,
)
from .savings import (
    ModeBreakdown,
    SavingsReport,
    average_saving,
    evaluate_policies,
    evaluate_policy,
)

__all__ = [
    "AlwaysActive",
    "DecaySleep",
    "InflectionPoints",
    "Interval",
    "IntervalKind",
    "IntervalSet",
    "IntervalStatistics",
    "Mode",
    "ModeBreakdown",
    "ModeEnergyModel",
    "OptDrowsy",
    "OptHybrid",
    "OptSleep",
    "Policy",
    "SavingsReport",
    "StateMachineModel",
    "Transition",
    "TransitionDurations",
    "assignment_energy",
    "average_saving",
    "breakeven_table",
    "envelope_array",
    "envelope_energy",
    "envelope_mode",
    "envelope_series",
    "evaluate_policies",
    "evaluate_policy",
    "inflection_points",
    "inflection_points_for_node",
    "is_optimal_assignment",
    "oracle_energy",
    "oracle_modes",
    "solve_sleep_drowsy_point",
    "standard_policies",
    "technology_sweep",
    "verify_envelope_matches_policy",
    "verify_lemma1",
]
