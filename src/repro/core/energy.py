"""Per-interval energy accounting (the paper's Equations 1 and 2).

The lifetime of an access interval under each mode decomposes into the
durations of Figure 4:

Sleep mode (total interval length ``L``)::

    s1            s2              s3   s4
    [high -> off][ ... off ... ][off->high][high]   + refetch energy (*)

Drowsy mode::

    d1            d2              d3
    [high -> low][ ... low ... ][low->high]

``s4 = D - s3`` absorbs the remainder of the L2 hit latency ``D`` after
the voltage has recovered: with oracle timing, the just-in-time re-fetch
begins ``D`` cycles before the access, the supply is already high for the
last ``s4`` of them, and the dynamic energy of the induced miss (``*``,
priced by a CACTI-style model) is charged to the interval.

Voltage-ramp phases (``s1``, ``s3``, ``d1``, ``d3``) are charged the
*trapezoidal* average of the endpoint leakage powers — leakage falls
roughly with the supply as it ramps.  A step model (full leakage during
ramps) is available for the ablation study.

Energies are expressed in *active-line-leakage-cycles* (see
:mod:`repro.units`): a fully-on line leaks exactly 1.0 per cycle, so the
drowsy and sleep powers are simply the node's mode ratios and the re-fetch
energy is the node's ``refetch_energy_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, PolicyError
from ..power.technology import TechnologyNode
from .modes import Mode


@dataclass(frozen=True)
class TransitionDurations:
    """Mode-transition durations in cycles (paper §4.2, from [10]).

    ``s2`` and ``d2`` are not stored: they are whatever remains of the
    interval after the fixed phases.

    Attributes
    ----------
    s1: cycles to drive the supply from high to fully off (sleep entry).
    s3: cycles to restore the supply from off to high (sleep exit).
    s4: cycles at full supply awaiting the re-fetched data;
        ``s4 = l2_latency - s3`` for a just-in-time re-fetch.
    d1: cycles to lower the supply to the retention voltage (drowsy entry).
    d3: cycles to raise the supply back to Vdd (drowsy exit).
    """

    s1: int = 30
    s3: int = 3
    s4: int = 4
    d1: int = 3
    d3: int = 3

    def __post_init__(self) -> None:
        for name in ("s1", "s3", "s4", "d1", "d3"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 0:
                raise ConfigurationError(
                    f"duration {name} must be a non-negative integer, got {value!r}"
                )
        if self.d1 + self.d3 <= 0:
            raise ConfigurationError("drowsy transition must take at least 1 cycle")

    @property
    def sleep_overhead(self) -> int:
        """Total fixed cycles of a sleep interval (``s1 + s3 + s4``)."""
        return self.s1 + self.s3 + self.s4

    @property
    def drowsy_overhead(self) -> int:
        """Total fixed cycles of a drowsy interval (``d1 + d3``).

        This *is* the active-drowsy inflection point ``a`` (Definition 3).
        """
        return self.d1 + self.d3

    @classmethod
    def for_l2_latency(cls, l2_latency: int, **overrides: int) -> "TransitionDurations":
        """Build durations with ``s4`` derived from an L2 hit latency."""
        s3 = int(overrides.pop("s3", 3))
        if l2_latency < s3:
            raise ConfigurationError(
                f"L2 latency {l2_latency} is below the sleep wakeup time {s3}; "
                "a just-in-time re-fetch would finish before the supply recovers"
            )
        return cls(s3=s3, s4=l2_latency - s3, **overrides)


#: Leakage power of a fully-active line in normalized units.
P_ACTIVE = 1.0


class ModeEnergyModel:
    """Closed-form interval energies for active, drowsy and sleep modes.

    Parameters
    ----------
    node:
        Technology node supplying the mode leakage ratios and the
        calibrated re-fetch energy.
    durations:
        Transition durations; defaults to the paper's values
        (``s1=30, s3=3, s4=4, d1=3, d3=3``).
    trapezoidal_ramps:
        When True (default), a voltage-ramp phase is charged the average of
        its endpoint powers; when False, it is charged full active power
        (the pessimistic step model used in the ramp ablation).
    """

    def __init__(
        self,
        node: TechnologyNode,
        durations: TransitionDurations | None = None,
        trapezoidal_ramps: bool = True,
    ) -> None:
        self.node = node
        self.durations = durations if durations is not None else TransitionDurations()
        self.trapezoidal_ramps = bool(trapezoidal_ramps)
        self.p_active = P_ACTIVE
        self.p_drowsy = node.drowsy_ratio * P_ACTIVE
        self.p_sleep = node.sleep_ratio * P_ACTIVE
        self.refetch_energy = node.refetch_energy_cycles
        self._precompute_constants()

    def _ramp_power(self, p_from: float, p_to: float) -> float:
        """Leakage power charged during a voltage ramp between two levels."""
        if self.trapezoidal_ramps:
            return 0.5 * (p_from + p_to)
        return max(p_from, p_to)

    def _precompute_constants(self) -> None:
        d = self.durations
        ramp_sd = self._ramp_power(self.p_active, self.p_sleep)
        ramp_dd = self._ramp_power(self.p_active, self.p_drowsy)
        # E_sleep(L)  = p_sleep * L + sleep_constant           (Equation 1)
        # E_drowsy(L) = p_drowsy * L + drowsy_constant         (Equation 2)
        self.sleep_constant = (
            ramp_sd * (d.s1 + d.s3)
            + self.p_active * d.s4
            - self.p_sleep * d.sleep_overhead
            + self.refetch_energy
        )
        self.drowsy_constant = (ramp_dd - self.p_drowsy) * d.drowsy_overhead

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    @property
    def drowsy_min_length(self) -> int:
        """Shortest interval that can be spent in drowsy mode."""
        return self.durations.drowsy_overhead

    @property
    def sleep_min_length(self) -> int:
        """Shortest interval that can be spent in sleep mode."""
        return self.durations.sleep_overhead

    def feasible(self, mode: Mode, length: float) -> bool:
        """Whether ``mode`` can be applied to an interval of ``length``."""
        if mode is Mode.ACTIVE:
            return length > 0
        if mode is Mode.DROWSY:
            return length >= self.drowsy_min_length
        return length >= self.sleep_min_length

    # ------------------------------------------------------------------
    # Scalar energies (Equations 1 and 2)
    # ------------------------------------------------------------------

    def active_energy(self, length: float) -> float:
        """Energy of an interval left fully powered."""
        self._check_length(length)
        return self.p_active * length

    def drowsy_energy(self, length: float) -> float:
        """Energy of an interval spent in drowsy mode (Equation 2)."""
        self._check_length(length)
        if length < self.drowsy_min_length:
            raise PolicyError(
                f"interval of {length} cycles is too short for drowsy mode "
                f"(needs >= {self.drowsy_min_length})"
            )
        return self.p_drowsy * length + self.drowsy_constant

    def sleep_energy(self, length: float) -> float:
        """Energy of an interval spent in sleep mode (Equation 1).

        Includes the dynamic energy of the induced miss that re-fetches the
        line from L2 just in time for the closing access.
        """
        self._check_length(length)
        if length < self.sleep_min_length:
            raise PolicyError(
                f"interval of {length} cycles is too short for sleep mode "
                f"(needs >= {self.sleep_min_length})"
            )
        return self.p_sleep * length + self.sleep_constant

    def decay_sleep_energy(self, length: float, wait: float) -> float:
        """Energy of a *decay*-style sleep: stay active ``wait`` cycles first.

        Models the cache-decay scheme (Sleep(10K) in the paper): the line
        cannot be slept at the start of the interval because the policy has
        no oracle — it waits out the decay interval at full power and only
        then gates Vdd.  The closing re-fetch is still charged.
        """
        self._check_length(length)
        if wait < 0:
            raise PolicyError(f"decay wait must be non-negative, got {wait!r}")
        if length - wait < self.sleep_min_length:
            raise PolicyError(
                f"interval of {length} cycles leaves {length - wait} after a "
                f"{wait}-cycle decay wait; sleep needs >= {self.sleep_min_length}"
            )
        return self.p_active * wait + self.sleep_energy(length - wait) - 0.0

    def energy(self, mode: Mode, length: float) -> float:
        """Dispatch to the per-mode energy function."""
        if mode is Mode.ACTIVE:
            return self.active_energy(length)
        if mode is Mode.DROWSY:
            return self.drowsy_energy(length)
        if mode is Mode.SLEEP:
            return self.sleep_energy(length)
        raise PolicyError(f"unknown mode {mode!r}")

    def saving(self, mode: Mode, length: float) -> float:
        """Energy saved versus leaving the line active for the interval."""
        return self.active_energy(length) - self.energy(mode, length)

    # ------------------------------------------------------------------
    # Vectorized energies (used by the policy evaluator on large traces)
    # ------------------------------------------------------------------

    def active_energy_array(self, lengths: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`active_energy`."""
        return self.p_active * np.asarray(lengths, dtype=np.float64)

    def drowsy_energy_array(self, lengths: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`drowsy_energy` (caller guarantees feasibility)."""
        lengths = np.asarray(lengths, dtype=np.float64)
        return self.p_drowsy * lengths + self.drowsy_constant

    def sleep_energy_array(self, lengths: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sleep_energy` (caller guarantees feasibility)."""
        lengths = np.asarray(lengths, dtype=np.float64)
        return self.p_sleep * lengths + self.sleep_constant

    def decay_sleep_energy_array(
        self, lengths: np.ndarray, wait: float
    ) -> np.ndarray:
        """Vectorized :meth:`decay_sleep_energy` (caller guarantees feasibility)."""
        lengths = np.asarray(lengths, dtype=np.float64)
        return self.p_active * wait + self.sleep_energy_array(lengths - wait)

    @staticmethod
    def _check_length(length: float) -> None:
        if length <= 0:
            raise PolicyError(
                f"interval length must be positive, got {length!r} cycles"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ModeEnergyModel(node={self.node.name}, "
            f"p_drowsy={self.p_drowsy:.4f}, p_sleep={self.p_sleep:.4f}, "
            f"refetch={self.refetch_energy:.1f} cycles)"
        )
