"""The generalized optimal-leakage-saving model (the paper's §3.3, Figure 6).

The paper abstracts its limit analysis into a three-state machine —
Active, Drowsy, Sleep — where each state carries a static power and each
edge a transition energy and duration.  All circuit assumptions (from
CACTI, HotLeakage, and the interval trace from the simulator) enter as
parameters, and the outputs are the optimal saving percentages of the
OPT-Drowsy, OPT-Sleep and OPT-Hybrid methods — exactly what Table 2
reports per technology node.

Two evaluation paths are provided and must agree:

* the closed forms inherited from :class:`~repro.core.energy.ModeEnergyModel`
  (affine in interval length), and
* :meth:`StateMachineModel.simulate_schedule`, a discrete cycle-by-cycle
  walk of the state machine that integrates power numerically — the
  cross-check the test suite uses to validate every closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError, PolicyError
from ..power.technology import TechnologyNode
from .energy import ModeEnergyModel, TransitionDurations
from .intervals import IntervalSet
from .modes import Mode
from .policy import OptDrowsy, OptHybrid, OptSleep
from .savings import SavingsReport, evaluate_policy


@dataclass(frozen=True)
class Transition:
    """One edge of the Figure 6 state machine."""

    source: Mode
    target: Mode
    duration: int
    energy: float

    def __post_init__(self) -> None:
        if self.duration < 0 or self.energy < 0:
            raise ConfigurationError(
                f"transition {self.source}->{self.target} has negative "
                f"duration or energy: {(self.duration, self.energy)!r}"
            )


class StateMachineModel:
    """The parameterized Figure 6 model.

    States carry static powers (``state_power``); edges carry transition
    durations and energies (``transitions``).  The model knows how to
    price a whole access interval spent in each mode, reproducing
    Equations 1 and 2, and how to numerically simulate an arbitrary mode
    schedule for validation.
    """

    def __init__(
        self,
        state_power: Dict[Mode, float],
        transitions: Dict[Tuple[Mode, Mode], Transition],
        refetch_energy: float,
        ready_cycles: int = 0,
    ) -> None:
        for mode in Mode:
            if mode not in state_power:
                raise ConfigurationError(f"missing static power for state {mode}")
            if state_power[mode] < 0:
                raise ConfigurationError(
                    f"static power of {mode} cannot be negative"
                )
        self.state_power = dict(state_power)
        self.transitions = dict(transitions)
        if refetch_energy < 0:
            raise ConfigurationError("re-fetch energy cannot be negative")
        self.refetch_energy = refetch_energy
        # Cycles at full power awaiting the re-fetched data (s4).
        self.ready_cycles = ready_cycles

    # ------------------------------------------------------------------
    # Construction from the circuit-level model
    # ------------------------------------------------------------------

    @classmethod
    def from_energy_model(cls, model: ModeEnergyModel) -> "StateMachineModel":
        """Derive states and edges from a :class:`ModeEnergyModel`.

        Edge energies integrate the (trapezoidal or step) ramp power over
        the corresponding duration, so the state machine and the closed
        forms describe the same physics.
        """
        d = model.durations
        power = {
            Mode.ACTIVE: model.p_active,
            Mode.DROWSY: model.p_drowsy,
            Mode.SLEEP: model.p_sleep,
        }

        def ramp_energy(p_from: float, p_to: float, cycles: int) -> float:
            if model.trapezoidal_ramps:
                return 0.5 * (p_from + p_to) * cycles
            return max(p_from, p_to) * cycles

        transitions = {
            (Mode.ACTIVE, Mode.DROWSY): Transition(
                Mode.ACTIVE, Mode.DROWSY, d.d1,
                ramp_energy(model.p_active, model.p_drowsy, d.d1),
            ),
            (Mode.DROWSY, Mode.ACTIVE): Transition(
                Mode.DROWSY, Mode.ACTIVE, d.d3,
                ramp_energy(model.p_drowsy, model.p_active, d.d3),
            ),
            (Mode.ACTIVE, Mode.SLEEP): Transition(
                Mode.ACTIVE, Mode.SLEEP, d.s1,
                ramp_energy(model.p_active, model.p_sleep, d.s1),
            ),
            (Mode.SLEEP, Mode.ACTIVE): Transition(
                Mode.SLEEP, Mode.ACTIVE, d.s3,
                ramp_energy(model.p_sleep, model.p_active, d.s3),
            ),
        }
        return cls(
            state_power=power,
            transitions=transitions,
            refetch_energy=model.refetch_energy,
            ready_cycles=d.s4,
        )

    # ------------------------------------------------------------------
    # Interval pricing (must reproduce Equations 1 and 2)
    # ------------------------------------------------------------------

    def transition(self, source: Mode, target: Mode) -> Transition:
        """The edge from ``source`` to ``target``."""
        try:
            return self.transitions[(source, target)]
        except KeyError:
            raise PolicyError(
                f"no transition defined from {source} to {target}"
            ) from None

    def interval_energy(self, mode: Mode, length: int) -> float:
        """Energy of one access interval spent in ``mode``.

        The interval starts and ends at Active (accesses require full
        power): Active -> mode -> ... -> Active, with the induced-miss
        re-fetch and the ``s4`` full-power ready window charged when the
        resting state is Sleep.
        """
        if length <= 0:
            raise PolicyError(f"interval length must be positive, got {length!r}")
        if mode is Mode.ACTIVE:
            return self.state_power[Mode.ACTIVE] * length
        down = self.transition(Mode.ACTIVE, mode)
        up = self.transition(mode, Mode.ACTIVE)
        ready = self.ready_cycles if mode is Mode.SLEEP else 0
        rest = length - down.duration - up.duration - ready
        if rest < 0:
            raise PolicyError(
                f"interval of {length} cycles cannot host a round trip "
                f"through {mode} ({down.duration + up.duration + ready} "
                "cycles of transitions)"
            )
        energy = (
            down.energy
            + self.state_power[mode] * rest
            + up.energy
            + self.state_power[Mode.ACTIVE] * ready
        )
        if mode is Mode.SLEEP:
            energy += self.refetch_energy
        return energy

    # ------------------------------------------------------------------
    # Discrete validation path
    # ------------------------------------------------------------------

    def simulate_interval(self, mode: Mode, length: int) -> float:
        """Cycle-by-cycle numerical pricing of one interval in ``mode``.

        Walks the same phases the closed form integrates analytically —
        entry ramp, resting state, exit ramp, full-power ready window,
        re-fetch for sleep — sampling the ramp power at cycle midpoints
        (exact for linear ramps).  Must agree with :meth:`interval_energy`
        to floating-point precision; the test suite enforces this.
        """
        if length <= 0:
            raise PolicyError(f"interval length must be positive, got {length!r}")
        if mode is Mode.ACTIVE:
            return sum(
                self.state_power[Mode.ACTIVE] for _ in range(length)
            )
        down = self.transition(Mode.ACTIVE, mode)
        up = self.transition(mode, Mode.ACTIVE)
        ready = self.ready_cycles if mode is Mode.SLEEP else 0
        rest = length - down.duration - up.duration - ready
        if rest < 0:
            raise PolicyError(
                f"interval of {length} cycles cannot host a round trip through {mode}"
            )
        total = self._walk_ramp(Mode.ACTIVE, mode, down.duration)
        total += sum(self.state_power[mode] for _ in range(rest))
        total += self._walk_ramp(mode, Mode.ACTIVE, up.duration)
        total += sum(self.state_power[Mode.ACTIVE] for _ in range(ready))
        if mode is Mode.SLEEP:
            total += self.refetch_energy
        return total

    def simulate_schedule(self, schedule: Sequence[Tuple[Mode, int]]) -> float:
        """Price a whole mode schedule: intervals in sequence.

        Each ``(mode, cycles)`` entry is one access interval priced with
        :meth:`simulate_interval`; the line returns to Active at every
        access between entries.
        """
        return sum(self.simulate_interval(mode, cycles) for mode, cycles in schedule)

    def _walk_ramp(self, source: Mode, target: Mode, duration: int) -> float:
        p_from = self.state_power[source]
        p_to = self.state_power[target]
        total = 0.0
        for k in range(duration):
            frac = (k + 0.5) / duration
            total += p_from + (p_to - p_from) * frac
        return total

    # ------------------------------------------------------------------
    # Table 2 outputs
    # ------------------------------------------------------------------

    def optimal_savings(
        self, model: ModeEnergyModel, intervals: IntervalSet
    ) -> Dict[str, SavingsReport]:
        """The three Table 2 columns for one interval population."""
        return {
            "OPT-Drowsy": evaluate_policy(OptDrowsy(model, name="OPT-Drowsy"), intervals),
            "OPT-Sleep": evaluate_policy(OptSleep(model, name="OPT-Sleep"), intervals),
            "OPT-Hybrid": evaluate_policy(OptHybrid(model), intervals),
        }


def technology_sweep(
    nodes: Iterable[TechnologyNode],
    intervals: IntervalSet,
    durations: TransitionDurations | None = None,
) -> List[Dict[str, object]]:
    """Evaluate the Table 2 schemes across technology nodes.

    Returns one row per node with the node itself, its inflection points
    and the three saving fractions — the raw material of Table 2.
    """
    from .inflection import inflection_points

    rows: List[Dict[str, object]] = []
    for node in nodes:
        model = ModeEnergyModel(node, durations=durations)
        machine = StateMachineModel.from_energy_model(model)
        reports = machine.optimal_savings(model, intervals)
        rows.append(
            {
                "node": node,
                "points": inflection_points(model),
                "savings": {name: r.saving_fraction for name, r in reports.items()},
            }
        )
    return rows
