"""Stacked per-node policy evaluation: all technology nodes in one pass.

The technology-scaling experiments (Table 2, the sweep grid) evaluate the
same three oracle schemes — OPT-Drowsy, OPT-Sleep, OPT-Hybrid — over one
interval population at every technology node.  Looping over nodes repeats
the expensive part (per-interval energy arrays and their reductions) once
per node in Python.  Because every mode energy is affine in the interval
length (``E = p * L + c`` with per-node scalars ``p``, ``c`` — see
:mod:`repro.core.energy`), the whole grid is one broadcast: per-node
coefficient *columns* against a single interval-length *row*.

The arithmetic is arranged so each matrix row is elementwise identical to
the arrays :func:`repro.core.savings.evaluate_policy` builds for that
node, and row sums run over C-contiguous rows (numpy's pairwise
reduction, same as the 1-D case) — so the stacked savings are
*float-identical* to the per-node loop, not merely close.  The test suite
pins this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import IntervalError, PolicyError
from .energy import ModeEnergyModel
from .inflection import inflection_points
from .intervals import IntervalSet

#: Scheme rows produced by :func:`stacked_trio_savings`, in order.
TRIO_SCHEMES: Tuple[str, str, str] = ("OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid")


@dataclass(frozen=True)
class StackedSavings:
    """Savings of the oracle trio across technology nodes.

    ``savings[i, j]`` is scheme ``schemes[i]`` at node ``feature_nms[j]``,
    as a leakage-saving fraction in [0, 1] (matching
    ``evaluate_policy(...).saving_fraction``).
    """

    feature_nms: Tuple[int, ...]
    schemes: Tuple[str, ...]
    savings: np.ndarray

    def saving(self, scheme: str, feature_nm: int) -> float:
        """One cell, by scheme name and node feature size."""
        return float(
            self.savings[self.schemes.index(scheme),
                         self.feature_nms.index(feature_nm)]
        )

    def by_scheme(self, feature_nm: int) -> Dict[str, float]:
        """All schemes' savings at one node."""
        column = self.feature_nms.index(feature_nm)
        return {
            scheme: float(self.savings[row, column])
            for row, scheme in enumerate(self.schemes)
        }


def stacked_trio_savings(
    models: Sequence[ModeEnergyModel],
    intervals: IntervalSet,
) -> np.ndarray:
    """Saving fractions of the oracle trio, all ``models`` at once.

    Returns a ``(3, len(models))`` array ordered like
    :data:`TRIO_SCHEMES`.  Float-identical to calling
    :func:`~repro.core.savings.evaluate_policy` with ``OptDrowsy`` /
    ``OptSleep`` / ``OptHybrid`` per model.
    """
    if not len(intervals):
        raise IntervalError("cannot evaluate policies over zero intervals")
    if not len(models):
        raise PolicyError("stacked evaluation needs at least one energy model")
    lengths = np.asarray(intervals.lengths, dtype=np.int64)
    lengths_f = np.asarray(lengths, dtype=np.float64)

    points = [inflection_points(model) for model in models]
    for model, pts in zip(models, points):
        # Mirror the OptSleep/OptHybrid constructor guards: sleeping at
        # the drowsy-sleep point must be physically feasible.
        if pts.drowsy_sleep < model.sleep_min_length:
            raise PolicyError(
                f"node {model.node.name}: drowsy-sleep point "
                f"{pts.drowsy_sleep:.1f} is below the sleep transition time "
                f"{model.sleep_min_length}"
            )

    def column(values) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)[:, None]

    p_drowsy = column([m.p_drowsy for m in models])
    p_sleep = column([m.p_sleep for m in models])
    c_drowsy = column([m.drowsy_constant for m in models])
    c_sleep = column([m.sleep_constant for m in models])
    active_drowsy = column([p.active_drowsy for p in points])
    drowsy_sleep = column([p.drowsy_sleep for p in points])

    # One row per node, elementwise identical to the per-node arrays.
    active_row = models[0].p_active * lengths_f
    baseline = float(active_row.sum())
    drowsy_rows = p_drowsy * lengths_f + c_drowsy
    sleep_rows = p_sleep * lengths_f + c_sleep
    active_rows = np.broadcast_to(active_row, drowsy_rows.shape)
    drowsy_mask = lengths > active_drowsy
    sleep_mask = lengths > drowsy_sleep

    energy_drowsy = np.where(drowsy_mask, drowsy_rows, active_rows)
    energy_sleep = np.where(sleep_mask, sleep_rows, active_rows)
    energy_hybrid = np.where(
        sleep_mask, sleep_rows, np.where(drowsy_mask, drowsy_rows, active_rows)
    )

    totals = np.stack(
        [
            energy_drowsy.sum(axis=1),
            energy_sleep.sum(axis=1),
            energy_hybrid.sum(axis=1),
        ]
    )
    return 1.0 - totals / baseline


def stacked_savings_for_nodes(
    models: Dict[int, ModeEnergyModel],
    intervals: IntervalSet,
) -> StackedSavings:
    """Keyed convenience wrapper: ``{feature_nm: model}`` in, cells out."""
    feature_nms = tuple(models.keys())
    ordered = [models[nm] for nm in feature_nms]
    return StackedSavings(
        feature_nms=feature_nms,
        schemes=TRIO_SCHEMES,
        savings=stacked_trio_savings(ordered, intervals),
    )
