"""repro — a reproduction of *On the Limits of Leakage Power Reduction in
Caches* (Meng, Sherwood, Kastner — HPCA 2005).

The library answers the paper's question — *given perfect knowledge of
the future address trace, how much cache leakage power can sleep
(Gated-Vdd) and drowsy modes save?* — and rebuilds every substrate that
the answer rests on:

* :mod:`repro.core` — the oracle limit analysis itself: access intervals,
  the per-mode energy equations, inflection points, the optimal policies
  (OPT-Drowsy / OPT-Sleep / OPT-Hybrid / cache-decay Sleep(θ)) and the
  generalized state-machine model behind the technology sweep.
* :mod:`repro.power` — HotLeakage-style leakage and CACTI-style dynamic
  energy models, the four paper technology nodes (calibrated so the
  Table 1 inflection points reproduce exactly), and the ITRS projection.
* :mod:`repro.cache` / :mod:`repro.cpu` — the Alpha-21264-like simulation
  substrate: a 64 KB/64 KB/2 MB hierarchy with generation tracking, a
  width-limited timing model and trace-driven simulation.
* :mod:`repro.workloads` — six SPEC2000-like synthetic benchmarks.
* :mod:`repro.simpoint` — BBV profiling + k-means phase selection.
* :mod:`repro.prefetch` — next-line and stride prefetchers, interval
  prefetchability, and the Prefetch-A/B oracle approximations.
* :mod:`repro.experiments` — one harness per paper table/figure.
* :mod:`repro.engine` — the execution substrate: parallel simulation
  with on-disk result caching, fault tolerance and run telemetry.

Quickstart::

    from repro import quick_limits
    print(quick_limits())          # the headline 70nm limits

or, for the full pipeline::

    from repro.workloads import make_gzip
    from repro.cpu import simulate_trace
    from repro.power import paper_nodes
    from repro.core import ModeEnergyModel, OptHybrid, evaluate_policy

    result = simulate_trace(make_gzip(scale=0.2).chunks())
    model = ModeEnergyModel(paper_nodes()[70])
    report = evaluate_policy(OptHybrid(model), result.l1i_intervals.as_normal())
    print(report.describe())
"""

from . import cache, core, cpu, engine, experiments, power, prefetch, simpoint, workloads
from .errors import (
    ConfigurationError,
    EngineError,
    ExperimentError,
    IntervalError,
    PolicyError,
    PowerModelError,
    ReproError,
    SimulationError,
    TraceError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "EngineError",
    "ExperimentError",
    "IntervalError",
    "PolicyError",
    "PowerModelError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "cache",
    "core",
    "cpu",
    "engine",
    "experiments",
    "power",
    "prefetch",
    "quick_limits",
    "simpoint",
    "workloads",
]


def quick_limits(scale: float = 0.2, feature_nm: int = 70) -> str:
    """One-call demo: the OPT-Hybrid limits on a reduced-scale suite.

    Runs the gzip benchmark at the requested scale and reports the
    instruction- and data-cache hybrid limits at one technology node —
    a fast taste of the full Figure 8 experiment.
    """
    from .core import ModeEnergyModel, OptHybrid, evaluate_policy
    from .cpu import simulate_trace
    from .power import paper_nodes
    from .workloads import make_gzip

    result = simulate_trace(make_gzip(scale=scale).chunks())
    model = ModeEnergyModel(paper_nodes()[feature_nm])
    lines = [f"gzip @ {feature_nm}nm (scale {scale:g}):"]
    for cache_name, intervals in (
        ("I-cache", result.l1i_intervals),
        ("D-cache", result.l1d_intervals),
    ):
        report = evaluate_policy(OptHybrid(model), intervals.as_normal())
        lines.append(
            f"  {cache_name} OPT-Hybrid saves {100 * report.saving_fraction:.1f}% "
            "of leakage energy"
        )
    return "\n".join(lines)
