"""Ticket lifecycle: the daemon's durable unit of promised work.

Every admitted request becomes a :class:`Ticket` — a small state machine

    queued ──> running ──> done
       │          │
       └──────────┴──────> failed

persisted as one JSON file per ticket under
``<cache>/service/tickets/`` via the engine's atomic-write checkpoint
helper.  State transitions rewrite the file atomically, so a crashed or
drained daemon leaves every ticket either terminal (``done``/``failed``
with its result inline) or restartable (``queued``/``running``); on
startup :meth:`TicketRegistry.load` returns the restartable ones in
admission order and the daemon re-enqueues them.  Because results are
content-addressed, re-running a ticket that actually finished before
the crash is a pure cache hit — resume never loses or duplicates work.

Progress *events* (job started / retried / validated / quarantined,
backend degradations, cache hits) are kept in memory only: they feed
the SSE stream and the poll endpoint, and an event history is worthless
to a restarted daemon — the journal of record is the engine's.

Coalesced tickets — followers attached to another ticket's computation
— record their leader's id in ``coalesced_with``; the daemon resolves
them the moment the leader completes.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..engine import atomic_write_json
from ..errors import ReproError
from .protocol import TICKET_STATES

#: States a ticket can be (re)started from after a daemon restart.
RESUMABLE_STATES = ("queued", "running")

#: Terminal states: the ticket file is the answer, never touched again.
TERMINAL_STATES = ("done", "failed")

#: Ticket kinds.
KIND_JOB = "job"
KIND_SWEEP = "sweep"


class TicketError(ReproError):
    """An invalid ticket transition or a malformed ticket file."""


@dataclass
class Ticket:
    """One promised unit of work and everything known about it."""

    id: str
    kind: str  #: ``"job"`` or ``"sweep"``.
    state: str
    spec: Dict  #: Job spec payload or sweep spec dict (restart input).
    key: str  #: Content address (job) or spec fingerprint (sweep).
    client: str
    seq: int  #: Admission order, monotonic across restarts.
    coalesced_with: Optional[str] = None  #: Leader ticket id, if attached.
    result: Optional[Dict] = None
    error: Optional[str] = None
    #: Wall-clock stamps (persisted): when issued / last transitioned.
    #: GC prunes terminal tickets by ``updated_at`` age.
    created_at: float = 0.0
    updated_at: float = 0.0
    #: In-memory progress stream (not persisted; feeds SSE and polls).
    events: List[Dict] = field(default_factory=list, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def payload(self, events_after: int = -1) -> Dict:
        """JSON document for ``GET /v1/tickets/<id>``.

        ``events_after`` trims the event list to sequence numbers above
        it (poll resumption); the default returns every buffered event.
        """
        return {
            "ticket": self.id,
            "kind": self.kind,
            "state": self.state,
            "spec": dict(self.spec),
            "key": self.key,
            "client": self.client,
            "coalesced_with": self.coalesced_with,
            "result": None if self.result is None else dict(self.result),
            "error": self.error,
            "events": [
                dict(event)
                for event in self.events
                if event.get("seq", 0) > events_after
            ],
        }

    def record(self) -> Dict:
        """The persisted (restart-relevant) subset of this ticket."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "spec": dict(self.spec),
            "key": self.key,
            "client": self.client,
            "seq": self.seq,
            "coalesced_with": self.coalesced_with,
            "result": self.result,
            "error": self.error,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }


class TicketRegistry:
    """All tickets the daemon has ever issued, persisted one file each.

    Thread-safe for the two threads that touch it: the event loop
    (admission, transitions) and the executor thread publishing engine
    events.  Persistence failures are swallowed — a read-only disk costs
    restartability, never availability.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self._tickets: Dict[str, Ticket] = {}
        self._lock = threading.Lock()
        self._next_seq = 1

    # ------------------------------------------------------------------
    # Creation and lookup
    # ------------------------------------------------------------------
    def create(
        self,
        kind: str,
        spec: Dict,
        key: str,
        client: str,
        coalesced_with: Optional[str] = None,
    ) -> Ticket:
        """Issue a new queued ticket and persist it."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            now = time.time()
            ticket = Ticket(
                id=f"t{seq:06d}-{key[:12]}",
                kind=kind,
                state="queued",
                spec=dict(spec),
                key=key,
                client=client,
                seq=seq,
                coalesced_with=coalesced_with,
                created_at=now,
                updated_at=now,
            )
            self._tickets[ticket.id] = ticket
        self._persist(ticket)
        return ticket

    def get(self, ticket_id: str) -> Optional[Ticket]:
        with self._lock:
            return self._tickets.get(ticket_id)

    def all(self) -> List[Ticket]:
        with self._lock:
            return sorted(self._tickets.values(), key=lambda t: t.seq)

    def counts(self) -> Dict[str, int]:
        """Tickets per state (every state listed, zeros included)."""
        counts = {state: 0 for state in TICKET_STATES}
        with self._lock:
            for ticket in self._tickets.values():
                counts[ticket.state] = counts.get(ticket.state, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Transitions and events
    # ------------------------------------------------------------------
    def transition(
        self,
        ticket: Ticket,
        state: str,
        result: Optional[Dict] = None,
        error: Optional[str] = None,
    ) -> None:
        """Move a ticket along the state machine and persist the change."""
        if state not in TICKET_STATES:
            raise TicketError(f"unknown ticket state {state!r}")
        if ticket.terminal:
            raise TicketError(
                f"ticket {ticket.id} is already terminal ({ticket.state})"
            )
        with self._lock:
            ticket.state = state
            ticket.updated_at = time.time()
            if result is not None:
                ticket.result = dict(result)
            if error is not None:
                ticket.error = error
        self._persist(ticket)

    def add_event(self, ticket: Ticket, event: Dict) -> Dict:
        """Append one progress event (sequence-numbered per ticket)."""
        with self._lock:
            stamped = dict(event)
            stamped["seq"] = len(ticket.events) + 1
            ticket.events.append(stamped)
        return stamped

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _path(self, ticket_id: str) -> Path:
        return self.directory / f"{ticket_id}.json"

    def _persist(self, ticket: Ticket) -> None:
        atomic_write_json(self._path(ticket.id), ticket.record())

    def load(self) -> List[Ticket]:
        """Restore persisted tickets; returns resumable ones in order.

        Malformed files are skipped (a torn write can only happen to a
        file being replaced, whose previous state was itself valid —
        losing it degrades to recomputing one cached job).
        """
        records = []
        try:
            paths = sorted(self.directory.glob("t*.json"))
        except OSError:
            paths = []
        for path in paths:
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(record, dict) or "id" not in record:
                continue
            records.append(record)
        resumable: List[Ticket] = []
        with self._lock:
            for record in records:
                try:
                    ticket = Ticket(
                        id=str(record["id"]),
                        kind=str(record.get("kind", KIND_JOB)),
                        state=str(record.get("state", "queued")),
                        spec=dict(record.get("spec") or {}),
                        key=str(record.get("key", "")),
                        client=str(record.get("client", "")),
                        seq=int(record.get("seq", 0)),
                        coalesced_with=record.get("coalesced_with"),
                        result=record.get("result"),
                        error=record.get("error"),
                        created_at=float(record.get("created_at", 0.0)),
                        updated_at=float(record.get("updated_at", 0.0)),
                    )
                except (TypeError, ValueError):
                    continue
                self._tickets[ticket.id] = ticket
                self._next_seq = max(self._next_seq, ticket.seq + 1)
                if ticket.state in RESUMABLE_STATES:
                    resumable.append(ticket)
        resumable.sort(key=lambda t: t.seq)
        return resumable

    def prune(self, ttl: float) -> int:
        """Drop terminal tickets untouched for ``ttl`` seconds.

        Removes both the in-memory entry and the persisted file; returns
        how many were pruned.  Non-terminal tickets are never touched —
        they are promises, not garbage — and a ticket with no recorded
        ``updated_at`` (pre-GC daemons) is pruned by file age instead.
        """
        now = time.time()
        pruned = 0
        with self._lock:
            victims = []
            for ticket in self._tickets.values():
                if not ticket.terminal:
                    continue
                stamp = ticket.updated_at
                if stamp <= 0.0:
                    try:
                        stamp = self._path(ticket.id).stat().st_mtime
                    except OSError:
                        stamp = now
                if now - stamp > ttl:
                    victims.append(ticket.id)
            for ticket_id in victims:
                del self._tickets[ticket_id]
                pruned += 1
        for ticket_id in victims:
            try:
                self._path(ticket_id).unlink()
            except OSError:
                continue
        return pruned
