"""Crash-consistent multi-daemon coordination over one cache directory.

PR 6's daemon was a fleet of one: a single ``repro-leakage serve``
process owned the cache, and a second daemon pointed at the same
directory would have raced it.  This module is the protocol that lets N
daemons (each started with its own ``--peer-id``) share one
content-addressed cache safely — no ticket lost, none computed twice,
even across ``kill -9``:

* **Leases** (:class:`LeaseManager`).  Before computing a content
  address, a peer claims it by creating
  ``<cache>/service/coordination/leases/<key>.lease`` with
  ``O_CREAT | O_EXCL`` — an atomic test-and-set the filesystem
  guarantees — and fsyncs both the file and its directory so the claim
  survives power loss.  The lease carries the peer id and a **fencing
  token**; its mtime is the heartbeat, refreshed while the computation
  runs.

* **Fencing tokens** (:class:`FencingCounter`).  A monotonically
  increasing integer minted by atomically creating ``fence/<n>`` files
  (``O_EXCL`` again: two peers can never mint the same token).  Every
  lease ever taken on a key has a strictly larger token than the lease
  it replaced, which is what makes reclamation safe: a peer that was
  declared dead and then resumes holds a *smaller* token than the
  reclaimer, and loses every subsequent ownership check.

* **Reclamation.**  A lease whose heartbeat mtime is older than the TTL
  belongs to a dead (or wedged) peer.  Reclaiming is deterministic:
  rename the stale lease into ``broken/`` — ``os.replace`` of a single
  source path can only succeed for one renamer — then acquire a fresh
  lease with a fresh, larger token.  The loser of the rename simply
  retries the acquire and observes the new owner.

* **Guarded publish** (:class:`LeasedStore`).  Results are published by
  the engine's usual atomic cache write, but for claimed keys the write
  is gated by an ``O_EXCL`` *publish marker* recording the winning
  token.  A stale writer — the "dead" peer that woke up after its lease
  was reclaimed — loses at exactly this point: the marker already
  exists (or its lease token is no longer current), so its bytes are
  discarded and the event is counted as ``publish-fenced``.  Double
  execution can still *happen* (determinism makes the loser's bytes
  identical anyway); double *publication* cannot.  If a winner crashes
  between marker and cache write, the current lease holder repairs the
  marker (its token is larger) and publishes.

* **The log** (:class:`CoordinationLog`).  Every claim, heartbeat loss,
  reclamation, publish and fencing event appends one fsynced JSON line
  to ``log/<peer>.jsonl``.  The chaos tests scan these logs to prove
  the protocol's invariant: across all peers, every key has at most one
  ``publish`` event.

Everything here is stdlib + POSIX rename/O_EXCL semantics — the same
primitives the result store and ticket journal already rely on — so a
"fleet" is nothing more exotic than N processes pointed at one
directory.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional

from ..errors import ReproError

#: Subdirectory of ``<cache>/service`` owning all coordination state.
COORDINATION_SUBDIR = "coordination"

#: Default lease heartbeat TTL, seconds: a lease not refreshed for this
#: long is considered abandoned and may be reclaimed by any peer.
DEFAULT_LEASE_TTL = 10.0

#: Log events the chaos tests key on.
EVENT_ACQUIRED = "lease-acquired"
EVENT_RECLAIMED = "lease-reclaimed"
EVENT_RELEASED = "lease-released"
EVENT_FENCED = "lease-fenced"
EVENT_PUBLISH = "publish"
EVENT_PUBLISH_FENCED = "publish-fenced"
EVENT_PUBLISH_REPAIRED = "publish-repaired"


class CoordinationError(ReproError):
    """A coordination-state file is unusable (not a lost race)."""


def fsync_directory(path: Path) -> None:
    """Flush a directory's entry table; best-effort on odd filesystems."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_excl(path: Path, payload: Dict) -> bool:
    """Atomically create ``path`` with fsynced JSON; False if it exists."""
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    try:
        os.write(fd, (json.dumps(payload, sort_keys=True) + "\n").encode())
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_directory(path.parent)
    return True


def _read_json(path: Path) -> Optional[Dict]:
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


class FencingCounter:
    """A crash-consistent, multi-process monotonic token mint.

    Minting token *n* means atomically creating ``<dir>/<n:016d>`` with
    ``O_EXCL``; a collision (another peer minted *n* first) retries with
    *n + 1*.  Tokens are therefore unique and strictly increasing across
    every process that shares the directory, with no locks and no state
    beyond the directory listing.  Old token files below the maximum are
    droppings, prunable by GC — monotonicity only needs the largest to
    survive.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def _existing(self) -> List[int]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        tokens = []
        for name in names:
            try:
                tokens.append(int(name))
            except ValueError:
                continue
        return tokens

    def mint(self, peer_id: str) -> int:
        """A token strictly larger than every token ever minted here."""
        self.directory.mkdir(parents=True, exist_ok=True)
        token = max(self._existing(), default=0) + 1
        while True:
            if _write_excl(self.directory / f"{token:016d}", {"peer": peer_id}):
                return token
            token += 1

    def prune(self) -> int:
        """Drop every token file except the largest; returns the count."""
        tokens = sorted(self._existing())
        removed = 0
        for token in tokens[:-1]:
            try:
                (self.directory / f"{token:016d}").unlink()
                removed += 1
            except OSError:
                continue
        return removed


@dataclass
class Lease:
    """One peer's claim on one content address."""

    key: str
    peer_id: str
    token: int
    path: Path
    acquired_at: float
    #: Set once a heartbeat or publish discovers the lease was reclaimed:
    #: this peer's work on the key must not be published.
    fenced: bool = False

    def record(self) -> Dict:
        return {
            "key": self.key,
            "peer": self.peer_id,
            "token": self.token,
            "acquired_at": self.acquired_at,
        }


class CoordinationLog:
    """Append-only, fsynced, per-peer event journal.

    One JSON object per line; scanning every peer's log reconstructs the
    fleet's history — which the chaos tests use to assert that no key
    was ever published twice.
    """

    def __init__(self, directory: Path, peer_id: str) -> None:
        self.directory = Path(directory)
        self.peer_id = peer_id
        self.path = self.directory / f"{peer_id}.jsonl"
        self._lock = Lock()

    def record(self, event: str, key: str = "", **extra) -> None:
        entry = {"event": event, "peer": self.peer_id, "key": key, **extra}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                fd = os.open(
                    str(self.path),
                    os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                )
                try:
                    os.write(fd, line.encode("utf-8"))
                    os.fsync(fd)
                finally:
                    os.close(fd)
            except OSError:
                pass  # a full disk costs the audit trail, not the run

    @staticmethod
    def scan(directory: Path) -> List[Dict]:
        """Every event from every peer's log, in per-peer order."""
        events: List[Dict] = []
        try:
            paths = sorted(Path(directory).glob("*.jsonl"))
        except OSError:
            return events
        for path in paths:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn final line after a crash
                if isinstance(entry, dict):
                    events.append(entry)
        return events


class LeaseManager:
    """Acquire, heartbeat, verify, release and reclaim per-key leases.

    All state lives under one coordination directory shared by every
    peer; the manager itself holds nothing but counters, so any number
    of them (threads or processes) can point at the same directory.
    """

    def __init__(
        self,
        directory: Path,
        peer_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
        log: Optional[CoordinationLog] = None,
    ) -> None:
        if ttl <= 0:
            raise CoordinationError(
                f"lease TTL must be positive, got {ttl!r}"
            )
        self.directory = Path(directory)
        self.peer_id = peer_id
        self.ttl = float(ttl)
        self.leases_dir = self.directory / "leases"
        self.broken_dir = self.directory / "broken"
        self.fence = FencingCounter(self.directory / "fence")
        self.log = log
        #: Lifetime counters (CoordinationProfile + /v1/metricz).
        self.acquired = 0
        self.contended = 0
        self.reclaimed = 0
        self.released = 0
        self.fenced = 0

    # ------------------------------------------------------------------
    # Paths and inspection
    # ------------------------------------------------------------------
    def lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.lease"

    def holder(self, key: str) -> Optional[Dict]:
        """The current lease record for a key, or ``None`` if unclaimed.

        The returned dict gains an ``"age"`` field (seconds since the
        last heartbeat) and ``"stale"`` (whether it exceeds the TTL).
        """
        path = self.lease_path(key)
        record = _read_json(path)
        if record is None:
            return None
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return None  # released between read and stat
        record["age"] = age
        record["stale"] = age > self.ttl
        return record

    # ------------------------------------------------------------------
    # The lease lifecycle
    # ------------------------------------------------------------------
    def acquire(self, key: str) -> Optional[Lease]:
        """Claim a key, reclaiming a stale lease if one is in the way.

        Returns ``None`` when a *live* peer holds the key — the caller
        should watch the store for that peer's result instead of
        computing.  Losing a reclamation race to another peer also
        returns ``None`` (the winner is live by definition).
        """
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        path = self.lease_path(key)
        for _ in range(8):  # a bound, not a loop we expect to spin
            token = self.fence.mint(self.peer_id)
            lease = Lease(
                key=key,
                peer_id=self.peer_id,
                token=token,
                path=path,
                acquired_at=time.time(),
            )
            if _write_excl(path, lease.record()):
                self.acquired += 1
                if self.log:
                    self.log.record(EVENT_ACQUIRED, key, token=token)
                return lease
            holder = self.holder(key)
            if holder is None:
                continue  # released in the window; try again
            if not holder.get("stale"):
                self.contended += 1
                return None
            if not self._break(key, holder):
                self.contended += 1
                return None  # another peer won the reclamation race
        return None

    def _break(self, key: str, holder: Dict) -> bool:
        """Move one stale lease into ``broken/``; True if *we* moved it."""
        self.broken_dir.mkdir(parents=True, exist_ok=True)
        token = holder.get("token", 0)
        target = self.broken_dir / f"{key}.{token}.lease"
        try:
            os.replace(self.lease_path(key), target)
        except FileNotFoundError:
            return False  # the reclamation race: someone else renamed it
        except OSError:
            return False
        fsync_directory(self.leases_dir)
        self.reclaimed += 1
        if self.log:
            self.log.record(
                EVENT_RECLAIMED,
                key,
                token=token,
                dead_peer=holder.get("peer", "?"),
            )
        return True

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh a held lease's mtime; False if it is no longer ours.

        The False branch is how a wrongly-declared-dead peer finds out:
        its lease was reclaimed (file gone, or rewritten with a larger
        token), so it must treat its in-flight computation as fenced and
        never publish it.
        """
        if lease.fenced:
            return False
        if not self.verify(lease):
            lease.fenced = True
            self.fenced += 1
            if self.log:
                self.log.record(EVENT_FENCED, lease.key, token=lease.token)
            return False
        try:
            os.utime(lease.path)
        except OSError:
            return True  # verified ours; a failed touch is not a loss
        return True

    def verify(self, lease: Lease) -> bool:
        """Whether the on-disk lease for this key is still this lease."""
        record = _read_json(lease.path)
        return (
            record is not None
            and record.get("token") == lease.token
            and record.get("peer") == lease.peer_id
        )

    def release(self, lease: Lease) -> None:
        """Drop a held lease (a fenced or already-reclaimed one is a no-op)."""
        if lease.fenced or not self.verify(lease):
            return
        try:
            lease.path.unlink()
        except OSError:
            return
        fsync_directory(self.leases_dir)
        self.released += 1
        if self.log:
            self.log.record(EVENT_RELEASED, lease.key, token=lease.token)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def sweep(self, ttl: float) -> Dict[str, int]:
        """Prune coordination droppings older than ``ttl`` seconds.

        Removes broken-lease tombstones, spent fence tokens (all but the
        largest), and *orphaned* live leases — stale beyond the lease
        TTL **and** older than ``ttl``, i.e. left by a peer that died
        and was never contended, so nobody reclaimed them.
        """
        now = time.time()
        counts = {"broken": 0, "fence": 0, "orphaned": 0}
        try:
            tombstones = list(self.broken_dir.glob("*.lease"))
        except OSError:
            tombstones = []
        for path in tombstones:
            try:
                if now - path.stat().st_mtime > ttl:
                    path.unlink()
                    counts["broken"] += 1
            except OSError:
                continue
        counts["fence"] = self.fence.prune()
        try:
            live = list(self.leases_dir.glob("*.lease"))
        except OSError:
            live = []
        for path in live:
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age > max(ttl, self.ttl):
                try:
                    path.unlink()
                    counts["orphaned"] += 1
                except OSError:
                    continue
        return counts

    def snapshot(self) -> Dict:
        """Counters for ``/v1/status`` and the CoordinationProfile."""
        return {
            "peer_id": self.peer_id,
            "ttl": self.ttl,
            "acquired": self.acquired,
            "contended": self.contended,
            "reclaimed": self.reclaimed,
            "released": self.released,
            "fenced": self.fenced,
        }


class LeasedStore:
    """A result-store proxy that fences publishes on claimed keys.

    Engines owned by a coordinating daemon write results through this
    wrapper instead of the raw :class:`~repro.engine.store.ResultStore`.
    Reads and unclaimed-key writes pass straight through; a write to a
    *claimed* key runs the guarded-publish protocol:

    1. if the key's publish marker cannot be created (``O_EXCL``) and
       the result already exists, another peer won — count ``fenced``,
       discard the bytes (they are identical anyway; determinism is the
       safety net under the safety net);
    2. if the marker exists but the result does not — the prior winner
       crashed between marker and cache write — the *current* lease
       holder (strictly larger token) repairs the marker and publishes;
    3. otherwise the marker lands with our fencing token and the base
       store's atomic rename publishes the result.

    The marker, not the cache file, is the commitment point: markers are
    only ever created with ``O_EXCL`` or replaced under a verified
    current lease, so "published twice" is structurally impossible.
    """

    def __init__(
        self,
        base,
        manager: LeaseManager,
        log: Optional[CoordinationLog] = None,
    ) -> None:
        self.base = base
        self.manager = manager
        self.log = log
        self.markers_dir = manager.directory / "published"
        self._claims: Dict[str, Lease] = {}
        self._lock = Lock()
        #: Lifetime counters (CoordinationProfile + /v1/metricz).
        self.published = 0
        self.fenced_publishes = 0
        self.repaired_publishes = 0

    # ------------------------------------------------------------------
    # Claims
    # ------------------------------------------------------------------
    def claim(self, key: str, lease: Lease) -> None:
        """Route subsequent ``put(key, ...)`` calls through the guard."""
        with self._lock:
            self._claims[key] = lease

    def disclaim(self, key: str) -> None:
        with self._lock:
            self._claims.pop(key, None)

    def marker_path(self, key: str) -> Path:
        return self.markers_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Store protocol
    # ------------------------------------------------------------------
    def get(self, key: str):
        return self.base.get(key)

    def put(self, key: str, value) -> bool:
        with self._lock:
            lease = self._claims.get(key)
        if lease is None:
            return self.base.put(key, value)
        return self._guarded_put(key, value, lease)

    def _guarded_put(self, key: str, value, lease: Lease) -> bool:
        self.markers_dir.mkdir(parents=True, exist_ok=True)
        marker = self.marker_path(key)
        if lease.fenced or not self.manager.verify(lease):
            return self._fence(key, lease)
        if _write_excl(marker, {"peer": lease.peer_id, "token": lease.token}):
            return self._publish(key, value, lease)
        prior = _read_json(marker)
        prior_token = (prior or {}).get("token", 0)
        if self.base.get(key) is not None:
            return self._fence(key, lease)
        # The prior winner crashed between marker and cache write.  Only
        # the current lease holder may repair, and its token is larger.
        if prior_token < lease.token and self.manager.verify(lease):
            if self._rewrite_marker(marker, lease):
                self.repaired_publishes += 1
                if self.log:
                    self.log.record(
                        EVENT_PUBLISH_REPAIRED,
                        key,
                        token=lease.token,
                        superseded=prior_token,
                    )
                return self._publish(key, value, lease)
        return self._fence(key, lease)

    def _publish(self, key: str, value, lease: Lease) -> bool:
        wrote = self.base.put(key, value)
        self.published += 1
        if self.log:
            self.log.record(
                EVENT_PUBLISH, key, token=lease.token, wrote=bool(wrote)
            )
        return wrote

    def _fence(self, key: str, lease: Lease) -> bool:
        lease.fenced = True
        self.fenced_publishes += 1
        if self.log:
            self.log.record(EVENT_PUBLISH_FENCED, key, token=lease.token)
        return False

    @staticmethod
    def _rewrite_marker(marker: Path, lease: Lease) -> bool:
        """Atomically replace a crashed winner's marker with ours."""
        tmp = marker.with_suffix(f".{lease.token}.tmp")
        try:
            tmp.write_text(
                json.dumps(
                    {"peer": lease.peer_id, "token": lease.token},
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, marker)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        fsync_directory(marker.parent)
        return True

    # ------------------------------------------------------------------
    # Garbage collection and introspection
    # ------------------------------------------------------------------
    def sweep_markers(self, ttl: float) -> int:
        """Drop old markers whose result landed (the cache file exists).

        A marker with no result stays: it may be mid-repair, and it is
        the only witness of the crashed winner's token.
        """
        now = time.time()
        removed = 0
        try:
            markers = list(self.markers_dir.glob("*.json"))
        except OSError:
            return 0
        for path in markers:
            key = path.name[: -len(".json")]
            try:
                old = now - path.stat().st_mtime > ttl
            except OSError:
                continue
            if old and self.base.get(key) is not None:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def snapshot(self) -> Dict:
        with self._lock:
            claims = len(self._claims)
        return {
            "claimed": claims,
            "published": self.published,
            "fenced_publishes": self.fenced_publishes,
            "repaired_publishes": self.repaired_publishes,
        }

    def __getattr__(self, name):
        # Everything else (describe, info, counters, directory, clear,
        # evict, ...) behaves exactly like the wrapped store.
        return getattr(self.base, name)
