"""Request coalescing: one computation per in-flight content address.

Two clients asking for the same job would, naively, compute it twice —
once each — because neither result is cached yet.  The coalescing
registry closes that window: the first request for a content address
becomes the *leader* (it owns the queue slot and the computation);
every later request for the same address while the leader is queued or
running *attaches* as a follower, consuming nothing.  When the leader's
result lands — validated by the engine's invariant gate and written to
the content-addressed store — the daemon resolves every follower with
the identical payload.

This is only sound because of two properties the engine already
guarantees: results are pure functions of the content address (so the
leader's answer *is* the follower's answer), and the validation gate
quarantines bad results before the store or any waiter can see them.

Sweep tickets ride the same registry: each grid point registers the
sweep ticket as a *watcher* of that point's content address, so a sweep
point, a direct job submission, and another sweep's overlapping point
all share one computation.

Under multi-daemon coordination (:mod:`repro.service.coordinate`) the
registry also tracks *remote* computations: keys whose lease a peer
daemon holds.  The local leader ticket for such a key doesn't compute —
it watches the shared store for the peer's published result, and its
followers and sweep watchers resolve from that exactly as if the
computation had been local.  Coalescing is therefore fleet-wide: one
computation per content address across N daemons.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class CoalesceRegistry:
    """In-flight computations keyed by content address."""

    def __init__(self) -> None:
        #: key -> leader ticket id (the computation owner).
        self._leaders: Dict[str, str] = {}
        #: key -> follower ticket ids resolved when the leader completes.
        self._followers: Dict[str, List[str]] = {}
        #: key -> sweep ticket ids watching this point.
        self._watchers: Dict[str, List[str]] = {}
        #: Keys whose computation a *peer daemon* owns (we watch).
        self._remote: set = set()
        #: Lifetime counters.
        self.computations = 0
        self.coalesced = 0
        self.remote_watches = 0
        self.remote_results = 0

    def leader_for(self, key: str) -> Optional[str]:
        """The in-flight leader ticket for a key, if any."""
        return self._leaders.get(key)

    def begin(self, key: str, ticket_id: str) -> None:
        """Register a new leader: exactly one computation for this key."""
        self._leaders[key] = ticket_id
        self.computations += 1

    def attach(self, key: str, ticket_id: str) -> str:
        """Attach a follower to the in-flight leader; returns its id."""
        leader = self._leaders[key]
        self._followers.setdefault(key, []).append(ticket_id)
        self.coalesced += 1
        return leader

    def watch(self, key: str, sweep_ticket_id: str) -> None:
        """Subscribe a sweep ticket to a point's completion."""
        watchers = self._watchers.setdefault(key, [])
        if sweep_ticket_id not in watchers:
            watchers.append(sweep_ticket_id)

    def watchers(self, key: str) -> List[str]:
        return list(self._watchers.get(key, ()))

    def complete(self, key: str) -> List[str]:
        """Close out a computation; returns the followers to resolve."""
        self._leaders.pop(key, None)
        self._watchers.pop(key, None)
        self._remote.discard(key)
        return self._followers.pop(key, [])

    # ------------------------------------------------------------------
    # Cross-daemon computations
    # ------------------------------------------------------------------
    def remote_begin(self, key: str) -> None:
        """Mark a key as computed by a peer daemon (we watch the store)."""
        if key not in self._remote:
            self._remote.add(key)
            self.remote_watches += 1

    def remote_done(self, key: str) -> None:
        """A peer's result for a watched key landed in the shared store."""
        if key in self._remote:
            self._remote.discard(key)
            self.remote_results += 1

    def remote_keys(self) -> List[str]:
        return sorted(self._remote)

    @property
    def in_flight(self) -> int:
        return len(self._leaders)

    @property
    def remote_in_flight(self) -> int:
        return len(self._remote)

    def snapshot(self) -> Dict:
        """Registry state for ``/v1/status`` and the ServiceProfile."""
        return {
            "in_flight": self.in_flight,
            "computations": self.computations,
            "coalesced": self.coalesced,
            "remote_in_flight": self.remote_in_flight,
            "remote_watches": self.remote_watches,
            "remote_results": self.remote_results,
        }
