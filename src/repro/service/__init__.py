"""Leakage analysis as a service: a persistent daemon over the engine.

Everything before this package was batch: one process, one run, exit.
This package turns the substrate into a *served* system —
``repro-leakage serve`` starts a long-lived daemon owning one
:class:`~repro.engine.ExecutionEngine` (and with it the
content-addressed store, supervised backend chain and validation gate),
and any number of clients submit jobs and sweeps over HTTP:

* :mod:`~repro.service.protocol` — the wire format: job specs, the
  deterministic-vs-execution payload split, the one stable-bytes JSON
  serializer shared with the CLI's ``--json`` outputs.
* :mod:`~repro.service.admission` — bounded admission with 429 +
  ``Retry-After`` and stride-scheduled (weighted-fair) per-client
  dispatch.
* :mod:`~repro.service.coalesce` — request coalescing: one computation
  per in-flight content address, however many clients ask.
* :mod:`~repro.service.tickets` — durable per-request state machines;
  drain journals them, restart resumes them, ``gc`` prunes them.
* :mod:`~repro.service.coordinate` — crash-consistent multi-daemon
  coordination: O_EXCL lease files with fencing tokens and heartbeat
  mtimes, deterministic stale-lease reclamation, and a guarded publish
  that makes double-publication structurally impossible.
* :mod:`~repro.service.server` — the asyncio daemon: HTTP/1.1 + SSE,
  bounded concurrent scheduling, graceful drain, the manifest-v7
  Service/Coordination profiles.
* :mod:`~repro.service.client` — the blocking client library behind
  ``repro-leakage submit``, with capped-exponential-backoff retry and
  peer-URL failover.

Quickstart::

    # terminal 1
    $ repro-leakage serve --port 8330

    # terminal 2
    $ repro-leakage submit jobs gzip ammp --scale 0.05 --url http://127.0.0.1:8330
"""

from .admission import STRIDE_SCALE, AdmissionFull, AdmissionQueue, WorkItem
from .client import ServiceClient, ServiceError, ServiceRejected
from .coalesce import CoalesceRegistry
from .coordinate import (
    COORDINATION_SUBDIR,
    DEFAULT_LEASE_TTL,
    CoordinationError,
    CoordinationLog,
    FencingCounter,
    Lease,
    LeaseManager,
    LeasedStore,
)
from .protocol import (
    CLIENT_HEADER,
    DEFAULT_CLIENT,
    PROTOCOL_VERSION,
    TICKET_STATES,
    ProtocolError,
    cache_info_payload,
    dumps_stable,
    sweep_status_payload,
)
from .server import (
    DEFAULT_PORT,
    SERVICE_SUBDIR,
    ServiceConfig,
    ServiceDaemon,
    ServiceThread,
)
from .tickets import (
    KIND_JOB,
    KIND_SWEEP,
    RESUMABLE_STATES,
    TERMINAL_STATES,
    Ticket,
    TicketError,
    TicketRegistry,
)

__all__ = [
    "AdmissionFull",
    "AdmissionQueue",
    "CLIENT_HEADER",
    "COORDINATION_SUBDIR",
    "CoalesceRegistry",
    "CoordinationError",
    "CoordinationLog",
    "DEFAULT_CLIENT",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_PORT",
    "FencingCounter",
    "KIND_JOB",
    "KIND_SWEEP",
    "Lease",
    "LeaseManager",
    "LeasedStore",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RESUMABLE_STATES",
    "SERVICE_SUBDIR",
    "STRIDE_SCALE",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "ServiceRejected",
    "ServiceThread",
    "TERMINAL_STATES",
    "TICKET_STATES",
    "Ticket",
    "TicketError",
    "TicketRegistry",
    "WorkItem",
    "cache_info_payload",
    "dumps_stable",
    "sweep_status_payload",
]
