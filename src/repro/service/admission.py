"""Admission control: a bounded queue with weighted fair scheduling.

The daemon's overload story lives here.  Admission is *explicit*: a
computation either gets a queue slot immediately or the whole request
is refused with 429 + ``Retry-After`` — the queue never grows without
bound, so a burst of traffic degrades into fast rejections instead of
unbounded memory growth and timeout cascades.

Fairness is per client (the ``X-Client`` header), implemented as
stride scheduling — the deterministic cousin of weighted fair queueing:
each client owns a FIFO of admitted work and a virtual *pass* value;
the scheduler always pops from the client with the smallest pass, then
advances that pass by ``STRIDE_SCALE / weight``.  A client with weight
2 therefore drains twice as fast as a weight-1 client, and a client
that floods the queue cannot starve the others — its own FIFO just gets
longer.  Ties break on client name, so the dispatch order is a pure
function of the admission sequence: the property that keeps service
runs reproducible enough to byte-compare against offline runs.

Only *new* computations consume slots.  Cache hits are answered at
admission time and coalesced requests attach to an in-flight ticket
(:mod:`repro.service.coalesce`); both are free, which is exactly the
economics a content-addressed serving layer should have.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import ReproError

#: Pass-value increment for a weight-1.0 client per dispatched item.
STRIDE_SCALE = 1_000_000.0


class AdmissionFull(ReproError):
    """The admission queue cannot take the request's new computations."""

    def __init__(self, message: str, depth: int, limit: int) -> None:
        super().__init__(message)
        self.depth = depth
        self.limit = limit


class WorkItem:
    """One admitted computation, queued under its client."""

    __slots__ = ("ticket_id", "key", "client", "internal")

    def __init__(
        self,
        ticket_id: str,
        key: str,
        client: str,
        internal: bool = False,
    ) -> None:
        self.ticket_id = ticket_id
        self.key = key
        self.client = client
        #: Internal continuations (sweep finalization, restart resume)
        #: bypass the bound: refusing work the daemon already promised
        #: would deadlock drain/resume.
        self.internal = internal


class AdmissionQueue:
    """Bounded multi-client queue with stride-scheduled dispatch."""

    def __init__(
        self,
        limit: int,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if limit < 1:
            raise ReproError(f"admission limit must be >= 1, got {limit!r}")
        self.limit = int(limit)
        self.weights = dict(weights or {})
        self._queues: Dict[str, Deque[WorkItem]] = {}
        self._passes: Dict[str, float] = {}
        self.depth = 0  #: Bounded (non-internal) items currently queued.
        self.internal_depth = 0
        #: Lifetime counters for /v1/metricz and the ServiceProfile.
        self.admitted = 0
        self.rejected = 0
        self.dispatched = 0
        self.per_client_admitted: Dict[str, int] = {}
        self.per_client_rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def can_admit(self, count: int) -> bool:
        """Whether ``count`` more bounded computations fit right now."""
        return self.depth + count <= self.limit

    def admit(self, item: WorkItem) -> None:
        """Queue one computation; raises :class:`AdmissionFull` when over.

        Callers admitting a batch should check :meth:`can_admit` for the
        whole batch first — partial admission of a batch is worse than
        refusing it (the client would hold half a promise).
        """
        if not item.internal and self.depth + 1 > self.limit:
            self.rejected += 1
            self.per_client_rejected[item.client] = (
                self.per_client_rejected.get(item.client, 0) + 1
            )
            raise AdmissionFull(
                f"admission queue is full ({self.depth}/{self.limit})",
                depth=self.depth,
                limit=self.limit,
            )
        queue = self._queues.get(item.client)
        if queue is None:
            queue = self._queues[item.client] = deque()
            # A newly active client starts at the current minimum pass so
            # it cannot claim credit for time it spent idle.
            floor = min(
                (
                    self._passes[name]
                    for name, q in self._queues.items()
                    if q and name != item.client
                ),
                default=0.0,
            )
            self._passes[item.client] = max(
                self._passes.get(item.client, 0.0), floor
            )
        queue.append(item)
        if item.internal:
            self.internal_depth += 1
        else:
            self.depth += 1
        self.admitted += 1
        self.per_client_admitted[item.client] = (
            self.per_client_admitted.get(item.client, 0) + 1
        )

    def reject_batch(self, client: str, count: int) -> None:
        """Count a whole-batch refusal (no partial admission)."""
        self.rejected += count
        self.per_client_rejected[client] = (
            self.per_client_rejected.get(client, 0) + count
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def pop(self) -> Optional[WorkItem]:
        """The next item under stride scheduling, or ``None`` when empty."""
        best: Optional[str] = None
        for client, queue in self._queues.items():
            if not queue:
                continue
            if best is None or (
                (self._passes[client], client)
                < (self._passes[best], best)
            ):
                best = client
        if best is None:
            return None
        item = self._queues[best].popleft()
        weight = max(float(self.weights.get(best, 1.0)), 1e-6)
        self._passes[best] += STRIDE_SCALE / weight
        if item.internal:
            self.internal_depth -= 1
        else:
            self.depth -= 1
        self.dispatched += 1
        return item

    def pending(self) -> List[WorkItem]:
        """Every queued item, in current dispatch order (non-destructive)."""
        items: List[WorkItem] = []
        passes = dict(self._passes)
        queues = {c: deque(q) for c, q in self._queues.items()}
        while True:
            best = None
            for client, queue in queues.items():
                if not queue:
                    continue
                if best is None or (passes[client], client) < (
                    passes[best],
                    best,
                ):
                    best = client
            if best is None:
                return items
            items.append(queues[best].popleft())
            weight = max(float(self.weights.get(best, 1.0)), 1e-6)
            passes[best] += STRIDE_SCALE / weight

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Queue state for ``/v1/status`` and the ServiceProfile."""
        return {
            "limit": self.limit,
            "depth": self.depth,
            "internal_depth": self.internal_depth,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "dispatched": self.dispatched,
            "clients": {
                client: {
                    "queued": len(queue),
                    "admitted": self.per_client_admitted.get(client, 0),
                    "rejected": self.per_client_rejected.get(client, 0),
                    "weight": float(self.weights.get(client, 1.0)),
                }
                for client, queue in sorted(self._queues.items())
            },
        }
