"""The leakage-analysis daemon: one engine, many clients, zero re-work.

``repro-leakage serve`` starts a long-lived asyncio process that owns a
single :class:`~repro.engine.ExecutionEngine` — and with it the
content-addressed result store, the supervised backend chain, circuit
breakers, validation gate and fault harness — and serves it over a
hand-rolled HTTP/1.1 interface (stdlib only, ``asyncio.start_server``):

====================================  =================================
``POST /v1/jobs``                     job batch → per-item cached result
                                      or ticket (429 when the admission
                                      queue is full)
``POST /v1/sweeps``                   a ``SweepSpec`` → one sweep ticket
``GET /v1/tickets/<id>``              poll a ticket (state, events,
                                      result)
``GET /v1/tickets/<id>/events``       live SSE progress stream
``GET /v1/status``                    full status document (shared
                                      serializer with the CLI ``--json``
                                      outputs)
``GET /v1/metricz``                   flat ``name value`` counters
``POST /v1/drain``                    stop admitting, keep serving reads
``POST /v1/gc``                       prune old tickets, leases, markers
``POST /v1/shutdown``                 graceful drain + exit
====================================  =================================

The serving discipline:

* **Admission** (:mod:`repro.service.admission`): new computations take
  bounded queue slots, full queues answer 429 + ``Retry-After``, and a
  stride scheduler keyed by the ``X-Client`` header keeps one client
  from starving the rest.
* **Coalescing** (:mod:`repro.service.coalesce`): concurrent requests
  for one content address share one computation; cached answers return
  inline at admission time.
* **Durability** (:mod:`repro.service.tickets`): every ticket persists
  its state machine to disk.  SIGTERM drains — in-flight work finishes,
  queued tickets stay journaled — and a restarted daemon resumes them,
  the content-addressed store guaranteeing nothing is lost or computed
  twice.
* **Telemetry**: engine lifecycle events stream onto tickets via the
  telemetry observer seam; shutdown records a ``ServiceProfile`` and a
  ``CoordinationProfile`` into the manifest (v7) under
  ``<cache>/service/manifest.json``.
* **Coordination** (:mod:`repro.service.coordinate`): N daemons — each
  ``repro-leakage serve --peer-id`` — share one cache directory.  A
  content address is computed under an exclusive, heartbeat-refreshed
  lease; a key leased by a peer is *watched* (the local ticket resolves
  when the peer's result lands in the shared store, so coalescing spans
  the fleet); stale leases are reclaimed deterministically and fencing
  tokens make double-publication impossible even when a "dead" peer
  resumes mid-write.

Up to ``--jobs`` work items execute concurrently: the scheduler pops in
deterministic stride order and dispatches each item onto its own
engine-fleet slot (one single-worker engine per slot, shared store and
telemetry), bounded by a semaphore.  Because results are pure functions
of their content address, concurrency — like every other execution
choice in this codebase — changes only *when* answers arrive, never
what they are.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import (
    EngineFleet,
    ResultStore,
    SimulationJob,
    atomic_write_json,
    resolve_backend_name,
    resolve_worker_count,
)
from ..errors import ReproError
from ..sweep import ShardAssignment, SweepCoordinator, SweepSpec, expand
from ..sweep import merge as sweep_merge
from .admission import AdmissionFull, AdmissionQueue, WorkItem
from .coalesce import CoalesceRegistry
from .coordinate import (
    COORDINATION_SUBDIR,
    DEFAULT_LEASE_TTL,
    CoordinationLog,
    LeaseManager,
    LeasedStore,
)
from .protocol import (
    CLIENT_HEADER,
    DEFAULT_CLIENT,
    PROTOCOL_VERSION,
    ProtocolError,
    cache_info_payload,
    dumps_stable,
    error_payload,
    execution_payload,
    flatten_counters,
    job_result_payload,
    job_spec_payload,
    parse_job_batch,
    parse_job_spec,
    render_metricz,
)
from .tickets import KIND_JOB, KIND_SWEEP, Ticket, TicketRegistry

#: Subdirectory of the cache dir owning service state (tickets, manifest).
SERVICE_SUBDIR = "service"

#: Default TCP port (no registered meaning; "LEAK" on a phone pad is long
#: gone, so: the paper's 70 nm node x 119).
DEFAULT_PORT = 8330

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything ``repro-leakage serve`` configures."""

    host: str = "127.0.0.1"
    port: Optional[int] = None  #: ``None`` with no socket -> DEFAULT_PORT.
    socket: Optional[str] = None  #: Unix-socket path (instead of TCP).
    jobs: Optional[int] = None
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    max_queue: int = 256
    #: Floor for the 429 ``Retry-After`` hint, seconds.
    retry_after: float = 1.0
    #: Per-client fairness weights (unlisted clients weigh 1.0).
    client_weights: Dict[str, float] = field(default_factory=dict)
    #: This daemon's identity in a shared cache directory
    #: (``None`` -> ``peer-<pid>``).
    peer_id: Optional[str] = None
    #: Lease heartbeat TTL, seconds: a peer silent this long is dead.
    lease_ttl: float = DEFAULT_LEASE_TTL
    #: How often a remote-watched key polls the shared store, seconds.
    poll_interval: float = 0.25
    #: Age past which ``gc`` prunes terminal tickets (and coordination
    #: droppings), seconds.
    ticket_ttl: float = 3600.0
    #: SSE keepalive comment interval, seconds (also the disconnect
    #: detection cadence).
    sse_keepalive: float = 5.0


class _SweepState:
    """In-memory bookkeeping for one live sweep ticket."""

    __slots__ = (
        "spec",
        "pending",
        "jobs",
        "journal",
        "cached",
        "queued",
        "coalesced",
        "finalizing",
    )

    def __init__(self, spec: SweepSpec, journal) -> None:
        self.spec = spec
        self.pending: set = set()
        self.jobs: Dict[str, SimulationJob] = {}
        self.journal = journal
        self.cached = 0
        self.queued = 0
        self.coalesced = 0
        self.finalizing = False


class ServiceDaemon:
    """The daemon: admission, coalescing, scheduling, tickets, HTTP."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.peer_id = self.config.peer_id or f"peer-{os.getpid()}"
        base_store = ResultStore(self.config.cache_dir)
        self.service_dir = base_store.directory / SERVICE_SUBDIR
        coordination_dir = self.service_dir / COORDINATION_SUBDIR
        self.coordination_log = CoordinationLog(
            coordination_dir / "log", self.peer_id
        )
        self.leases = LeaseManager(
            coordination_dir,
            self.peer_id,
            ttl=self.config.lease_ttl,
            log=self.coordination_log,
        )
        self.store = LeasedStore(
            base_store, self.leases, log=self.coordination_log
        )
        self.slots = resolve_worker_count(self.config.jobs)
        self.backend = resolve_backend_name(self.config.backend)
        self.fleet = EngineFleet(
            self.slots,
            store=self.store,
            backend=self.config.backend,
        )
        self.telemetry = self.fleet.telemetry
        self.tickets = TicketRegistry(self.service_dir / "tickets")
        self.queue = AdmissionQueue(
            self.config.max_queue, self.config.client_weights
        )
        self.coalesce = CoalesceRegistry()
        self._sweeps: Dict[str, _SweepState] = {}
        self._ticket_waiters: Dict[str, List[asyncio.Event]] = {}
        #: Executor-thread id -> the ticket whose computation runs there
        #: (the telemetry observer routes engine events by this map).
        self._thread_tickets: Dict[int, Ticket] = {}
        self._draining = False
        self._started = time.monotonic()
        self.port: Optional[int] = None  #: Bound TCP port once serving.
        #: Lifetime counters (ServiceProfile + /v1/metricz).
        self.requests: Dict[str, int] = {}
        self.immediate_cache_hits = 0
        self.computed_jobs = 0
        self.compute_seconds = 0.0
        self.resumed_tickets = 0
        self.remote_resolved = 0
        self.reclaimed_takeovers = 0
        self.sse_keepalives = 0
        self.sse_reaped = 0
        self.gc_runs = 0
        self.gc_pruned_tickets = 0
        self.gc_pruned_leases = 0
        self.gc_pruned_markers = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._scheduler_task: Optional[asyncio.Task] = None
        self._slot_gate: Optional[asyncio.Semaphore] = None
        self._inflight: set = set()
        self._work: Optional[asyncio.Event] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self.telemetry.subscribe(self._engine_event)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Resume journaled tickets, start the scheduler and listeners."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._shutdown_requested = asyncio.Event()
        self._slot_gate = asyncio.Semaphore(self.slots)
        self._resume_tickets()
        self._scheduler_task = asyncio.create_task(self._scheduler())
        if self.config.socket:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket
            )
            self._servers.append(server)
            where = f"unix:{self.config.socket}"
        else:
            port = (
                DEFAULT_PORT if self.config.port is None else self.config.port
            )
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=port
            )
            self._servers.append(server)
            self.port = server.sockets[0].getsockname()[1]
            where = f"http://{self.config.host}:{self.port}"
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"repro-leakage service: serving on {where} "
            f"(peer {self.peer_id}, cache {self.store.describe()}, "
            f"backend {self.backend}, {self.slots} slot(s), "
            f"queue limit {self.queue.limit})",
            file=sys.stderr,
        )

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT or ``POST /v1/shutdown``."""
        await self.start()
        await self._shutdown_requested.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal handlers and ``/v1/shutdown``)."""
        self.initiate_drain("shutdown requested")
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    def initiate_drain(self, reason: str) -> None:
        """Stop admitting work; reads keep serving, POSTs get 503."""
        if not self._draining:
            self._draining = True
            self.telemetry.note(f"service drain: {reason}")
        if self._work is not None:
            self._work.set()

    async def stop(self) -> None:
        """Drain, finish every in-flight item, journal the rest, exit."""
        self.initiate_drain("stopping")
        if self._scheduler_task is not None:
            await self._scheduler_task
        queued = [t for t in self.tickets.all() if t.state == "queued"]
        self.telemetry.record_service(self.service_profile())
        self.telemetry.record_coordination(self.coordination_profile())
        self.fleet.finalize()
        atomic_write_json(
            self.service_dir / "manifest.json",
            self.telemetry.manifest(),
        )
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        print(
            f"repro-leakage service: drained "
            f"({len(queued)} queued ticket(s) journaled for resume); "
            f"manifest: {self.service_dir / 'manifest.json'}",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    # Restart resume
    # ------------------------------------------------------------------
    def _resume_tickets(self) -> None:
        """Re-admit every journaled non-terminal ticket, in order.

        Resume admission is *internal* — the bound never refuses work the
        daemon already promised.  A ticket whose computation actually
        finished before the crash resolves instantly from the cache;
        duplicates coalesce; nothing runs twice.
        """
        for ticket in self.tickets.load():
            self.resumed_tickets += 1
            try:
                if ticket.kind == KIND_SWEEP:
                    spec = SweepSpec.from_dict(ticket.spec)
                    self._admit_sweep(ticket, spec, internal=True)
                else:
                    job = parse_job_spec(ticket.spec)
                    ticket.coalesced_with = None
                    self._admit_job_ticket(ticket, job, internal=True)
            except ReproError as error:
                self.tickets.transition(
                    ticket, "failed", error=f"resume failed: {error}"
                )
                continue
            self._publish(ticket, {"event": "resumed"})

    # ------------------------------------------------------------------
    # Admission (event-loop only)
    # ------------------------------------------------------------------
    def _retry_after(self) -> float:
        """The 429 hint: queue depth x observed seconds per computation."""
        average = (
            self.compute_seconds / self.computed_jobs
            if self.computed_jobs
            else 2.0
        )
        return max(
            float(self.config.retry_after),
            (self.queue.depth + 1) * average,
        )

    def _classify(self, job: SimulationJob) -> Tuple[str, object]:
        """What admitting this job would do: coalesce, hit, or compute."""
        key = job.key()
        leader = self.coalesce.leader_for(key)
        if leader is not None:
            return "coalesce", leader
        hit = self.store.get(key)
        if hit is not None:
            return "cached", hit
        return "new", None

    def _admit_job_ticket(
        self, ticket: Ticket, job: SimulationJob, internal: bool = False
    ) -> str:
        """Queue or coalesce an existing ticket; returns its disposition."""
        key = job.key()
        leader = self.coalesce.leader_for(key)
        if leader is not None and leader != ticket.id:
            ticket.coalesced_with = leader
            self.coalesce.attach(key, ticket.id)
            self._publish(ticket, {"event": "coalesced", "leader": leader})
            return "coalesced"
        hit = self.store.get(key)
        if hit is not None:
            self.immediate_cache_hits += 1
            result = job_result_payload(job, hit)
            self.tickets.transition(
                ticket,
                "done",
                result={
                    "result": result,
                    "execution": {
                        "source": "cached",
                        "attempts": 0,
                        "wall_seconds": 0.0,
                        "coalesced": False,
                    },
                },
            )
            self._publish(ticket, {"event": "cache-hit", "key": key})
            self._notify_waiters(ticket.id)
            return "cached"
        if ticket.state != "queued":
            self.tickets.transition(ticket, "queued")
        self.coalesce.begin(key, ticket.id)
        self.queue.admit(
            WorkItem(ticket.id, key, ticket.client, internal=internal)
        )
        self._publish(ticket, {"event": "admitted", "key": key})
        if self._work is not None:
            self._work.set()
        return "queued"

    def submit_jobs(self, jobs: List[SimulationJob], client: str) -> Dict:
        """Admit one job batch; per-item cached results or tickets.

        Whole-batch admission: either every new computation in the batch
        gets a slot, or the entire request is refused with
        :class:`AdmissionFull` — a half-admitted batch is a promise the
        client cannot reason about.
        """
        plans = [(job, self._classify(job)) for job in jobs]
        new_keys = {
            job.key()
            for job, (disposition, _) in plans
            if disposition == "new"
        }
        if new_keys and not self.queue.can_admit(len(new_keys)):
            self.queue.reject_batch(client, len(new_keys))
            raise AdmissionFull(
                f"admission queue cannot take {len(new_keys)} more "
                f"computation(s) ({self.queue.depth}/{self.queue.limit} "
                "slots used)",
                depth=self.queue.depth,
                limit=self.queue.limit,
            )
        items = []
        for job, (disposition, extra) in plans:
            key = job.key()
            # Re-classify inside the batch: an earlier duplicate item may
            # have become this key's leader.
            leader = self.coalesce.leader_for(key)
            if disposition == "cached":
                self.immediate_cache_hits += 1
                items.append(
                    {
                        "status": "cached",
                        "key": key,
                        "spec": job_spec_payload(job),
                        "result": job_result_payload(job, extra),
                        "execution": {
                            "source": "cached",
                            "attempts": 0,
                            "wall_seconds": 0.0,
                            "coalesced": False,
                        },
                    }
                )
                continue
            if leader is not None:
                ticket = self.tickets.create(
                    KIND_JOB,
                    job_spec_payload(job),
                    key,
                    client,
                    coalesced_with=leader,
                )
                self.coalesce.attach(key, ticket.id)
                self._publish(
                    ticket, {"event": "coalesced", "leader": leader}
                )
                items.append(
                    {
                        "status": "coalesced",
                        "key": key,
                        "spec": job_spec_payload(job),
                        "ticket": ticket.id,
                        "leader": leader,
                    }
                )
                continue
            ticket = self.tickets.create(
                KIND_JOB, job_spec_payload(job), key, client
            )
            self.coalesce.begin(key, ticket.id)
            self.queue.admit(WorkItem(ticket.id, key, client))
            self._publish(ticket, {"event": "admitted", "key": key})
            items.append(
                {
                    "status": "queued",
                    "key": key,
                    "spec": job_spec_payload(job),
                    "ticket": ticket.id,
                }
            )
        if self._work is not None:
            self._work.set()
        return {"items": items}

    def submit_sweep(self, spec: SweepSpec, client: str) -> Dict:
        """Admit a whole sweep; returns its single ticket."""
        points = expand(spec)
        new_keys = set()
        for point in points:
            disposition, _ = self._classify(point.job)
            if disposition == "new":
                new_keys.add(point.key())
        if new_keys and not self.queue.can_admit(len(new_keys)):
            self.queue.reject_batch(client, len(new_keys))
            raise AdmissionFull(
                f"admission queue cannot take the sweep's {len(new_keys)} "
                f"new computation(s) ({self.queue.depth}/{self.queue.limit} "
                "slots used)",
                depth=self.queue.depth,
                limit=self.queue.limit,
            )
        ticket = self.tickets.create(
            KIND_SWEEP, spec.to_dict(), spec.fingerprint(), client
        )
        try:
            self._admit_sweep(ticket, spec, internal=False)
        except ReproError as error:  # e.g. spec fingerprint conflict
            self.tickets.transition(ticket, "failed", error=str(error))
            self._notify_waiters(ticket.id)
            raise
        state = self._sweeps.get(ticket.id)
        return {
            "ticket": ticket.id,
            "sweep": spec.name,
            "spec_fingerprint": spec.fingerprint(),
            "points": len(points),
            "queued": state.queued if state else 0,
            "cached": state.cached if state else 0,
            "coalesced": state.coalesced if state else 0,
        }

    def _admit_sweep(
        self, ticket: Ticket, spec: SweepSpec, internal: bool
    ) -> None:
        """Expand a sweep ticket into watched points + a finalize step."""
        coordinator = SweepCoordinator(spec, self.store.directory)
        coordinator.ensure_spec()
        journal = coordinator.shard_journal(ShardAssignment())
        if journal.exists():
            journal.load()  # resumed sweep: keep the journal duplicate-free
        state = _SweepState(spec, journal)
        self._sweeps[ticket.id] = state
        if ticket.state != "running":
            self.tickets.transition(ticket, "running")
        for point in expand(spec):
            job = point.job
            key = point.key()
            state.jobs[key] = job
            disposition, _ = self._classify(job)
            if disposition == "cached":
                state.cached += 1
                journal.record(job)
                continue
            state.pending.add(key)
            self.coalesce.watch(key, ticket.id)
            if disposition == "coalesce":
                state.coalesced += 1
                continue
            leader = self.tickets.create(
                KIND_JOB, job_spec_payload(job), key, ticket.client
            )
            self.coalesce.begin(key, leader.id)
            self.queue.admit(
                WorkItem(leader.id, key, ticket.client, internal=internal)
            )
            self._publish(leader, {"event": "admitted", "key": key})
            state.queued += 1
        self._publish(
            ticket,
            {
                "event": "sweep-admitted",
                "points": len(state.jobs),
                "pending": len(state.pending),
                "cached": state.cached,
                "coalesced": state.coalesced,
            },
        )
        if not state.pending:
            self._enqueue_finalize(ticket, state)
        elif self._work is not None:
            self._work.set()

    def _enqueue_finalize(self, ticket: Ticket, state: _SweepState) -> None:
        if state.finalizing:
            return
        state.finalizing = True
        self.queue.admit(
            WorkItem(ticket.id, ticket.key, ticket.client, internal=True)
        )
        self._publish(ticket, {"event": "finalize-queued"})
        if self._work is not None:
            self._work.set()

    # ------------------------------------------------------------------
    # Scheduler (stride-ordered dispatch onto bounded concurrent slots)
    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        """Pop in stride order, dispatch each item as its own task.

        The semaphore bounds *computations* to ``--jobs`` slots; a slot
        is acquired before the pop so the stride scheduler stays the
        single authority on dispatch order right up to the moment a slot
        frees.  Remote-watched keys release their slot immediately —
        waiting on a peer costs polling, not capacity.  Drain stops
        dispatching, then waits for every in-flight task.
        """
        while not self._draining:
            await self._slot_gate.acquire()
            if self._draining:
                self._slot_gate.release()
                break
            item = self.queue.pop()
            if item is None:
                self._slot_gate.release()
                self._work.clear()
                if self._draining:
                    break
                await self._work.wait()
                continue
            task = asyncio.create_task(self._run_item(item))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)

    async def _run_item(self, item: WorkItem) -> None:
        """One dispatched WorkItem; owns a slot until compute finishes."""
        held_slot = True
        try:
            ticket = self.tickets.get(item.ticket_id)
            if ticket is None or ticket.terminal:
                return
            if ticket.kind == KIND_SWEEP:
                await self._run_sweep_finalize(ticket)
                return
            try:
                job = parse_job_spec(ticket.spec)
            except ReproError as error:
                self.tickets.transition(ticket, "failed", error=str(error))
                self._notify_waiters(ticket.id)
                return
            key = ticket.key
            # A concurrent local computation of this key cannot exist
            # (the coalescer guarantees one leader per key), but a PEER
            # may hold its lease: claim or watch.
            lease = await self._loop.run_in_executor(
                None, self.leases.acquire, key
            )
            if lease is None:
                self._slot_gate.release()
                held_slot = False
                self.coalesce.remote_begin(key)
                self.tickets.transition(ticket, "running")
                self._publish(
                    ticket, {"event": "remote-wait", "key": key}
                )
                await self._watch_remote(ticket, job)
                return
            await self._compute_owned(ticket, job, lease)
        finally:
            if held_slot:
                self._slot_gate.release()

    async def _compute_owned(self, ticket: Ticket, job, lease) -> None:
        """Compute a key under a held lease, heartbeating throughout."""
        key = ticket.key
        if ticket.state != "running":
            self.tickets.transition(ticket, "running")
        self._publish(ticket, {"event": "computing", "key": key})
        self.store.claim(key, lease)
        beat = asyncio.create_task(self._heartbeat_lease(lease))
        start = time.perf_counter()
        try:
            outcome = await self._loop.run_in_executor(
                None, self._compute_in_thread, ticket, job
            )
        except Exception as error:
            self._fail_computation(
                ticket, f"{type(error).__name__}: {error}"
            )
            return
        finally:
            beat.cancel()
            self.store.disclaim(key)
            await self._loop.run_in_executor(
                None, self.leases.release, lease
            )
        self.compute_seconds += time.perf_counter() - start
        self.computed_jobs += 1
        result = job_result_payload(job, outcome.annotated)
        execution = execution_payload(outcome)
        self.tickets.transition(
            ticket, "done", result={"result": result, "execution": execution}
        )
        self._publish(ticket, {"event": "done", "source": outcome.source})
        self._notify_waiters(ticket.id)
        self._complete_key(key, job, result, execution)

    def _compute_in_thread(self, ticket: Ticket, job):
        """Executor-thread body: route telemetry events to this ticket."""
        ident = threading.get_ident()
        self._thread_tickets[ident] = ticket
        try:
            return self.fleet.run_one(job)
        finally:
            self._thread_tickets.pop(ident, None)

    async def _heartbeat_lease(self, lease) -> None:
        """Refresh a lease's mtime while its computation runs."""
        interval = max(self.leases.ttl / 3.0, 0.05)
        try:
            while True:
                await asyncio.sleep(interval)
                alive = await self._loop.run_in_executor(
                    None, self.leases.heartbeat, lease
                )
                if not alive:
                    # Reclaimed under us: the publish guard will fence
                    # the write; nothing else to do here.
                    return
        except asyncio.CancelledError:
            return

    async def _watch_remote(self, ticket: Ticket, job) -> None:
        """Resolve a peer-leased key from the shared store, or take over.

        Polls until the peer's result appears (fleet-wide coalescing:
        the local ticket, its followers and sweep watchers all resolve
        from the peer's bytes), the peer's lease goes stale (reclaim and
        compute here), or the daemon drains (the ticket stays journaled
        for restart resume).
        """
        key = ticket.key
        while True:
            hit = self.store.get(key)
            if hit is not None:
                self.coalesce.remote_done(key)
                self.remote_resolved += 1
                result = job_result_payload(job, hit)
                execution = {
                    "source": "remote",
                    "attempts": 0,
                    "wall_seconds": 0.0,
                    "coalesced": True,
                }
                self.tickets.transition(
                    ticket,
                    "done",
                    result={"result": result, "execution": execution},
                )
                self._publish(ticket, {"event": "done", "source": "remote"})
                self._notify_waiters(ticket.id)
                self._complete_key(key, job, result, execution)
                return
            holder = self.leases.holder(key)
            if holder is None or holder.get("stale"):
                # The peer died (or finished without publishing — a
                # crash mid-compute): try to take the lease over.
                lease = await self._loop.run_in_executor(
                    None, self.leases.acquire, key
                )
                if lease is not None:
                    self.coalesce.remote_done(key)
                    self.reclaimed_takeovers += 1
                    self._publish(
                        ticket,
                        {"event": "lease-takeover", "key": key},
                    )
                    await self._slot_gate.acquire()
                    try:
                        await self._compute_owned(ticket, job, lease)
                    finally:
                        self._slot_gate.release()
                    return
            if self._draining:
                return  # stays queued/running; restart resumes it
            await asyncio.sleep(self.config.poll_interval)

    def _complete_key(
        self, key: str, job: SimulationJob, result: Dict, execution: Dict
    ) -> None:
        """Resolve followers and sweep watchers of a finished key."""
        watchers = self.coalesce.watchers(key)
        followers = self.coalesce.complete(key)
        for follower_id in followers:
            follower = self.tickets.get(follower_id)
            if follower is None or follower.terminal:
                continue
            shared = dict(execution)
            shared["coalesced"] = True
            self.tickets.transition(
                follower,
                "done",
                result={"result": result, "execution": shared},
            )
            self._publish(follower, {"event": "done", "coalesced": True})
            self._notify_waiters(follower.id)
        for sweep_id in watchers:
            sweep = self.tickets.get(sweep_id)
            state = self._sweeps.get(sweep_id)
            if sweep is None or state is None or sweep.terminal:
                continue
            state.pending.discard(key)
            state.journal.record(job)
            self._publish(
                sweep,
                {
                    "event": "point-completed",
                    "job": job.describe(),
                    "remaining": len(state.pending),
                },
            )
            if not state.pending:
                self._enqueue_finalize(sweep, state)

    def _fail_computation(self, ticket: Ticket, error: str) -> None:
        """A computation exhausted every backend and retry: fail fan-out."""
        key = ticket.key
        self.tickets.transition(ticket, "failed", error=error)
        self._publish(ticket, {"event": "failed", "error": error})
        self._notify_waiters(ticket.id)
        watchers = self.coalesce.watchers(key)
        for follower_id in self.coalesce.complete(key):
            follower = self.tickets.get(follower_id)
            if follower is None or follower.terminal:
                continue
            self.tickets.transition(follower, "failed", error=error)
            self._publish(follower, {"event": "failed", "error": error})
            self._notify_waiters(follower.id)
        for sweep_id in watchers:
            sweep = self.tickets.get(sweep_id)
            if sweep is None or sweep.terminal:
                continue
            self.tickets.transition(
                sweep, "failed", error=f"sweep point failed: {error}"
            )
            self._publish(sweep, {"event": "failed", "error": error})
            self._notify_waiters(sweep.id)
            self._sweeps.pop(sweep_id, None)

    async def _run_sweep_finalize(self, ticket: Ticket) -> None:
        state = self._sweeps.get(ticket.id)
        if state is None:
            self.tickets.transition(
                ticket, "failed", error="sweep state lost"
            )
            self._notify_waiters(ticket.id)
            return
        self._publish(ticket, {"event": "finalizing"})

        def _merge():
            ident = threading.get_ident()
            self._thread_tickets[ident] = ticket
            engine = self.fleet.acquire()
            try:
                return sweep_merge(
                    state.spec,
                    cache_dir=self.store.directory,
                    engine=engine,
                )
            finally:
                self.fleet.release(engine)
                self._thread_tickets.pop(ident, None)

        try:
            outcome = await self._loop.run_in_executor(None, _merge)
        except Exception as error:
            self._sweeps.pop(ticket.id, None)
            self.tickets.transition(
                ticket,
                "failed",
                error=f"merge failed: {type(error).__name__}: {error}",
            )
            self._publish(ticket, {"event": "failed", "error": str(error)})
            self._notify_waiters(ticket.id)
            return
        state.journal.write_manifest(self.telemetry.manifest())
        self._sweeps.pop(ticket.id, None)
        self.tickets.transition(
            ticket,
            "done",
            result={
                "report": outcome.report,
                "report_sha256": outcome.manifest["report_sha256"],
                "grid_jobs": outcome.manifest["grid_jobs"],
                "cached_at_submit": state.cached,
                "computed": state.queued,
                "coalesced": state.coalesced,
            },
        )
        self._publish(
            ticket,
            {
                "event": "done",
                "report_sha256": outcome.manifest["report_sha256"],
            },
        )
        self._notify_waiters(ticket.id)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _engine_event(self, payload: Dict) -> None:
        """Telemetry observer: marshal engine events onto the loop.

        Events are emitted synchronously on the executor thread running
        that slot's computation, so the emitting thread id *is* the
        ticket attribution — concurrent slots never cross streams.
        """
        loop = self._loop
        ticket = self._thread_tickets.get(threading.get_ident())
        if loop is None or ticket is None:
            return
        try:
            loop.call_soon_threadsafe(self._publish, ticket, payload)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _publish(self, ticket: Ticket, event: Dict) -> None:
        if ticket.terminal and event.get("event") not in ("done", "failed"):
            return
        self.tickets.add_event(ticket, event)
        self._notify_waiters(ticket.id)

    def _notify_waiters(self, ticket_id: str) -> None:
        for waiter in self._ticket_waiters.pop(ticket_id, []):
            waiter.set()

    # ------------------------------------------------------------------
    # Status documents
    # ------------------------------------------------------------------
    def status_payload(self) -> Dict:
        total = self.store.hits + self.store.misses
        return {
            "protocol_version": PROTOCOL_VERSION,
            "service": {
                "draining": self._draining,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "peer_id": self.peer_id,
                "engine": {
                    "backend": self.backend,
                    "chain": self._backend_chain(),
                    "max_workers": self.slots,
                    "slots": self.slots,
                },
                "admission": self.queue.snapshot(),
                "coalesce": self.coalesce.snapshot(),
                "coordination": self.coordination_profile(),
                "tickets": self.tickets.counts(),
                "requests": {
                    name: self.requests[name]
                    for name in sorted(self.requests)
                },
                "immediate_cache_hits": self.immediate_cache_hits,
                "computed_jobs": self.computed_jobs,
                "compute_seconds": round(self.compute_seconds, 6),
                "resumed_tickets": self.resumed_tickets,
                "sse_keepalives": self.sse_keepalives,
                "sse_reaped": self.sse_reaped,
                "store": {
                    "hits": self.store.hits,
                    "misses": self.store.misses,
                    "hit_rate": self.store.hits / total if total else 0.0,
                },
                "breakers": self.fleet.breaker_snapshot()["states"],
                "heartbeat_events": len(self.telemetry.heartbeats),
            },
            "cache": cache_info_payload(self.store),
        }

    def _backend_chain(self) -> List[str]:
        engines = self.fleet.engines
        if engines:
            return engines[0].supervisor.describe_chain() + ["serial"]
        # No slot has run yet: derive the chain a slot would build.
        chain = {"pool": ["pool", "subprocess"], "subprocess": ["subprocess"]}
        return chain.get(self.backend, []) + ["serial"]

    def service_profile(self) -> Dict:
        """The ``ServiceProfile`` manifest section (since v6)."""
        return {
            "draining": self._draining,
            "peer_id": self.peer_id,
            "admission": self.queue.snapshot(),
            "coalesce": self.coalesce.snapshot(),
            "tickets": self.tickets.counts(),
            "requests": {
                name: self.requests[name] for name in sorted(self.requests)
            },
            "immediate_cache_hits": self.immediate_cache_hits,
            "computed_jobs": self.computed_jobs,
            "compute_seconds": round(self.compute_seconds, 6),
            "resumed_tickets": self.resumed_tickets,
            "sse_keepalives": self.sse_keepalives,
            "sse_reaped": self.sse_reaped,
        }

    def coordination_profile(self) -> Dict:
        """The manifest-v7 ``CoordinationProfile`` section."""
        return {
            "peer_id": self.peer_id,
            "leases": self.leases.snapshot(),
            "publishes": self.store.snapshot(),
            "remote_resolved": self.remote_resolved,
            "reclaimed_takeovers": self.reclaimed_takeovers,
            "gc": {
                "runs": self.gc_runs,
                "pruned_tickets": self.gc_pruned_tickets,
                "pruned_leases": self.gc_pruned_leases,
                "pruned_markers": self.gc_pruned_markers,
            },
        }

    def collect_garbage(self, ttl: Optional[float] = None) -> Dict:
        """Prune old terminal tickets plus coordination droppings.

        ``ttl`` defaults to ``--ticket-ttl``.  Orphaned leases (a dead,
        never-contended peer's), broken-lease tombstones, spent fencing
        tokens and satisfied publish markers age out on the same clock.
        Counted in ``/v1/metricz`` under ``...coordination.gc.*``.
        """
        age = float(self.config.ticket_ttl if ttl is None else ttl)
        tickets = self.tickets.prune(age)
        leases = self.leases.sweep(age)
        markers = self.store.sweep_markers(age)
        self.gc_runs += 1
        self.gc_pruned_tickets += tickets
        self.gc_pruned_leases += leases["orphaned"] + leases["broken"]
        self.gc_pruned_markers += markers
        return {
            "ttl": age,
            "tickets": tickets,
            "leases": leases,
            "markers": markers,
        }

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            self.requests[f"{method} {path.split('?')[0]}"] = (
                self.requests.get(f"{method} {path.split('?')[0]}", 0) + 1
            )
            await self._route(reader, writer, method, path, headers, body)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ):
            pass
        except ProtocolError as error:
            await self._respond_json(writer, 400, error_payload(str(error)))
        except Exception as error:  # never kill the daemon on one request
            try:
                await self._respond_json(
                    writer,
                    500,
                    error_payload(f"{type(error).__name__}: {error}"),
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line {line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0") or "0"
        try:
            length = int(length_raw)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_raw!r}"
            ) from None
        body = await reader.readexactly(length) if length > 0 else b""
        return method.upper(), target, headers, body

    async def _route(
        self, reader, writer, method, target, headers, body
    ) -> None:
        path = target.split("?", 1)[0]
        client = headers.get(CLIENT_HEADER.lower(), "") or DEFAULT_CLIENT
        if path == "/v1/jobs" and method == "POST":
            await self._handle_jobs(writer, client, body)
        elif path == "/v1/sweeps" and method == "POST":
            await self._handle_sweeps(writer, client, body)
        elif path.startswith("/v1/tickets/") and method == "GET":
            rest = path[len("/v1/tickets/"):]
            if rest.endswith("/events"):
                await self._handle_events(
                    reader, writer, rest[: -len("/events")]
                )
            else:
                await self._handle_ticket(writer, rest)
        elif path == "/v1/status" and method == "GET":
            await self._respond_json(writer, 200, self.status_payload())
        elif path == "/v1/metricz" and method == "GET":
            counters = flatten_counters(
                self.status_payload()["service"], prefix="repro_service."
            )
            await self._respond(
                writer,
                200,
                render_metricz(counters).encode("utf-8"),
                content_type="text/plain; charset=utf-8",
            )
        elif path == "/v1/drain" and method == "POST":
            self.initiate_drain("drain requested over HTTP")
            await self._respond_json(writer, 202, {"draining": True})
        elif path == "/v1/gc" and method == "POST":
            ttl = None
            if body:
                document = self._parse_body(body)
                if "ttl" in document:
                    try:
                        ttl = float(document["ttl"])
                    except (TypeError, ValueError):
                        raise ProtocolError(
                            f"gc ttl must be a number, got "
                            f"{document['ttl']!r}"
                        ) from None
            swept = await self._loop.run_in_executor(
                None, self.collect_garbage, ttl
            )
            await self._respond_json(writer, 200, swept)
        elif path == "/v1/shutdown" and method == "POST":
            await self._respond_json(writer, 202, {"stopping": True})
            self.request_shutdown()
        elif path in (
            "/v1/jobs",
            "/v1/sweeps",
            "/v1/status",
            "/v1/metricz",
            "/v1/drain",
            "/v1/gc",
            "/v1/shutdown",
        ):
            await self._respond_json(
                writer,
                405,
                error_payload(f"{method} not allowed on {path}"),
            )
        else:
            await self._respond_json(
                writer, 404, error_payload(f"unknown path {path!r}")
            )

    def _parse_body(self, body: bytes) -> Dict:
        if not body:
            raise ProtocolError("request body is empty")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ProtocolError(
                f"request body is not valid JSON: {error}"
            ) from None

    async def _handle_jobs(self, writer, client: str, body: bytes) -> None:
        if self._draining:
            await self._respond_json(
                writer, 503, error_payload("service is draining")
            )
            return
        jobs = parse_job_batch(self._parse_body(body))
        try:
            response = self.submit_jobs(jobs, client)
        except AdmissionFull as error:
            await self._respond_429(writer, str(error))
            return
        await self._respond_json(writer, 200, response)

    async def _handle_sweeps(self, writer, client: str, body: bytes) -> None:
        if self._draining:
            await self._respond_json(
                writer, 503, error_payload("service is draining")
            )
            return
        try:
            spec = SweepSpec.from_dict(self._parse_body(body))
        except ReproError as error:
            await self._respond_json(writer, 400, error_payload(str(error)))
            return
        try:
            response = self.submit_sweep(spec, client)
        except AdmissionFull as error:
            await self._respond_429(writer, str(error))
            return
        except ReproError as error:  # e.g. spec fingerprint conflict
            await self._respond_json(writer, 409, error_payload(str(error)))
            return
        await self._respond_json(writer, 200, response)

    async def _handle_ticket(self, writer, ticket_id: str) -> None:
        ticket = self.tickets.get(ticket_id)
        if ticket is None:
            await self._respond_json(
                writer, 404, error_payload(f"no ticket {ticket_id!r}")
            )
            return
        await self._respond_json(writer, 200, ticket.payload())

    def _discard_waiter(self, ticket_id: str, waiter: asyncio.Event) -> None:
        """Unregister one SSE waiter (keepalive wakeups, reaped clients)."""
        waiters = self._ticket_waiters.get(ticket_id)
        if not waiters:
            return
        try:
            waiters.remove(waiter)
        except ValueError:
            pass
        if not waiters:
            self._ticket_waiters.pop(ticket_id, None)

    async def _handle_events(self, reader, writer, ticket_id: str) -> None:
        """SSE: stream ticket events until terminal or the client leaves.

        Idle streams carry a ``: keepalive`` comment every
        ``--sse-keepalive`` seconds so middleboxes don't cut them, and a
        background read on the connection detects the client closing its
        end — a disconnected client's stream task (and its waiter
        registration) is reaped instead of parked forever.
        """
        ticket = self.tickets.get(ticket_id)
        if ticket is None:
            await self._respond_json(
                writer, 404, error_payload(f"no ticket {ticket_id!r}")
            )
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        # SSE clients never send another byte: a completed read means the
        # peer closed (or broke) the connection.
        closed = asyncio.ensure_future(reader.read())
        sent = 0
        waiter: Optional[asyncio.Event] = None
        wait_task: Optional[asyncio.Task] = None
        try:
            while True:
                events = ticket.events[sent:]
                for event in events:
                    data = json.dumps(event, sort_keys=True)
                    writer.write(f"data: {data}\n\n".encode("utf-8"))
                sent += len(events)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    self.sse_reaped += 1
                    return
                if ticket.terminal:
                    closing = json.dumps(
                        {"state": ticket.state}, sort_keys=True
                    )
                    writer.write(
                        f"event: end\ndata: {closing}\n\n".encode()
                    )
                    await writer.drain()
                    return
                waiter = asyncio.Event()
                self._ticket_waiters.setdefault(ticket.id, []).append(
                    waiter
                )
                if len(ticket.events) > sent or ticket.terminal:
                    # Appended between snapshot and registration.
                    self._discard_waiter(ticket.id, waiter)
                    waiter = None
                    continue
                wait_task = asyncio.ensure_future(waiter.wait())
                done, _ = await asyncio.wait(
                    {wait_task, closed},
                    timeout=self.config.sse_keepalive,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                self._discard_waiter(ticket.id, waiter)
                waiter = None
                if closed in done:
                    self.sse_reaped += 1
                    return
                if not done:  # idle interval: prove the stream is alive
                    self.sse_keepalives += 1
                    writer.write(b": keepalive\n\n")
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        self.sse_reaped += 1
                        return
        finally:
            if waiter is not None:
                self._discard_waiter(ticket_id, waiter)
            if wait_task is not None:
                wait_task.cancel()
            closed.cancel()

    async def _respond_429(self, writer, message: str) -> None:
        hint = self._retry_after()
        await self._respond_json(
            writer,
            429,
            error_payload(message, retry_after=hint),
            extra_headers={"Retry-After": str(int(math.ceil(hint)))},
        )

    async def _respond_json(
        self, writer, status: int, payload: Dict, extra_headers=None
    ) -> None:
        await self._respond(
            writer,
            status,
            dumps_stable(payload).encode("utf-8"),
            extra_headers=extra_headers,
        )

    async def _respond(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


class ServiceThread:
    """Run a daemon on a background thread (tests, benchmarks, embedding).

    ``start()`` blocks until the daemon is listening; ``stop()`` requests
    graceful shutdown and joins.  The bound TCP port is ``self.port``
    (pass ``port=0`` in the config for an ephemeral one).
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.daemon: Optional[ServiceDaemon] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("service thread did not become ready")
        if self.error is not None:
            raise ReproError(f"service failed to start: {self.error}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface startup failures
            self.error = error
            self._ready.set()

    async def _amain(self) -> None:
        self.daemon = ServiceDaemon(self.config)
        await self.daemon.start()
        self.port = self.daemon.port
        self._ready.set()
        await self.daemon._shutdown_requested.wait()
        await self.daemon.stop()

    def stop(self, timeout: float = 30.0) -> None:
        daemon = self.daemon
        if daemon is not None and daemon._loop is not None:
            try:
                daemon._loop.call_soon_threadsafe(daemon.request_shutdown)
            except RuntimeError:
                pass
        self._thread.join(timeout)
