"""The leakage-analysis daemon: one engine, many clients, zero re-work.

``repro-leakage serve`` starts a long-lived asyncio process that owns a
single :class:`~repro.engine.ExecutionEngine` — and with it the
content-addressed result store, the supervised backend chain, circuit
breakers, validation gate and fault harness — and serves it over a
hand-rolled HTTP/1.1 interface (stdlib only, ``asyncio.start_server``):

====================================  =================================
``POST /v1/jobs``                     job batch → per-item cached result
                                      or ticket (429 when the admission
                                      queue is full)
``POST /v1/sweeps``                   a ``SweepSpec`` → one sweep ticket
``GET /v1/tickets/<id>``              poll a ticket (state, events,
                                      result)
``GET /v1/tickets/<id>/events``       live SSE progress stream
``GET /v1/status``                    full status document (shared
                                      serializer with the CLI ``--json``
                                      outputs)
``GET /v1/metricz``                   flat ``name value`` counters
``POST /v1/drain``                    stop admitting, keep serving reads
``POST /v1/shutdown``                 graceful drain + exit
====================================  =================================

The serving discipline:

* **Admission** (:mod:`repro.service.admission`): new computations take
  bounded queue slots, full queues answer 429 + ``Retry-After``, and a
  stride scheduler keyed by the ``X-Client`` header keeps one client
  from starving the rest.
* **Coalescing** (:mod:`repro.service.coalesce`): concurrent requests
  for one content address share one computation; cached answers return
  inline at admission time.
* **Durability** (:mod:`repro.service.tickets`): every ticket persists
  its state machine to disk.  SIGTERM drains — in-flight work finishes,
  queued tickets stay journaled — and a restarted daemon resumes them,
  the content-addressed store guaranteeing nothing is lost or computed
  twice.
* **Telemetry**: engine lifecycle events stream onto tickets via the
  telemetry observer seam; shutdown records a ``ServiceProfile`` into
  the manifest (v6) under ``<cache>/service/manifest.json``.

One work item executes at a time — parallelism lives *inside* the
engine (worker processes), so the daemon's concurrency model stays a
single event loop plus one executor thread, and dispatch order is the
deterministic stride order.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..engine import (
    ExecutionEngine,
    ResultStore,
    SimulationJob,
    atomic_write_json,
)
from ..errors import ReproError
from ..sweep import ShardAssignment, SweepCoordinator, SweepSpec, expand
from ..sweep import merge as sweep_merge
from .admission import AdmissionFull, AdmissionQueue, WorkItem
from .coalesce import CoalesceRegistry
from .protocol import (
    CLIENT_HEADER,
    DEFAULT_CLIENT,
    PROTOCOL_VERSION,
    ProtocolError,
    cache_info_payload,
    dumps_stable,
    error_payload,
    execution_payload,
    flatten_counters,
    job_result_payload,
    job_spec_payload,
    parse_job_batch,
    parse_job_spec,
    render_metricz,
)
from .tickets import KIND_JOB, KIND_SWEEP, Ticket, TicketRegistry

#: Subdirectory of the cache dir owning service state (tickets, manifest).
SERVICE_SUBDIR = "service"

#: Default TCP port (no registered meaning; "LEAK" on a phone pad is long
#: gone, so: the paper's 70 nm node x 119).
DEFAULT_PORT = 8330

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything ``repro-leakage serve`` configures."""

    host: str = "127.0.0.1"
    port: Optional[int] = None  #: ``None`` with no socket -> DEFAULT_PORT.
    socket: Optional[str] = None  #: Unix-socket path (instead of TCP).
    jobs: Optional[int] = None
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    max_queue: int = 256
    #: Floor for the 429 ``Retry-After`` hint, seconds.
    retry_after: float = 1.0
    #: Per-client fairness weights (unlisted clients weigh 1.0).
    client_weights: Dict[str, float] = field(default_factory=dict)


class _SweepState:
    """In-memory bookkeeping for one live sweep ticket."""

    __slots__ = (
        "spec",
        "pending",
        "jobs",
        "journal",
        "cached",
        "queued",
        "coalesced",
        "finalizing",
    )

    def __init__(self, spec: SweepSpec, journal) -> None:
        self.spec = spec
        self.pending: set = set()
        self.jobs: Dict[str, SimulationJob] = {}
        self.journal = journal
        self.cached = 0
        self.queued = 0
        self.coalesced = 0
        self.finalizing = False


class ServiceDaemon:
    """The daemon: admission, coalescing, scheduling, tickets, HTTP."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.store = ResultStore(self.config.cache_dir)
        self.engine = ExecutionEngine(
            jobs=self.config.jobs,
            store=self.store,
            backend=self.config.backend,
        )
        self.service_dir = self.store.directory / SERVICE_SUBDIR
        self.tickets = TicketRegistry(self.service_dir / "tickets")
        self.queue = AdmissionQueue(
            self.config.max_queue, self.config.client_weights
        )
        self.coalesce = CoalesceRegistry()
        self._sweeps: Dict[str, _SweepState] = {}
        self._ticket_waiters: Dict[str, List[asyncio.Event]] = {}
        self._current_ticket: Optional[Ticket] = None
        self._draining = False
        self._started = time.monotonic()
        self.port: Optional[int] = None  #: Bound TCP port once serving.
        #: Lifetime counters (ServiceProfile + /v1/metricz).
        self.requests: Dict[str, int] = {}
        self.immediate_cache_hits = 0
        self.computed_jobs = 0
        self.compute_seconds = 0.0
        self.resumed_tickets = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._scheduler_task: Optional[asyncio.Task] = None
        self._work: Optional[asyncio.Event] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self.engine.telemetry.subscribe(self._engine_event)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Resume journaled tickets, start the scheduler and listeners."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._shutdown_requested = asyncio.Event()
        self._resume_tickets()
        self._scheduler_task = asyncio.create_task(self._scheduler())
        if self.config.socket:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket
            )
            self._servers.append(server)
            where = f"unix:{self.config.socket}"
        else:
            port = (
                DEFAULT_PORT if self.config.port is None else self.config.port
            )
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=port
            )
            self._servers.append(server)
            self.port = server.sockets[0].getsockname()[1]
            where = f"http://{self.config.host}:{self.port}"
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"repro-leakage service: serving on {where} "
            f"(cache {self.store.describe()}, backend {self.engine.backend}, "
            f"queue limit {self.queue.limit})",
            file=sys.stderr,
        )

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT or ``POST /v1/shutdown``."""
        await self.start()
        await self._shutdown_requested.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal handlers and ``/v1/shutdown``)."""
        self.initiate_drain("shutdown requested")
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    def initiate_drain(self, reason: str) -> None:
        """Stop admitting work; reads keep serving, POSTs get 503."""
        if not self._draining:
            self._draining = True
            self.engine.telemetry.note(f"service drain: {reason}")
        if self._work is not None:
            self._work.set()

    async def stop(self) -> None:
        """Drain, finish the in-flight item, journal the rest, exit."""
        self.initiate_drain("stopping")
        if self._scheduler_task is not None:
            await self._scheduler_task
        queued = [t for t in self.tickets.all() if t.state == "queued"]
        self.engine.telemetry.record_service(self.service_profile())
        self.engine.telemetry.record_store(self.store)
        atomic_write_json(
            self.service_dir / "manifest.json",
            self.engine.telemetry.manifest(),
        )
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        print(
            f"repro-leakage service: drained "
            f"({len(queued)} queued ticket(s) journaled for resume); "
            f"manifest: {self.service_dir / 'manifest.json'}",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    # Restart resume
    # ------------------------------------------------------------------
    def _resume_tickets(self) -> None:
        """Re-admit every journaled non-terminal ticket, in order.

        Resume admission is *internal* — the bound never refuses work the
        daemon already promised.  A ticket whose computation actually
        finished before the crash resolves instantly from the cache;
        duplicates coalesce; nothing runs twice.
        """
        for ticket in self.tickets.load():
            self.resumed_tickets += 1
            try:
                if ticket.kind == KIND_SWEEP:
                    spec = SweepSpec.from_dict(ticket.spec)
                    self._admit_sweep(ticket, spec, internal=True)
                else:
                    job = parse_job_spec(ticket.spec)
                    ticket.coalesced_with = None
                    self._admit_job_ticket(ticket, job, internal=True)
            except ReproError as error:
                self.tickets.transition(
                    ticket, "failed", error=f"resume failed: {error}"
                )
                continue
            self._publish(ticket, {"event": "resumed"})

    # ------------------------------------------------------------------
    # Admission (event-loop only)
    # ------------------------------------------------------------------
    def _retry_after(self) -> float:
        """The 429 hint: queue depth x observed seconds per computation."""
        average = (
            self.compute_seconds / self.computed_jobs
            if self.computed_jobs
            else 2.0
        )
        return max(
            float(self.config.retry_after),
            (self.queue.depth + 1) * average,
        )

    def _classify(self, job: SimulationJob) -> Tuple[str, object]:
        """What admitting this job would do: coalesce, hit, or compute."""
        key = job.key()
        leader = self.coalesce.leader_for(key)
        if leader is not None:
            return "coalesce", leader
        hit = self.store.get(key)
        if hit is not None:
            return "cached", hit
        return "new", None

    def _admit_job_ticket(
        self, ticket: Ticket, job: SimulationJob, internal: bool = False
    ) -> str:
        """Queue or coalesce an existing ticket; returns its disposition."""
        key = job.key()
        leader = self.coalesce.leader_for(key)
        if leader is not None and leader != ticket.id:
            ticket.coalesced_with = leader
            self.coalesce.attach(key, ticket.id)
            self._publish(ticket, {"event": "coalesced", "leader": leader})
            return "coalesced"
        hit = self.store.get(key)
        if hit is not None:
            self.immediate_cache_hits += 1
            result = job_result_payload(job, hit)
            self.tickets.transition(
                ticket,
                "done",
                result={
                    "result": result,
                    "execution": {
                        "source": "cached",
                        "attempts": 0,
                        "wall_seconds": 0.0,
                        "coalesced": False,
                    },
                },
            )
            self._publish(ticket, {"event": "cache-hit", "key": key})
            self._notify_waiters(ticket.id)
            return "cached"
        if ticket.state != "queued":
            self.tickets.transition(ticket, "queued")
        self.coalesce.begin(key, ticket.id)
        self.queue.admit(
            WorkItem(ticket.id, key, ticket.client, internal=internal)
        )
        self._publish(ticket, {"event": "admitted", "key": key})
        if self._work is not None:
            self._work.set()
        return "queued"

    def submit_jobs(self, jobs: List[SimulationJob], client: str) -> Dict:
        """Admit one job batch; per-item cached results or tickets.

        Whole-batch admission: either every new computation in the batch
        gets a slot, or the entire request is refused with
        :class:`AdmissionFull` — a half-admitted batch is a promise the
        client cannot reason about.
        """
        plans = [(job, self._classify(job)) for job in jobs]
        new_keys = {
            job.key()
            for job, (disposition, _) in plans
            if disposition == "new"
        }
        if new_keys and not self.queue.can_admit(len(new_keys)):
            self.queue.reject_batch(client, len(new_keys))
            raise AdmissionFull(
                f"admission queue cannot take {len(new_keys)} more "
                f"computation(s) ({self.queue.depth}/{self.queue.limit} "
                "slots used)",
                depth=self.queue.depth,
                limit=self.queue.limit,
            )
        items = []
        for job, (disposition, extra) in plans:
            key = job.key()
            # Re-classify inside the batch: an earlier duplicate item may
            # have become this key's leader.
            leader = self.coalesce.leader_for(key)
            if disposition == "cached":
                self.immediate_cache_hits += 1
                items.append(
                    {
                        "status": "cached",
                        "key": key,
                        "spec": job_spec_payload(job),
                        "result": job_result_payload(job, extra),
                        "execution": {
                            "source": "cached",
                            "attempts": 0,
                            "wall_seconds": 0.0,
                            "coalesced": False,
                        },
                    }
                )
                continue
            if leader is not None:
                ticket = self.tickets.create(
                    KIND_JOB,
                    job_spec_payload(job),
                    key,
                    client,
                    coalesced_with=leader,
                )
                self.coalesce.attach(key, ticket.id)
                self._publish(
                    ticket, {"event": "coalesced", "leader": leader}
                )
                items.append(
                    {
                        "status": "coalesced",
                        "key": key,
                        "spec": job_spec_payload(job),
                        "ticket": ticket.id,
                        "leader": leader,
                    }
                )
                continue
            ticket = self.tickets.create(
                KIND_JOB, job_spec_payload(job), key, client
            )
            self.coalesce.begin(key, ticket.id)
            self.queue.admit(WorkItem(ticket.id, key, client))
            self._publish(ticket, {"event": "admitted", "key": key})
            items.append(
                {
                    "status": "queued",
                    "key": key,
                    "spec": job_spec_payload(job),
                    "ticket": ticket.id,
                }
            )
        if self._work is not None:
            self._work.set()
        return {"items": items}

    def submit_sweep(self, spec: SweepSpec, client: str) -> Dict:
        """Admit a whole sweep; returns its single ticket."""
        points = expand(spec)
        new_keys = set()
        for point in points:
            disposition, _ = self._classify(point.job)
            if disposition == "new":
                new_keys.add(point.key())
        if new_keys and not self.queue.can_admit(len(new_keys)):
            self.queue.reject_batch(client, len(new_keys))
            raise AdmissionFull(
                f"admission queue cannot take the sweep's {len(new_keys)} "
                f"new computation(s) ({self.queue.depth}/{self.queue.limit} "
                "slots used)",
                depth=self.queue.depth,
                limit=self.queue.limit,
            )
        ticket = self.tickets.create(
            KIND_SWEEP, spec.to_dict(), spec.fingerprint(), client
        )
        try:
            self._admit_sweep(ticket, spec, internal=False)
        except ReproError as error:  # e.g. spec fingerprint conflict
            self.tickets.transition(ticket, "failed", error=str(error))
            self._notify_waiters(ticket.id)
            raise
        state = self._sweeps.get(ticket.id)
        return {
            "ticket": ticket.id,
            "sweep": spec.name,
            "spec_fingerprint": spec.fingerprint(),
            "points": len(points),
            "queued": state.queued if state else 0,
            "cached": state.cached if state else 0,
            "coalesced": state.coalesced if state else 0,
        }

    def _admit_sweep(
        self, ticket: Ticket, spec: SweepSpec, internal: bool
    ) -> None:
        """Expand a sweep ticket into watched points + a finalize step."""
        coordinator = SweepCoordinator(spec, self.store.directory)
        coordinator.ensure_spec()
        journal = coordinator.shard_journal(ShardAssignment())
        if journal.exists():
            journal.load()  # resumed sweep: keep the journal duplicate-free
        state = _SweepState(spec, journal)
        self._sweeps[ticket.id] = state
        if ticket.state != "running":
            self.tickets.transition(ticket, "running")
        for point in expand(spec):
            job = point.job
            key = point.key()
            state.jobs[key] = job
            disposition, _ = self._classify(job)
            if disposition == "cached":
                state.cached += 1
                journal.record(job)
                continue
            state.pending.add(key)
            self.coalesce.watch(key, ticket.id)
            if disposition == "coalesce":
                state.coalesced += 1
                continue
            leader = self.tickets.create(
                KIND_JOB, job_spec_payload(job), key, ticket.client
            )
            self.coalesce.begin(key, leader.id)
            self.queue.admit(
                WorkItem(leader.id, key, ticket.client, internal=internal)
            )
            self._publish(leader, {"event": "admitted", "key": key})
            state.queued += 1
        self._publish(
            ticket,
            {
                "event": "sweep-admitted",
                "points": len(state.jobs),
                "pending": len(state.pending),
                "cached": state.cached,
                "coalesced": state.coalesced,
            },
        )
        if not state.pending:
            self._enqueue_finalize(ticket, state)
        elif self._work is not None:
            self._work.set()

    def _enqueue_finalize(self, ticket: Ticket, state: _SweepState) -> None:
        if state.finalizing:
            return
        state.finalizing = True
        self.queue.admit(
            WorkItem(ticket.id, ticket.key, ticket.client, internal=True)
        )
        self._publish(ticket, {"event": "finalize-queued"})
        if self._work is not None:
            self._work.set()

    # ------------------------------------------------------------------
    # Scheduler (one work item at a time; engine parallelizes inside)
    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        while True:
            if self._draining:
                break
            item = self.queue.pop()
            if item is None:
                self._work.clear()
                if self._draining:
                    break
                await self._work.wait()
                continue
            await self._run_item(item)

    async def _run_item(self, item: WorkItem) -> None:
        ticket = self.tickets.get(item.ticket_id)
        if ticket is None or ticket.terminal:
            return
        if ticket.kind == KIND_SWEEP:
            await self._run_sweep_finalize(ticket)
            return
        try:
            job = parse_job_spec(ticket.spec)
        except ReproError as error:
            self.tickets.transition(ticket, "failed", error=str(error))
            self._notify_waiters(ticket.id)
            return
        self.tickets.transition(ticket, "running")
        self._publish(ticket, {"event": "computing", "key": ticket.key})
        self._current_ticket = ticket
        start = time.perf_counter()
        try:
            outcome = await self._loop.run_in_executor(
                None, self.engine.run_one, job
            )
        except Exception as error:
            self._current_ticket = None
            self._fail_computation(
                ticket, f"{type(error).__name__}: {error}"
            )
            return
        self._current_ticket = None
        self.compute_seconds += time.perf_counter() - start
        self.computed_jobs += 1
        result = job_result_payload(job, outcome.annotated)
        execution = execution_payload(outcome)
        self.tickets.transition(
            ticket, "done", result={"result": result, "execution": execution}
        )
        self._publish(ticket, {"event": "done", "source": outcome.source})
        self._notify_waiters(ticket.id)
        self._complete_key(ticket.key, job, result, execution)

    def _complete_key(
        self, key: str, job: SimulationJob, result: Dict, execution: Dict
    ) -> None:
        """Resolve followers and sweep watchers of a finished key."""
        watchers = self.coalesce.watchers(key)
        followers = self.coalesce.complete(key)
        for follower_id in followers:
            follower = self.tickets.get(follower_id)
            if follower is None or follower.terminal:
                continue
            shared = dict(execution)
            shared["coalesced"] = True
            self.tickets.transition(
                follower,
                "done",
                result={"result": result, "execution": shared},
            )
            self._publish(follower, {"event": "done", "coalesced": True})
            self._notify_waiters(follower.id)
        for sweep_id in watchers:
            sweep = self.tickets.get(sweep_id)
            state = self._sweeps.get(sweep_id)
            if sweep is None or state is None or sweep.terminal:
                continue
            state.pending.discard(key)
            state.journal.record(job)
            self._publish(
                sweep,
                {
                    "event": "point-completed",
                    "job": job.describe(),
                    "remaining": len(state.pending),
                },
            )
            if not state.pending:
                self._enqueue_finalize(sweep, state)

    def _fail_computation(self, ticket: Ticket, error: str) -> None:
        """A computation exhausted every backend and retry: fail fan-out."""
        key = ticket.key
        self.tickets.transition(ticket, "failed", error=error)
        self._publish(ticket, {"event": "failed", "error": error})
        self._notify_waiters(ticket.id)
        watchers = self.coalesce.watchers(key)
        for follower_id in self.coalesce.complete(key):
            follower = self.tickets.get(follower_id)
            if follower is None or follower.terminal:
                continue
            self.tickets.transition(follower, "failed", error=error)
            self._publish(follower, {"event": "failed", "error": error})
            self._notify_waiters(follower.id)
        for sweep_id in watchers:
            sweep = self.tickets.get(sweep_id)
            if sweep is None or sweep.terminal:
                continue
            self.tickets.transition(
                sweep, "failed", error=f"sweep point failed: {error}"
            )
            self._publish(sweep, {"event": "failed", "error": error})
            self._notify_waiters(sweep.id)
            self._sweeps.pop(sweep_id, None)

    async def _run_sweep_finalize(self, ticket: Ticket) -> None:
        state = self._sweeps.get(ticket.id)
        if state is None:
            self.tickets.transition(
                ticket, "failed", error="sweep state lost"
            )
            self._notify_waiters(ticket.id)
            return
        self._publish(ticket, {"event": "finalizing"})
        self._current_ticket = ticket
        try:
            outcome = await self._loop.run_in_executor(
                None,
                lambda: sweep_merge(
                    state.spec,
                    cache_dir=self.store.directory,
                    engine=self.engine,
                ),
            )
        except Exception as error:
            self._current_ticket = None
            self._sweeps.pop(ticket.id, None)
            self.tickets.transition(
                ticket,
                "failed",
                error=f"merge failed: {type(error).__name__}: {error}",
            )
            self._publish(ticket, {"event": "failed", "error": str(error)})
            self._notify_waiters(ticket.id)
            return
        self._current_ticket = None
        state.journal.write_manifest(self.engine.telemetry.manifest())
        self._sweeps.pop(ticket.id, None)
        self.tickets.transition(
            ticket,
            "done",
            result={
                "report": outcome.report,
                "report_sha256": outcome.manifest["report_sha256"],
                "grid_jobs": outcome.manifest["grid_jobs"],
                "cached_at_submit": state.cached,
                "computed": state.queued,
                "coalesced": state.coalesced,
            },
        )
        self._publish(
            ticket,
            {
                "event": "done",
                "report_sha256": outcome.manifest["report_sha256"],
            },
        )
        self._notify_waiters(ticket.id)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _engine_event(self, payload: Dict) -> None:
        """Telemetry observer: marshal engine events onto the loop."""
        loop, ticket = self._loop, self._current_ticket
        if loop is None or ticket is None:
            return
        try:
            loop.call_soon_threadsafe(self._publish, ticket, payload)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _publish(self, ticket: Ticket, event: Dict) -> None:
        if ticket.terminal and event.get("event") not in ("done", "failed"):
            return
        self.tickets.add_event(ticket, event)
        self._notify_waiters(ticket.id)

    def _notify_waiters(self, ticket_id: str) -> None:
        for waiter in self._ticket_waiters.pop(ticket_id, []):
            waiter.set()

    # ------------------------------------------------------------------
    # Status documents
    # ------------------------------------------------------------------
    def status_payload(self) -> Dict:
        total = self.store.hits + self.store.misses
        return {
            "protocol_version": PROTOCOL_VERSION,
            "service": {
                "draining": self._draining,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "engine": {
                    "backend": self.engine.backend,
                    "chain": self.engine.supervisor.describe_chain()
                    + ["serial"],
                    "max_workers": self.engine.max_workers,
                },
                "admission": self.queue.snapshot(),
                "coalesce": self.coalesce.snapshot(),
                "tickets": self.tickets.counts(),
                "requests": {
                    name: self.requests[name]
                    for name in sorted(self.requests)
                },
                "immediate_cache_hits": self.immediate_cache_hits,
                "computed_jobs": self.computed_jobs,
                "compute_seconds": round(self.compute_seconds, 6),
                "resumed_tickets": self.resumed_tickets,
                "store": {
                    "hits": self.store.hits,
                    "misses": self.store.misses,
                    "hit_rate": self.store.hits / total if total else 0.0,
                },
                "breakers": self.engine.supervisor.snapshot()["states"],
                "heartbeat_events": len(self.engine.telemetry.heartbeats),
            },
            "cache": cache_info_payload(self.store),
        }

    def service_profile(self) -> Dict:
        """The manifest-v6 ``ServiceProfile`` section."""
        return {
            "draining": self._draining,
            "admission": self.queue.snapshot(),
            "coalesce": self.coalesce.snapshot(),
            "tickets": self.tickets.counts(),
            "requests": {
                name: self.requests[name] for name in sorted(self.requests)
            },
            "immediate_cache_hits": self.immediate_cache_hits,
            "computed_jobs": self.computed_jobs,
            "compute_seconds": round(self.compute_seconds, 6),
            "resumed_tickets": self.resumed_tickets,
        }

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            self.requests[f"{method} {path.split('?')[0]}"] = (
                self.requests.get(f"{method} {path.split('?')[0]}", 0) + 1
            )
            await self._route(writer, method, path, headers, body)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ):
            pass
        except ProtocolError as error:
            await self._respond_json(writer, 400, error_payload(str(error)))
        except Exception as error:  # never kill the daemon on one request
            try:
                await self._respond_json(
                    writer,
                    500,
                    error_payload(f"{type(error).__name__}: {error}"),
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line {line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0") or "0"
        try:
            length = int(length_raw)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_raw!r}"
            ) from None
        body = await reader.readexactly(length) if length > 0 else b""
        return method.upper(), target, headers, body

    async def _route(self, writer, method, target, headers, body) -> None:
        path = target.split("?", 1)[0]
        client = headers.get(CLIENT_HEADER.lower(), "") or DEFAULT_CLIENT
        if path == "/v1/jobs" and method == "POST":
            await self._handle_jobs(writer, client, body)
        elif path == "/v1/sweeps" and method == "POST":
            await self._handle_sweeps(writer, client, body)
        elif path.startswith("/v1/tickets/") and method == "GET":
            rest = path[len("/v1/tickets/"):]
            if rest.endswith("/events"):
                await self._handle_events(writer, rest[: -len("/events")])
            else:
                await self._handle_ticket(writer, rest)
        elif path == "/v1/status" and method == "GET":
            await self._respond_json(writer, 200, self.status_payload())
        elif path == "/v1/metricz" and method == "GET":
            counters = flatten_counters(
                self.status_payload()["service"], prefix="repro_service."
            )
            await self._respond(
                writer,
                200,
                render_metricz(counters).encode("utf-8"),
                content_type="text/plain; charset=utf-8",
            )
        elif path == "/v1/drain" and method == "POST":
            self.initiate_drain("drain requested over HTTP")
            await self._respond_json(writer, 202, {"draining": True})
        elif path == "/v1/shutdown" and method == "POST":
            await self._respond_json(writer, 202, {"stopping": True})
            self.request_shutdown()
        elif path in (
            "/v1/jobs",
            "/v1/sweeps",
            "/v1/status",
            "/v1/metricz",
            "/v1/drain",
            "/v1/shutdown",
        ):
            await self._respond_json(
                writer,
                405,
                error_payload(f"{method} not allowed on {path}"),
            )
        else:
            await self._respond_json(
                writer, 404, error_payload(f"unknown path {path!r}")
            )

    def _parse_body(self, body: bytes) -> Dict:
        if not body:
            raise ProtocolError("request body is empty")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ProtocolError(
                f"request body is not valid JSON: {error}"
            ) from None

    async def _handle_jobs(self, writer, client: str, body: bytes) -> None:
        if self._draining:
            await self._respond_json(
                writer, 503, error_payload("service is draining")
            )
            return
        jobs = parse_job_batch(self._parse_body(body))
        try:
            response = self.submit_jobs(jobs, client)
        except AdmissionFull as error:
            await self._respond_429(writer, str(error))
            return
        await self._respond_json(writer, 200, response)

    async def _handle_sweeps(self, writer, client: str, body: bytes) -> None:
        if self._draining:
            await self._respond_json(
                writer, 503, error_payload("service is draining")
            )
            return
        try:
            spec = SweepSpec.from_dict(self._parse_body(body))
        except ReproError as error:
            await self._respond_json(writer, 400, error_payload(str(error)))
            return
        try:
            response = self.submit_sweep(spec, client)
        except AdmissionFull as error:
            await self._respond_429(writer, str(error))
            return
        except ReproError as error:  # e.g. spec fingerprint conflict
            await self._respond_json(writer, 409, error_payload(str(error)))
            return
        await self._respond_json(writer, 200, response)

    async def _handle_ticket(self, writer, ticket_id: str) -> None:
        ticket = self.tickets.get(ticket_id)
        if ticket is None:
            await self._respond_json(
                writer, 404, error_payload(f"no ticket {ticket_id!r}")
            )
            return
        await self._respond_json(writer, 200, ticket.payload())

    async def _handle_events(self, writer, ticket_id: str) -> None:
        """SSE: stream ticket events until the ticket is terminal."""
        ticket = self.tickets.get(ticket_id)
        if ticket is None:
            await self._respond_json(
                writer, 404, error_payload(f"no ticket {ticket_id!r}")
            )
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        sent = 0
        while True:
            events = ticket.events[sent:]
            for event in events:
                data = json.dumps(event, sort_keys=True)
                writer.write(f"data: {data}\n\n".encode("utf-8"))
            sent += len(events)
            await writer.drain()
            if ticket.terminal:
                closing = json.dumps(
                    {"state": ticket.state}, sort_keys=True
                )
                writer.write(f"event: end\ndata: {closing}\n\n".encode())
                await writer.drain()
                return
            waiter = asyncio.Event()
            self._ticket_waiters.setdefault(ticket.id, []).append(waiter)
            if len(ticket.events) > sent or ticket.terminal:
                continue  # appended between snapshot and registration
            try:
                await asyncio.wait_for(waiter.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                pass

    async def _respond_429(self, writer, message: str) -> None:
        hint = self._retry_after()
        await self._respond_json(
            writer,
            429,
            error_payload(message, retry_after=hint),
            extra_headers={"Retry-After": str(int(math.ceil(hint)))},
        )

    async def _respond_json(
        self, writer, status: int, payload: Dict, extra_headers=None
    ) -> None:
        await self._respond(
            writer,
            status,
            dumps_stable(payload).encode("utf-8"),
            extra_headers=extra_headers,
        )

    async def _respond(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


class ServiceThread:
    """Run a daemon on a background thread (tests, benchmarks, embedding).

    ``start()`` blocks until the daemon is listening; ``stop()`` requests
    graceful shutdown and joins.  The bound TCP port is ``self.port``
    (pass ``port=0`` in the config for an ephemeral one).
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.daemon: Optional[ServiceDaemon] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("service thread did not become ready")
        if self.error is not None:
            raise ReproError(f"service failed to start: {self.error}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface startup failures
            self.error = error
            self._ready.set()

    async def _amain(self) -> None:
        self.daemon = ServiceDaemon(self.config)
        await self.daemon.start()
        self.port = self.daemon.port
        self._ready.set()
        await self.daemon._shutdown_requested.wait()
        await self.daemon.stop()

    def stop(self, timeout: float = 30.0) -> None:
        daemon = self.daemon
        if daemon is not None and daemon._loop is not None:
            try:
                daemon._loop.call_soon_threadsafe(daemon.request_shutdown)
            except RuntimeError:
                pass
        self._thread.join(timeout)
