"""Wire protocol of the leakage-analysis service.

Everything that crosses the HTTP boundary — job specs, result payloads,
ticket records, status documents — is defined here, in one place, so
the daemon (:mod:`repro.service.server`), the blocking client
(:mod:`repro.service.client`) and the CLI's ``--json`` outputs share a
single serializer instead of three ad-hoc ones.

Two invariants the rest of the subsystem leans on:

* **Stable bytes.**  :func:`dumps_stable` renders every payload with
  sorted keys and a fixed indent, so two responses describing the same
  result are byte-identical — the property the coalescing-determinism
  tests assert.
* **Deterministic vs. execution-dependent split.**  A job's payload is
  two documents: ``result`` (instructions, cycles, per-level cache
  stats — a pure function of the job's content address) and
  ``execution`` (source, attempts, coalescing — whatever path happened
  to produce it).  Clients comparing answers compare ``result``.

Job specs mirror :class:`~repro.engine.jobs.SimulationJob`::

    {"benchmark": "gzip", "scale": 0.05, "pipeline": null}

and are parsed through the *same* pipeline-entry validation the sweep
spec uses, so an HTTP submission and a local sweep point at the same
parameters agree on their content address and share one cache entry.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..engine import JobOutcome, SimulationJob, collect_sharing_stats
from ..errors import ReproError
from ..sweep.spec import pipeline_from_dict, pipeline_to_dict

#: Version of the wire protocol; served in every status document.
#: Version 2 added multi-daemon coordination: the ``coordination``
#: status section (peer id, lease and guarded-publish counters),
#: ``POST /v1/gc``, and SSE keepalive comments on the event stream.
PROTOCOL_VERSION = 2

#: Ticket lifecycle states (the registry enforces the transitions).
TICKET_STATES = ("queued", "running", "done", "failed")

#: Header naming the submitting client (admission fairness key).
CLIENT_HEADER = "X-Client"

#: Fallback client name when the header is absent.
DEFAULT_CLIENT = "anonymous"


class ProtocolError(ReproError):
    """A request body or payload violates the wire protocol."""


def dumps_stable(payload) -> str:
    """Canonical JSON text: sorted keys, 2-space indent, trailing newline.

    The one serializer behind ``/v1/status``, ticket documents, and the
    CLI's ``--json`` outputs — byte-stable for identical payloads.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------
def parse_job_spec(data) -> SimulationJob:
    """Parse one job spec object into a validated engine job."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"job spec must be an object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"benchmark", "scale", "pipeline"})
    if unknown:
        raise ProtocolError(
            f"job spec has unknown fields {unknown}; "
            "known: ['benchmark', 'pipeline', 'scale']"
        )
    if "benchmark" not in data:
        raise ProtocolError("job spec needs a 'benchmark' field")
    scale = data.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool):
        raise ProtocolError(f"job spec scale must be a number, got {scale!r}")
    try:
        pipeline = pipeline_from_dict(data.get("pipeline"))
        return SimulationJob(
            data["benchmark"], scale=float(scale), pipeline=pipeline
        )
    except ReproError as error:
        raise ProtocolError(str(error)) from None


def parse_job_batch(body: Dict) -> List[SimulationJob]:
    """Parse a ``POST /v1/jobs`` body: ``{"jobs": [<spec>, ...]}``."""
    if not isinstance(body, dict) or "jobs" not in body:
        raise ProtocolError("request body needs a 'jobs' array")
    specs = body["jobs"]
    if not isinstance(specs, list) or not specs:
        raise ProtocolError("'jobs' must be a non-empty array of job specs")
    return [parse_job_spec(entry) for entry in specs]


def job_spec_payload(job: SimulationJob) -> Dict:
    """The canonical spec object a job round-trips through."""
    return {
        "benchmark": job.benchmark,
        "scale": float(job.scale),
        "pipeline": pipeline_to_dict(job.pipeline),
    }


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def job_result_payload(job: SimulationJob, annotated) -> Dict:
    """The deterministic result document for one finished job.

    A pure function of the job's content address: every field comes from
    the simulated result, none from the execution path, so serial,
    parallel, cached and coalesced answers serialize identically.
    """
    result = annotated.result
    levels = {}
    for name, stats in sorted(result.stats.levels.items()):
        levels[name] = {
            "accesses": int(stats.accesses),
            "hits": int(stats.hits),
            "misses": int(stats.misses),
            "evictions": int(stats.evictions),
        }
    benchmark, scale = job.canonical_workload()
    return {
        "benchmark": benchmark,
        "scale": float(scale),
        "key": job.key(),
        "instructions": int(result.instructions),
        "cycles": int(result.cycles),
        "stall_cycles": int(result.stall_cycles),
        "l1i_intervals": len(result.l1i_intervals),
        "l1d_intervals": len(result.l1d_intervals),
        "levels": levels,
    }


def execution_payload(outcome: JobOutcome, coalesced: bool = False) -> Dict:
    """The execution-dependent half of a job answer (never compared)."""
    return {
        "source": outcome.source,
        "attempts": int(outcome.attempts),
        "wall_seconds": float(outcome.wall_seconds),
        "coalesced": bool(coalesced),
    }


# ----------------------------------------------------------------------
# Shared status serializers (daemon /v1/status and CLI --json)
# ----------------------------------------------------------------------
def cache_info_payload(store) -> Dict:
    """Machine-readable ``cache info``: store state + sharing totals.

    The same document ``repro-leakage cache info --json`` prints and the
    daemon embeds under ``/v1/status``'s ``"cache"`` key.
    """
    info = store.info()
    # One nested object for trace artifacts, shared verbatim by both
    # surfaces (the CLI document and /v1/status's "cache" key); the flat
    # trace_files/trace_bytes keys are kept for older consumers and must
    # stay equal to the nested ones (the parity test audits this).
    traces = {
        "files": int(info.get("trace_files", 0)),
        "bytes": int(info.get("trace_bytes", 0)),
    }
    return {
        "directory": info["directory"],
        "entries": int(info["entries"]),
        "bytes": int(info["bytes"]),
        "max_bytes": info["max_bytes"],
        "quarantined": int(info.get("quarantined", 0)),
        "trace_files": traces["files"],
        "trace_bytes": traces["bytes"],
        "traces": traces,
        "sharing": collect_sharing_stats(store.directory),
    }


def sweep_status_payload(status: Dict) -> Dict:
    """Machine-readable ``sweep status`` (stable key order).

    Takes the coordinator's status dict verbatim; defined here so the
    CLI's ``--json`` flag and service tooling agree on the document.
    """
    return {
        "sweep": status["sweep"],
        "directory": status["directory"],
        "spec_fingerprint": status["spec_fingerprint"],
        "grid_jobs": int(status["grid_jobs"]),
        "completed": int(status["completed"]),
        "missing": list(status["missing"]),
        "shards": [dict(shard) for shard in status["shards"]],
    }


# ----------------------------------------------------------------------
# metricz
# ----------------------------------------------------------------------
def render_metricz(counters: Dict[str, float]) -> str:
    """Flat ``name value`` lines, sorted — the ``/v1/metricz`` body."""
    lines = []
    for name in sorted(counters):
        value = counters[name]
        if isinstance(value, float):
            lines.append(f"{name} {value:g}")
        else:
            lines.append(f"{name} {int(value)}")
    return "\n".join(lines) + "\n"


def flatten_counters(payload: Dict, prefix: str = "") -> Dict[str, float]:
    """Flatten nested numeric counters into dotted metric names."""
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            flat[name] = int(value)
        elif isinstance(value, (int, float)):
            flat[name] = value
        elif isinstance(value, dict):
            flat.update(flatten_counters(value, prefix=f"{name}."))
    return flat


def parse_metricz(text: str) -> Dict[str, float]:
    """Invert :func:`render_metricz` (used by the client and tests)."""
    counters: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        name, _, raw = line.rpartition(" ")
        try:
            counters[name] = float(raw)
        except ValueError:
            continue
    return counters


def error_payload(message: str, retry_after: Optional[float] = None) -> Dict:
    """The JSON body of every non-2xx response."""
    payload: Dict = {"error": message}
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    return payload
