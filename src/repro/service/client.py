"""Blocking client for the leakage-analysis service.

A thin, dependency-free wrapper over :mod:`http.client` that speaks the
:mod:`repro.service.protocol` wire format — the library behind
``repro-leakage submit`` and the service tests/benchmarks::

    from repro.service.client import ServiceClient

    with ServiceClient("http://127.0.0.1:8330", client="bench") as svc:
        response = svc.submit_jobs([
            {"benchmark": "gzip", "scale": 0.05},
        ])
        item = response["items"][0]
        if item["status"] != "cached":
            item = svc.wait(item["ticket"])["result"]

Every method opens one connection per request (the daemon closes after
each response), so a single client object is safe to share across
threads.  Unix sockets work through the same URL parameter:
``ServiceClient("unix:/tmp/repro.sock")``.

Errors map onto two exceptions: :class:`ServiceRejected` for 429
(carrying the parsed ``retry_after`` hint) and :class:`ServiceError`
for everything else non-2xx (``status == 0`` meaning the endpoint was
unreachable at the transport level).

For fleets, the client takes a *list* of peer URLs and
:meth:`ServiceClient.submit_with_retry` layers the serving discipline's
client half on top: deterministic capped exponential backoff seeded by
the 429 ``Retry-After`` hint, failover to the next peer on transport
errors, and safe resubmission — job submissions are idempotent by
construction, because jobs are content-addressed and daemons coalesce
and cache by that address, so submitting the same batch twice can never
compute (or bill) twice.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union
from urllib.parse import urlsplit

from ..errors import ReproError
from .protocol import CLIENT_HEADER, parse_metricz

#: submit_with_retry defaults: first-retry backoff and the cap, seconds.
DEFAULT_BACKOFF_BASE = 0.25
DEFAULT_BACKOFF_CAP = 30.0


class ServiceError(ReproError):
    """A non-2xx response from the service (other than 429)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceRejected(ServiceError):
    """The service refused admission (429); retry after the hint."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, status=429)
        self.retry_after = retry_after


class _UnixConnection(http.client.HTTPConnection):
    """``http.client`` over an AF_UNIX socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._socket_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class _Endpoint:
    """One parsed service address (TCP host:port or a Unix socket)."""

    __slots__ = ("url", "socket_path", "host", "port")

    def __init__(self, url: str) -> None:
        self.url = url
        if url.startswith("unix:"):
            self.socket_path: Optional[str] = url[len("unix:"):]
            self.host, self.port = "localhost", None
        else:
            parts = urlsplit(url if "//" in url else f"http://{url}")
            if parts.scheme not in ("http", ""):
                raise ServiceError(
                    f"unsupported service URL scheme {parts.scheme!r} "
                    "(http or unix only)"
                )
            self.socket_path = None
            self.host = parts.hostname or "127.0.0.1"
            self.port = parts.port or 80


class ServiceClient:
    """Blocking HTTP client for one service endpoint — or a fleet.

    ``url`` may be a single URL or a list of peer URLs.  Plain requests
    go to the *active* endpoint (initially the first); failover happens
    explicitly in :meth:`submit_with_retry` or via :meth:`failover`, and
    sticks — once a peer answers, subsequent requests stay with it.
    """

    def __init__(
        self,
        url: Union[str, Sequence[str]],
        client: Optional[str] = None,
        timeout: float = 300.0,
    ) -> None:
        urls = [url] if isinstance(url, str) else list(url)
        if not urls:
            raise ServiceError("at least one service URL is required")
        self._endpoints = [_Endpoint(u) for u in urls]
        self._active = 0
        self.client = client
        self.timeout = timeout
        #: Lifetime counters (exposed for tests and CLI diagnostics).
        self.retries = 0
        self.failovers = 0

    @property
    def url(self) -> str:
        """The active endpoint's URL."""
        return self._endpoints[self._active].url

    @property
    def urls(self) -> List[str]:
        return [endpoint.url for endpoint in self._endpoints]

    def failover(self) -> str:
        """Advance to the next peer endpoint; returns its URL."""
        self._active = (self._active + 1) % len(self._endpoints)
        self.failovers += 1
        return self.url

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        endpoint = self._endpoints[self._active]
        if endpoint.socket_path is not None:
            return _UnixConnection(
                endpoint.socket_path, timeout=self.timeout
            )
        return http.client.HTTPConnection(
            endpoint.host, endpoint.port, timeout=self.timeout
        )

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.client:
            headers[CLIENT_HEADER] = self.client
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Dict:
        payload = (
            None
            if body is None
            else json.dumps(body, sort_keys=True).encode("utf-8")
        )
        connection = self._connect()
        try:
            connection.request(
                method, path, body=payload, headers=self._headers()
            )
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"service at {self.url!r} unreachable: {error}"
            ) from None
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            document = {"error": raw.decode("utf-8", errors="replace")}
        if status == 429:
            raise ServiceRejected(
                document.get("error", "admission refused"),
                retry_after=float(document.get("retry_after", 1.0)),
            )
        if status >= 300:
            detail = document.get("error") or repr(raw[:200])
            raise ServiceError(
                f"{method} {path} -> {status}: {detail}", status=status
            )
        return document

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit_jobs(self, jobs: List[Dict]) -> Dict:
        """``POST /v1/jobs``: per-item cached results or tickets."""
        return self._request("POST", "/v1/jobs", {"jobs": list(jobs)})

    @staticmethod
    def backoff_delay(
        attempt: int,
        hint: Optional[float] = None,
        base: float = DEFAULT_BACKOFF_BASE,
        cap: float = DEFAULT_BACKOFF_CAP,
    ) -> float:
        """The deterministic capped-exponential delay before a retry.

        ``attempt`` counts the request that just failed (1-based).  The
        schedule doubles from ``base`` — ``base, 2*base, 4*base, ...`` —
        but never waits less than the server's ``Retry-After`` hint
        (which already prices in queue depth x compute time) and never
        more than ``cap``.  No jitter on purpose: retry traces must
        replay exactly in tests and incident reconstructions, and the
        per-client stride scheduler already de-synchronizes peers.
        """
        exponential = base * (2.0 ** max(attempt - 1, 0))
        return min(cap, max(float(hint or 0.0), exponential))

    def submit_with_retry(
        self,
        jobs: List[Dict],
        max_attempts: int = 8,
        base: float = DEFAULT_BACKOFF_BASE,
        cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Dict:
        """Submit a job batch with backoff on 429 and peer failover.

        * **429** — sleep :meth:`backoff_delay` (seeded by the server's
          ``Retry-After`` hint) and resubmit.  Resubmission is safe:
          jobs are content-addressed, so a batch that was half-served
          before a refusal coalesces or cache-hits on the retry instead
          of recomputing.
        * **Unreachable** (``status == 0``) — fail over to the next peer
          URL and retry immediately; a fleet serving one shared cache
          directory gives byte-identical answers whichever peer ends up
          computing.
        * Any other error is not retried — it is the request's fault,
          not the fleet's.

        Raises the last :class:`ServiceRejected`/:class:`ServiceError`
        once ``max_attempts`` submissions have failed.
        """
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be at least 1, got {max_attempts!r}"
            )
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.submit_jobs(jobs)
            except ServiceRejected as refusal:
                if attempt >= max_attempts:
                    raise
                self.retries += 1
                sleep(
                    self.backoff_delay(
                        attempt, hint=refusal.retry_after,
                        base=base, cap=cap,
                    )
                )
            except ServiceError as error:
                if error.status != 0 or attempt >= max_attempts:
                    raise
                self.retries += 1
                if len(self._endpoints) > 1:
                    self.failover()
                else:
                    sleep(self.backoff_delay(attempt, base=base, cap=cap))

    def gc(self, ttl: Optional[float] = None) -> Dict:
        """``POST /v1/gc``: prune old tickets, leases and markers."""
        body = {} if ttl is None else {"ttl": float(ttl)}
        return self._request("POST", "/v1/gc", body if body else None)

    def submit_sweep(self, spec: Dict) -> Dict:
        """``POST /v1/sweeps``: one sweep ticket for a SweepSpec dict."""
        return self._request("POST", "/v1/sweeps", dict(spec))

    def ticket(self, ticket_id: str) -> Dict:
        """``GET /v1/tickets/<id>``: the full ticket document."""
        return self._request("GET", f"/v1/tickets/{ticket_id}")

    def wait(
        self,
        ticket_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> Dict:
        """Poll a ticket until it is terminal; returns its document.

        Raises :class:`ServiceError` if the ticket ends ``failed`` or the
        timeout elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.ticket(ticket_id)
            if document["state"] == "done":
                return document
            if document["state"] == "failed":
                raise ServiceError(
                    f"ticket {ticket_id} failed: {document.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"ticket {ticket_id} still {document['state']!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_interval)

    def events(self, ticket_id: str) -> Iterator[Dict]:
        """``GET /v1/tickets/<id>/events``: yield SSE events until done.

        Yields each ``data:`` payload as a dict; the terminating
        ``event: end`` frame is yielded last with ``{"event": "end",
        "state": ...}``.
        """
        connection = self._connect()
        try:
            connection.request(
                "GET",
                f"/v1/tickets/{ticket_id}/events",
                headers=self._headers(),
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    detail = json.loads(raw.decode("utf-8")).get("error")
                except ValueError:
                    detail = raw[:200]
                raise ServiceError(
                    f"event stream for {ticket_id} -> {response.status}: "
                    f"{detail}",
                    status=response.status,
                )
            event_name = None
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                    continue
                if not line.startswith("data:"):
                    continue
                try:
                    payload = json.loads(line[len("data:"):].strip())
                except ValueError:
                    continue
                if event_name == "end":
                    payload["event"] = "end"
                    yield payload
                    return
                yield payload
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"event stream for {ticket_id} broke: {error}"
            ) from None
        finally:
            connection.close()

    def status(self) -> Dict:
        """``GET /v1/status``."""
        return self._request("GET", "/v1/status")

    def metricz(self) -> Dict[str, float]:
        """``GET /v1/metricz`` parsed into a counters dict."""
        connection = self._connect()
        try:
            connection.request(
                "GET", "/v1/metricz", headers=self._headers()
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"GET /v1/metricz -> {response.status}",
                    status=response.status,
                )
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"service at {self.url!r} unreachable: {error}"
            ) from None
        finally:
            connection.close()
        return parse_metricz(raw.decode("utf-8"))

    def metricz_text(self) -> str:
        """``GET /v1/metricz`` raw body (the CLI passthrough)."""
        connection = self._connect()
        try:
            connection.request(
                "GET", "/v1/metricz", headers=self._headers()
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"GET /v1/metricz -> {response.status}",
                    status=response.status,
                )
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"service at {self.url!r} unreachable: {error}"
            ) from None
        finally:
            connection.close()
        return raw.decode("utf-8")

    def drain(self) -> Dict:
        """``POST /v1/drain``: stop admissions, keep serving reads."""
        return self._request("POST", "/v1/drain")

    def shutdown(self) -> Dict:
        """``POST /v1/shutdown``: graceful drain and exit."""
        return self._request("POST", "/v1/shutdown")

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        return None
