"""Blocking client for the leakage-analysis service.

A thin, dependency-free wrapper over :mod:`http.client` that speaks the
:mod:`repro.service.protocol` wire format — the library behind
``repro-leakage submit`` and the service tests/benchmarks::

    from repro.service.client import ServiceClient

    with ServiceClient("http://127.0.0.1:8330", client="bench") as svc:
        response = svc.submit_jobs([
            {"benchmark": "gzip", "scale": 0.05},
        ])
        item = response["items"][0]
        if item["status"] != "cached":
            item = svc.wait(item["ticket"])["result"]

Every method opens one connection per request (the daemon closes after
each response), so a single client object is safe to share across
threads.  Unix sockets work through the same URL parameter:
``ServiceClient("unix:/tmp/repro.sock")``.

Errors map onto two exceptions: :class:`ServiceRejected` for 429
(carrying the parsed ``retry_after`` hint) and :class:`ServiceError`
for everything else non-2xx.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Iterator, List, Optional
from urllib.parse import urlsplit

from ..errors import ReproError
from .protocol import CLIENT_HEADER, parse_metricz


class ServiceError(ReproError):
    """A non-2xx response from the service (other than 429)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceRejected(ServiceError):
    """The service refused admission (429); retry after the hint."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, status=429)
        self.retry_after = retry_after


class _UnixConnection(http.client.HTTPConnection):
    """``http.client`` over an AF_UNIX socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._socket_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServiceClient:
    """Blocking HTTP client for one service endpoint."""

    def __init__(
        self,
        url: str,
        client: Optional[str] = None,
        timeout: float = 300.0,
    ) -> None:
        self.url = url
        self.client = client
        self.timeout = timeout
        if url.startswith("unix:"):
            self._socket_path: Optional[str] = url[len("unix:"):]
            self._host, self._port = "localhost", None
        else:
            parts = urlsplit(url if "//" in url else f"http://{url}")
            if parts.scheme not in ("http", ""):
                raise ServiceError(
                    f"unsupported service URL scheme {parts.scheme!r} "
                    "(http or unix only)"
                )
            self._socket_path = None
            self._host = parts.hostname or "127.0.0.1"
            self._port = parts.port or 80

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._socket_path is not None:
            return _UnixConnection(self._socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.client:
            headers[CLIENT_HEADER] = self.client
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Dict:
        payload = (
            None
            if body is None
            else json.dumps(body, sort_keys=True).encode("utf-8")
        )
        connection = self._connect()
        try:
            connection.request(
                method, path, body=payload, headers=self._headers()
            )
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"service at {self.url!r} unreachable: {error}"
            ) from None
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            document = {"error": raw.decode("utf-8", errors="replace")}
        if status == 429:
            raise ServiceRejected(
                document.get("error", "admission refused"),
                retry_after=float(document.get("retry_after", 1.0)),
            )
        if status >= 300:
            detail = document.get("error") or repr(raw[:200])
            raise ServiceError(
                f"{method} {path} -> {status}: {detail}", status=status
            )
        return document

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit_jobs(self, jobs: List[Dict]) -> Dict:
        """``POST /v1/jobs``: per-item cached results or tickets."""
        return self._request("POST", "/v1/jobs", {"jobs": list(jobs)})

    def submit_sweep(self, spec: Dict) -> Dict:
        """``POST /v1/sweeps``: one sweep ticket for a SweepSpec dict."""
        return self._request("POST", "/v1/sweeps", dict(spec))

    def ticket(self, ticket_id: str) -> Dict:
        """``GET /v1/tickets/<id>``: the full ticket document."""
        return self._request("GET", f"/v1/tickets/{ticket_id}")

    def wait(
        self,
        ticket_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> Dict:
        """Poll a ticket until it is terminal; returns its document.

        Raises :class:`ServiceError` if the ticket ends ``failed`` or the
        timeout elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.ticket(ticket_id)
            if document["state"] == "done":
                return document
            if document["state"] == "failed":
                raise ServiceError(
                    f"ticket {ticket_id} failed: {document.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"ticket {ticket_id} still {document['state']!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_interval)

    def events(self, ticket_id: str) -> Iterator[Dict]:
        """``GET /v1/tickets/<id>/events``: yield SSE events until done.

        Yields each ``data:`` payload as a dict; the terminating
        ``event: end`` frame is yielded last with ``{"event": "end",
        "state": ...}``.
        """
        connection = self._connect()
        try:
            connection.request(
                "GET",
                f"/v1/tickets/{ticket_id}/events",
                headers=self._headers(),
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    detail = json.loads(raw.decode("utf-8")).get("error")
                except ValueError:
                    detail = raw[:200]
                raise ServiceError(
                    f"event stream for {ticket_id} -> {response.status}: "
                    f"{detail}",
                    status=response.status,
                )
            event_name = None
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                    continue
                if not line.startswith("data:"):
                    continue
                try:
                    payload = json.loads(line[len("data:"):].strip())
                except ValueError:
                    continue
                if event_name == "end":
                    payload["event"] = "end"
                    yield payload
                    return
                yield payload
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"event stream for {ticket_id} broke: {error}"
            ) from None
        finally:
            connection.close()

    def status(self) -> Dict:
        """``GET /v1/status``."""
        return self._request("GET", "/v1/status")

    def metricz(self) -> Dict[str, float]:
        """``GET /v1/metricz`` parsed into a counters dict."""
        connection = self._connect()
        try:
            connection.request(
                "GET", "/v1/metricz", headers=self._headers()
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"GET /v1/metricz -> {response.status}",
                    status=response.status,
                )
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"service at {self.url!r} unreachable: {error}"
            ) from None
        finally:
            connection.close()
        return parse_metricz(raw.decode("utf-8"))

    def metricz_text(self) -> str:
        """``GET /v1/metricz`` raw body (the CLI passthrough)."""
        connection = self._connect()
        try:
            connection.request(
                "GET", "/v1/metricz", headers=self._headers()
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"GET /v1/metricz -> {response.status}",
                    status=response.status,
                )
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"service at {self.url!r} unreachable: {error}"
            ) from None
        finally:
            connection.close()
        return raw.decode("utf-8")

    def drain(self) -> Dict:
        """``POST /v1/drain``: stop admissions, keep serving reads."""
        return self._request("POST", "/v1/drain")

    def shutdown(self) -> Dict:
        """``POST /v1/shutdown``: graceful drain and exit."""
        return self._request("POST", "/v1/shutdown")

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        return None
