"""Next-line prefetching.

The simplest and (for instruction streams) most effective hardware
prefetcher: an access to block ``X`` optimistically fetches ``X + 1``,
exploiting the spatial locality of sequential code and unit-stride data.
The paper uses next-line prefetching for the instruction cache and as one
of two D-cache schemes (§5.1).

:class:`NextLinePrefetcher` is the *functional* prefetcher — attachable
to a cache to measure coverage/accuracy; the retrospective prefetchability
rule of Figure 9 ("was block X-1 accessed inside X's interval?") lives in
:mod:`repro.prefetch.analysis`.
"""

from __future__ import annotations

from ..cache.cache import SetAssociativeCache
from ..errors import ConfigurationError


class NextLinePrefetcher:
    """Issues a prefetch of ``block + degree`` blocks on every trigger.

    Parameters
    ----------
    cache:
        The cache into which prefetched blocks are installed.
    degree:
        How many sequential blocks to prefetch per trigger (1 = classic
        next-line).
    on_miss_only:
        When True, only misses trigger prefetches (tagged prefetching);
        when False, every access does.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        degree: int = 1,
        on_miss_only: bool = True,
    ) -> None:
        if degree <= 0:
            raise ConfigurationError(f"prefetch degree must be positive, got {degree!r}")
        self.cache = cache
        self.degree = degree
        self.on_miss_only = on_miss_only
        self.issued = 0
        self.useless = 0

    def access(self, block: int, time: int) -> bool:
        """Access the cache through the prefetcher; returns hit/miss.

        Prefetched blocks are installed immediately (an idealized,
        latency-free prefetch — consistent with the paper's use of
        prefetching as an oracle approximation, not a timing study).
        """
        hit = self.cache.access_block(block, time)
        if not self.on_miss_only or not hit:
            for step in range(1, self.degree + 1):
                candidate = block + step
                if self.cache.probe(candidate):
                    self.useless += 1
                    continue
                self.cache.access_block(candidate, time)
                self.issued += 1
        return hit

    @property
    def issue_count(self) -> int:
        """Prefetches actually installed."""
        return self.issued
