"""Prefetching: approximating the oracle's perfect future knowledge (§5).

Next-line and per-static-load stride prefetchers, the interval
prefetchability analysis behind Figure 9, and the Prefetch-A /
Prefetch-B leakage schemes of Table 3.
"""

from .analysis import (
    AnnotatedIntervals,
    AnnotatedSimulationResult,
    AnnotatingSimulator,
    annotate_workload_trace,
)
from .nextline import NextLinePrefetcher
from .schemes import (
    PrefetchGuidedPolicy,
    PrefetchSchemeReport,
    PrefetchTradeoff,
    PrefetchabilityRow,
    TradeoffPoint,
    evaluate_prefetch_scheme,
    prefetch_tradeoff_curve,
    prefetchability_breakdown,
    prefetchability_summary,
)
from .stride import CONFIRMATIONS_REQUIRED, StrideEntry, StridePredictor

__all__ = [
    "AnnotatedIntervals",
    "AnnotatedSimulationResult",
    "AnnotatingSimulator",
    "CONFIRMATIONS_REQUIRED",
    "NextLinePrefetcher",
    "PrefetchGuidedPolicy",
    "PrefetchSchemeReport",
    "PrefetchTradeoff",
    "PrefetchabilityRow",
    "StrideEntry",
    "StridePredictor",
    "TradeoffPoint",
    "annotate_workload_trace",
    "evaluate_prefetch_scheme",
    "prefetch_tradeoff_curve",
    "prefetchability_breakdown",
    "prefetchability_summary",
]
