"""Prefetch-guided leakage policies (the paper's §5.2, Table 3).

With prefetchability in hand, the paper builds two implementable
approximations of the oracle:

* **Prefetch-A** (performance-first): prefetchable intervals get the
  optimal low-power mode for their length (drowsy in ``(a, b]``, sleep
  above ``b``) — the prefetch hides the exit penalty, so performance is
  untouched.  Non-prefetchable intervals stay fully active.
* **Prefetch-B** (power-first): prefetchable intervals as in A;
  non-prefetchable intervals are put into drowsy mode, accepting the
  small wake-up stall (``d3`` cycles) the drowsy literature shows to be
  tolerable.

Both are expressed as :class:`~repro.core.policy.Policy` subclasses bound
to a fixed interval population (the mask must align), so the standard
Figure 5 evaluation machinery prices them, and the wake-up stalls B
accepts are reported separately as a performance-cost estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.policy import DROWSY, SLEEP, Policy
from ..core.savings import SavingsReport, evaluate_policy
from ..errors import PolicyError
from .analysis import AnnotatedIntervals


class PrefetchGuidedPolicy(Policy):
    """Mode assignment driven by a per-interval prefetchability mask.

    Parameters
    ----------
    model:
        The bound energy model (supplies the inflection points).
    prefetchable:
        Boolean mask aligned with the interval population the policy will
        be evaluated on.
    power_first:
        False = Prefetch-A (non-prefetchable stays active);
        True = Prefetch-B (non-prefetchable goes drowsy when feasible).
    """

    def __init__(
        self,
        model: ModeEnergyModel,
        prefetchable: np.ndarray,
        power_first: bool,
        name: str | None = None,
    ) -> None:
        super().__init__(model, name)
        self.prefetchable = np.asarray(prefetchable, dtype=bool)
        self.power_first = bool(power_first)
        if name is None:
            self.name = "Prefetch-B" if power_first else "Prefetch-A"

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(lengths)
        if lengths.shape != self.prefetchable.shape:
            raise PolicyError(
                f"policy {self.name!r} was built for "
                f"{self.prefetchable.shape[0]} intervals but asked about "
                f"{lengths.shape[0]}"
            )
        codes = np.zeros(lengths.shape, dtype=np.uint8)
        mask = self.prefetchable
        drowsy_ok = lengths > self.points.active_drowsy
        codes[mask & drowsy_ok] = DROWSY
        codes[mask & (lengths > self.points.drowsy_sleep)] = SLEEP
        if self.power_first:
            codes[~mask & drowsy_ok] = DROWSY
        return codes

    def wakeup_stall_cycles(self, lengths: np.ndarray) -> int:
        """Estimated stall cycles from unhidden drowsy wake-ups.

        Prefetchable intervals exit their mode behind a prefetch (no
        stall); non-prefetchable drowsy intervals each pay the ``d3``
        ramp on their closing access.  Prefetch-A never stalls.
        """
        if not self.power_first:
            return 0
        lengths = np.asarray(lengths)
        unhidden = (~self.prefetchable) & (lengths > self.points.active_drowsy)
        return int(unhidden.sum()) * self.model.durations.d3


@dataclass(frozen=True)
class PrefetchSchemeReport:
    """Savings plus the performance-cost estimate of one scheme."""

    savings: SavingsReport
    wakeup_stall_cycles: int
    total_cycles: int

    @property
    def stall_overhead(self) -> float:
        """Wake-up stalls as a fraction of all interval cycles."""
        return (
            self.wakeup_stall_cycles / self.total_cycles if self.total_cycles else 0.0
        )


def evaluate_prefetch_scheme(
    annotated: AnnotatedIntervals,
    model: ModeEnergyModel,
    power_first: bool,
    dead_aware: bool = False,
) -> PrefetchSchemeReport:
    """Price Prefetch-A (``power_first=False``) or Prefetch-B over a run."""
    policy = PrefetchGuidedPolicy(model, annotated.prefetchable, power_first)
    savings = evaluate_policy(policy, annotated.intervals, dead_aware=dead_aware)
    return PrefetchSchemeReport(
        savings=savings,
        wakeup_stall_cycles=policy.wakeup_stall_cycles(annotated.intervals.lengths),
        total_cycles=annotated.intervals.total_cycles,
    )


@dataclass(frozen=True)
class PrefetchabilityRow:
    """One Figure 9 range: interval counts by prefetch class."""

    label: str
    total: int
    nextline: int
    stride: int

    @property
    def non_prefetchable(self) -> int:
        """Intervals neither scheme can cover."""
        return self.total - self.nextline - self.stride


def prefetchability_breakdown(
    annotated: AnnotatedIntervals,
    model: ModeEnergyModel,
) -> List[PrefetchabilityRow]:
    """The Figure 9 histogram: ranges (0, a], (a, b], (b, inf).

    Counts are interval counts (the paper's prefetchability is "the
    number of prefetchable intervals over the total number of
    intervals").
    """
    lengths = annotated.intervals.lengths
    a = model.durations.drowsy_overhead
    from ..core.inflection import solve_sleep_drowsy_point

    b = solve_sleep_drowsy_point(model)
    ranges = [
        (f"(0, {a}]", lengths <= a),
        (f"({a}, {b:.0f}]", (lengths > a) & (lengths <= b)),
        (f"({b:.0f}, +inf)", lengths > b),
    ]
    rows = []
    for label, mask in ranges:
        rows.append(
            PrefetchabilityRow(
                label=label,
                total=int(mask.sum()),
                nextline=int((annotated.nextline & mask).sum()),
                stride=int((annotated.stride & mask).sum()),
            )
        )
    return rows


def prefetchability_summary(
    annotated: AnnotatedIntervals, model: ModeEnergyModel
) -> Dict[str, float]:
    """Total P-NL / P-stride fractions (the Figure 9 headline numbers)."""
    total = len(annotated.intervals)
    if not total:
        return {"nextline": 0.0, "stride": 0.0, "total": 0.0}
    nl = float(annotated.nextline.sum()) / total
    st = float(annotated.stride.sum()) / total
    return {"nextline": nl, "stride": st, "total": nl + st}


class PrefetchTradeoff(PrefetchGuidedPolicy):
    """The A-to-B continuum the paper leaves as future work (§5.2 end).

    Prefetch-A and Prefetch-B differ only in what happens to
    non-prefetchable intervals: A keeps them active (no stalls), B puts
    them all into drowsy mode (maximum savings, one ``d3`` stall each).
    The best design point "is somewhere in between": this policy drowses
    a non-prefetchable interval only when it is longer than
    ``np_threshold`` cycles, so short busy intervals — the ones whose
    wake-up stalls recur most often — stay active.

    ``np_threshold = a`` reproduces Prefetch-B; ``np_threshold = inf``
    reproduces Prefetch-A.
    """

    def __init__(
        self,
        model: ModeEnergyModel,
        prefetchable: np.ndarray,
        np_threshold: float,
        name: str | None = None,
    ) -> None:
        super().__init__(model, prefetchable, power_first=True, name=name)
        if np_threshold < self.points.active_drowsy:
            raise PolicyError(
                f"NP drowsy threshold {np_threshold!r} is below the "
                f"active-drowsy point {self.points.active_drowsy}"
            )
        self.np_threshold = float(np_threshold)
        if name is None:
            self.name = f"Prefetch-T({np_threshold:g})"

    def modes(self, lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(lengths)
        if lengths.shape != self.prefetchable.shape:
            raise PolicyError(
                f"policy {self.name!r} was built for "
                f"{self.prefetchable.shape[0]} intervals but asked about "
                f"{lengths.shape[0]}"
            )
        codes = np.zeros(lengths.shape, dtype=np.uint8)
        mask = self.prefetchable
        codes[mask & (lengths > self.points.active_drowsy)] = DROWSY
        codes[mask & (lengths > self.points.drowsy_sleep)] = SLEEP
        codes[~mask & (lengths > self.np_threshold)] = DROWSY
        return codes

    def wakeup_stall_cycles(self, lengths: np.ndarray) -> int:
        lengths = np.asarray(lengths)
        unhidden = (~self.prefetchable) & (lengths > self.np_threshold)
        return int(unhidden.sum()) * self.model.durations.d3


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Prefetch-A..B power/performance frontier."""

    np_threshold: float
    saving_fraction: float
    stall_overhead: float


def prefetch_tradeoff_curve(
    annotated: AnnotatedIntervals,
    model: ModeEnergyModel,
    thresholds: "List[float]",
) -> "List[TradeoffPoint]":
    """Sweep the NP drowsy threshold from B-like to A-like.

    Returns one :class:`TradeoffPoint` per threshold: as the threshold
    rises, wake-up stalls fall monotonically and so do the savings — the
    power/performance frontier the paper's §5.2 sketches.
    """
    points = []
    lengths = annotated.intervals.lengths
    total = annotated.intervals.total_cycles
    for threshold in thresholds:
        policy = PrefetchTradeoff(model, annotated.prefetchable, threshold)
        report = evaluate_policy(policy, annotated.intervals)
        stalls = policy.wakeup_stall_cycles(lengths)
        points.append(
            TradeoffPoint(
                np_threshold=float(threshold),
                saving_fraction=report.saving_fraction,
                stall_overhead=stalls / total if total else 0.0,
            )
        )
    return points
