"""Prefetchability analysis (the paper's §5.2 and Figure 9).

An interval is *prefetchable* when an implementable prefetcher could have
re-fetched (or woken) the line just in time for the access that closes
the interval, hiding the sleep/drowsy exit penalty:

* **next-line** (I- and D-cache): one or more accesses to the *previous*
  cache block occur inside the interval — the access to ``X - 1`` is the
  prefetch trigger for ``X``;
* **stride-based** (D-cache): the closing access was predicted by a
  per-static-load stride table whose stride had been confirmed at least
  twice (Farkas et al. [3]).

Intervals no longer than the active-drowsy point are always kept active,
need no prefetch, and are counted non-prefetchable, as in the paper.

:class:`AnnotatingSimulator` mirrors :class:`~repro.cpu.simulator.
TraceSimulator` exactly (same hierarchy, same clock, same fetch line
buffer) while additionally classifying every interval as it closes; the
test suite pins the two simulators to identical timing and statistics.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..cache.hierarchy import HierarchyConfig, MemoryHierarchy
from ..cache.kernel import (
    SimulationProfile,
    kernel_supported,
    resolve_kernel_mode,
    run_batched,
    validated_chunks,
)
from ..core.intervals import IntervalSet
from ..cpu.pipeline import IssueClock, PipelineConfig
from ..cpu.simulator import SimulationResult
from ..cpu.trace import NO_ACCESS, STORE, TraceChunk
from ..errors import SimulationError
from .stride import StridePredictor

#: Intervals at or below this length are kept active and never counted
#: prefetchable (the active-drowsy point of the paper's parameters).
DEFAULT_ACTIVE_FLOOR = 6


@dataclass(frozen=True)
class AnnotatedIntervals:
    """An interval population with per-interval prefetchability flags.

    ``nextline`` and ``stride`` are aligned with ``intervals``; ``stride``
    only marks intervals *not already* caught by next-line, so the two
    are disjoint (Figure 9 reports them as separate shaded areas).
    """

    intervals: IntervalSet
    nextline: np.ndarray
    stride: np.ndarray
    tail: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.intervals)
        for flags in (self.nextline, self.stride, self.tail):
            if flags.shape != (n,):
                raise SimulationError(
                    "annotation flags must align with the interval population"
                )
        if bool(np.any(self.nextline & self.stride)):
            raise SimulationError("next-line and stride flags must be disjoint")

    @property
    def prefetchable(self) -> np.ndarray:
        """Mask of intervals coverable without a performance penalty.

        Next-line or stride covered, plus end-of-run *tail* intervals: a
        tail has no closing access to delay, so any policy can gate it at
        zero performance risk — charging Prefetch-A full active power for
        it would only measure the finite length of the simulation.
        """
        return self.nextline | self.stride | self.tail

    @property
    def prefetchability(self) -> float:
        """Prefetchable intervals over all intervals (the Figure 9 ratio)."""
        n = len(self.intervals)
        return float(self.prefetchable.sum()) / n if n else 0.0

    def as_normal(self) -> "AnnotatedIntervals":
        """Re-label every interval NORMAL (the paper's default view)."""
        return AnnotatedIntervals(
            self.intervals.as_normal(), self.nextline, self.stride, self.tail
        )


class _CacheAnnotator:
    """Streams one cache's accesses into annotated intervals."""

    def __init__(self, n_frames: int, active_floor: int, start_time: int = 0) -> None:
        self.n_frames = n_frames
        self.active_floor = active_floor
        self.start_time = start_time
        self._frame_last = [-1] * n_frames
        self._block_last: dict = {}
        self._nextline: List[bool] = []
        self._stride: List[bool] = []

    def observe(self, block: int, frame: int, time: int, stride_hit: bool) -> None:
        """Record the interval (if any) closed by this access.

        Must mirror :class:`~repro.cache.generations.GenerationTracker`'s
        append conditions exactly: one flag pair per recorded interval.
        """
        last = self._frame_last[frame]
        gap = time - (last if last >= 0 else self.start_time)
        if gap > 0:
            if gap <= self.active_floor:
                self._nextline.append(False)
                self._stride.append(False)
            else:
                window_start = last if last >= 0 else self.start_time
                neighbor = self._block_last.get(block - 1, -1)
                nextline = neighbor >= window_start
                self._nextline.append(nextline)
                self._stride.append(stride_hit and not nextline)
        self._frame_last[frame] = time
        self._block_last[block] = time

    def finish(self, intervals: IntervalSet) -> AnnotatedIntervals:
        """Flag the end-of-run tail intervals and package up."""
        recorded = len(self._nextline)
        missing = len(intervals) - recorded
        if missing < 0:
            raise SimulationError(
                "annotator recorded more intervals than the tracker"
            )
        self._nextline.extend([False] * missing)
        self._stride.extend([False] * missing)
        tail = np.zeros(len(intervals), dtype=bool)
        tail[recorded:] = True
        return AnnotatedIntervals(
            intervals,
            np.array(self._nextline, dtype=bool),
            np.array(self._stride, dtype=bool),
            tail,
        )


@dataclass(frozen=True)
class AnnotatedSimulationResult:
    """A :class:`SimulationResult` plus prefetchability annotations."""

    result: SimulationResult
    l1i: AnnotatedIntervals
    l1d: AnnotatedIntervals

    def annotated_for(self, which: str) -> AnnotatedIntervals:
        """Annotated intervals by cache name (``'l1i'`` or ``'l1d'``)."""
        key = which.lower()
        if key in ("l1i", "icache", "i"):
            return self.l1i
        if key in ("l1d", "dcache", "d"):
            return self.l1d
        raise SimulationError(f"unknown cache selector {which!r}")


class AnnotatingSimulator:
    """Trace simulation with per-interval prefetchability classification.

    Timing-identical to :class:`~repro.cpu.simulator.TraceSimulator`; use
    it whenever an experiment needs Prefetch-A/B or Figure 9 numbers.
    """

    def __init__(
        self,
        hierarchy: Optional[MemoryHierarchy] = None,
        pipeline: Optional[PipelineConfig] = None,
        stride_table_capacity: Optional[int] = 4096,
        active_floor: int = DEFAULT_ACTIVE_FLOOR,
    ) -> None:
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else MemoryHierarchy(HierarchyConfig.paper())
        )
        self.clock = IssueClock(pipeline)
        self.stride = StridePredictor(stride_table_capacity)
        self.active_floor = active_floor
        self._ran = False

    def run(self, trace: Iterable[TraceChunk] | TraceChunk) -> AnnotatedSimulationResult:
        """Consume the trace; return results with annotations."""
        if self._ran:
            raise SimulationError(
                "AnnotatingSimulator instances are single-use; build a new one"
            )
        self._ran = True
        if isinstance(trace, TraceChunk):
            trace = (trace,)

        i_annotator = _CacheAnnotator(
            self.hierarchy.l1i.config.n_lines, self.active_floor
        )
        d_annotator = _CacheAnnotator(
            self.hierarchy.l1d.config.n_lines, self.active_floor
        )
        # REPRO_KERNEL selects the path; auto prefers the batched kernel
        # (with its best available residual loop) when the hierarchy
        # supports it and the scalar loop otherwise.
        mode = resolve_kernel_mode()
        if mode != "scalar" and kernel_supported(self.hierarchy):
            return self._run_batched(trace, i_annotator, d_annotator)
        return self._run_scalar(trace, i_annotator, d_annotator)

    def _run_batched(
        self,
        trace: Iterable[TraceChunk],
        i_annotator: "_CacheAnnotator",
        d_annotator: "_CacheAnnotator",
    ) -> AnnotatedSimulationResult:
        """Kernel timing plus a scalar annotation replay per chunk.

        The kernel hands each chunk's (block, frame, time) event stream —
        exactly what the scalar loop would have produced — to observers
        that replay the annotators and the stride predictor in event
        order, so flags and predictor state are identical by construction.
        """
        hierarchy = self.hierarchy
        stride_access = self.stride.access
        i_observe = i_annotator.observe
        d_observe = d_annotator.observe

        def i_observer(blocks, frames, times):
            for block, frame, when in zip(
                blocks.tolist(), frames.tolist(), times.tolist()
            ):
                i_observe(block, frame, when, False)

        def d_observer(blocks, frames, times, pcs, addrs, stores):
            for block, frame, when, pc, address, is_store in zip(
                blocks.tolist(), frames.tolist(), times.tolist(),
                pcs.tolist(), addrs.tolist(), stores.tolist(),
            ):
                d_observe(
                    block, frame, when,
                    False if is_store else stride_access(pc, address),
                )

        outcome = run_batched(
            hierarchy, self.clock, trace, i_observer, d_observer
        )
        result = SimulationResult(
            cycles=outcome.cycles,
            instructions=outcome.instructions,
            stall_cycles=outcome.stall_cycles,
            l1i_intervals=hierarchy.l1i.intervals(),
            l1d_intervals=hierarchy.l1d.intervals(),
            stats=hierarchy.stats(),
            profile=outcome.profile,
        )
        return AnnotatedSimulationResult(
            result=result,
            l1i=i_annotator.finish(result.l1i_intervals),
            l1d=d_annotator.finish(result.l1d_intervals),
        )

    def _run_scalar(
        self,
        trace: Iterable[TraceChunk],
        i_annotator: "_CacheAnnotator",
        d_annotator: "_CacheAnnotator",
    ) -> AnnotatedSimulationResult:
        hierarchy = self.hierarchy
        clock = self.clock
        config = clock.config
        l1i, l1d, l2 = hierarchy.l1i, hierarchy.l1d, hierarchy.l2
        offset_bits = hierarchy.config.l1i.offset_bits
        d_offset_bits = hierarchy.config.l1d.offset_bits
        l1i_hit = hierarchy.config.l1i.hit_latency
        l1d_hit = hierarchy.config.l1d.hit_latency
        l2_hit = hierarchy.config.l2.hit_latency
        memory_latency = hierarchy.config.memory_latency
        load_mlp = config.load_mlp
        store_buffer = config.store_buffer
        issue = clock.issue
        stall = clock.stall
        stride_access = self.stride.access
        group_bits = config.fetch_group_bytes.bit_length() - 1
        prev_igroup = -1
        started = _time.perf_counter()

        # Mirror the batched kernel's entry validation on the scalar path.
        for chunk in validated_chunks(trace):
            pcs = chunk.pcs
            addrs = chunk.data_addresses
            kinds = chunk.data_kinds
            for i in range(len(chunk)):
                now = issue()
                pc = int(pcs[i])
                igroup = pc >> group_bits
                if igroup != prev_igroup:
                    prev_igroup = igroup
                    iblock = pc >> offset_bits
                    hit, frame = l1i.access_block_ex(iblock, now)
                    i_annotator.observe(iblock, frame, now, stride_hit=False)
                    if not hit:
                        latency = (
                            l2_hit
                            if l2.access_block(iblock, now)
                            else l2_hit + memory_latency
                        )
                        stall(latency - l1i_hit)
                kind = kinds[i]
                if kind != NO_ACCESS:
                    address = int(addrs[i])
                    block = address >> d_offset_bits
                    is_store = kind == STORE
                    stride_hit = False if is_store else stride_access(pc, address)
                    hit, frame = l1d.access_block_ex(block, now)
                    d_annotator.observe(block, frame, now, stride_hit)
                    if not hit:
                        latency = (
                            l2_hit
                            if l2.access_block(block, now)
                            else l2_hit + memory_latency
                        )
                        if not (is_store and store_buffer):
                            stall(-(-(latency - l1d_hit) // load_mlp))

        end_time = clock.cycle + 1
        hierarchy.finish(end_time)
        accesses = hierarchy.l1i.stats.accesses + hierarchy.l1d.stats.accesses
        result = SimulationResult(
            cycles=end_time,
            instructions=clock.instructions,
            stall_cycles=clock.stall_cycles,
            l1i_intervals=hierarchy.l1i.intervals(),
            l1d_intervals=hierarchy.l1d.intervals(),
            stats=hierarchy.stats(),
            profile=SimulationProfile(
                mode="scalar",
                fast_path_accesses=0,
                slow_path_accesses=accesses,
                stage_seconds={"scalar": _time.perf_counter() - started},
                residual_impl="scalar",
            ),
        )
        return AnnotatedSimulationResult(
            result=result,
            l1i=i_annotator.finish(result.l1i_intervals),
            l1d=d_annotator.finish(result.l1d_intervals),
        )


def annotate_workload_trace(
    trace: Iterable[TraceChunk] | TraceChunk,
    hierarchy: Optional[MemoryHierarchy] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> AnnotatedSimulationResult:
    """One-shot convenience wrapper around :class:`AnnotatingSimulator`."""
    return AnnotatingSimulator(hierarchy, pipeline).run(trace)
