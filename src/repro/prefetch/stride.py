"""Per-static-load stride prediction (Farkas et al. [3]).

The paper's stride-based prefetching examines access patterns *per static
load*: a reference-prediction table keyed by the load's PC holds the last
address and the last observed stride, and an access counts as a *stride
access* once the same stride has been seen at least twice for that PC.
This module implements that table and the
confirmed-twice rule; it is used both as a functional prefetcher (predict
the next address) and by the prefetchability analysis (was this access
predictable when it issued?).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError

#: Number of identical strides required before predictions are trusted.
CONFIRMATIONS_REQUIRED = 2


@dataclass
class StrideEntry:
    """Reference-prediction-table row for one static load."""

    last_address: int
    stride: int = 0
    confirmations: int = 0

    @property
    def confident(self) -> bool:
        """Whether the stride has been seen often enough to predict."""
        return self.confirmations >= CONFIRMATIONS_REQUIRED

    def prediction(self) -> Optional[int]:
        """Predicted next address, or None when not confident."""
        if not self.confident:
            return None
        return self.last_address + self.stride


class StridePredictor:
    """Reference prediction table keyed by load PC.

    Parameters
    ----------
    capacity:
        Maximum tracked static loads; least-recently-used entries are
        evicted beyond it (None = unbounded, fine for synthetic traces
        whose static-load population is small).
    """

    def __init__(self, capacity: Optional[int] = 4096) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(
                f"stride table capacity must be positive or None, got {capacity!r}"
            )
        self.capacity = capacity
        self._table: "OrderedDict[int, StrideEntry]" = OrderedDict()
        self.predictions = 0
        self.correct = 0

    def predict(self, pc: int) -> Optional[int]:
        """Predicted next address for ``pc`` (None when unknown)."""
        entry = self._table.get(pc)
        if entry is None:
            return None
        return entry.prediction()

    def access(self, pc: int, address: int) -> bool:
        """Observe one load and report whether it was predicted.

        Returns True when, *before* this observation, the table held a
        confident stride for ``pc`` whose prediction matches ``address``
        — the paper's criterion for a stride access.  The table is then
        trained with the observation.
        """
        entry = self._table.get(pc)
        predicted = False
        if entry is not None:
            if entry.confident:
                self.predictions += 1
                if entry.last_address + entry.stride == address:
                    predicted = True
                    self.correct += 1
            stride = address - entry.last_address
            if stride == entry.stride:
                entry.confirmations += 1
            else:
                entry.stride = stride
                entry.confirmations = 1
            entry.last_address = address
            self._table.move_to_end(pc)
        else:
            self._table[pc] = StrideEntry(last_address=address)
            if self.capacity is not None and len(self._table) > self.capacity:
                self._table.popitem(last=False)
        return predicted

    @property
    def accuracy(self) -> float:
        """Fraction of confident predictions that were correct."""
        return self.correct / self.predictions if self.predictions else 0.0

    def __len__(self) -> int:
        return len(self._table)
