"""Deterministic shard assignment for multi-host sweeps.

A shard is named by ``--shard-index i --shard-count n``.  Assignment is
a stable hash of each point's *content address* (the SHA-256 job key),
so it depends only on the job parameters — never on expansion order,
host, Python hash seed, or which other points exist.  Any host can
compute its own slice from the spec alone; the union of all shards is
exactly the grid and shards are pairwise disjoint by construction.

Hashing keys rather than striding indices also keeps assignment stable
under spec *growth*: adding a scale to the spec moves no existing point
to a different shard, so the content-addressed cache keeps every result
already computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from .grid import SweepPoint

#: How many leading hex digits of the job key feed the shard hash.
#: 16 digits = 64 bits, far beyond any realistic shard count.
_HASH_DIGITS = 16


def shard_of(key: str, shard_count: int) -> int:
    """The shard that owns a job key, in ``[0, shard_count)``."""
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be at least 1, got {shard_count!r}"
        )
    try:
        value = int(key[:_HASH_DIGITS], 16)
    except ValueError:
        raise ConfigurationError(
            f"job key {key!r} is not a hex content address"
        ) from None
    return value % shard_count


@dataclass(frozen=True)
class ShardAssignment:
    """One host's slice of the grid: shard ``index`` of ``count``."""

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"shard count must be at least 1, got {self.count!r}"
            )
        if not 0 <= self.index < self.count:
            raise ConfigurationError(
                f"shard index must lie in [0, {self.count}), got "
                f"{self.index!r}"
            )

    @property
    def run_id(self) -> str:
        """Journal name for this shard (``shard-<i>-of-<n>``)."""
        return f"shard-{self.index}-of-{self.count}"

    def owns(self, key: str) -> bool:
        """Whether this shard is responsible for a job key."""
        return shard_of(key, self.count) == self.index

    def describe(self) -> str:
        return f"shard {self.index + 1}/{self.count}"


def shard_points(
    points: List[SweepPoint], assignment: ShardAssignment
) -> List[SweepPoint]:
    """This shard's slice of the grid, preserving expansion order."""
    return [point for point in points if assignment.owns(point.key())]
