"""Shared sweep journals: many hosts, one progress record.

A sweep owns a directory under ``<cache_dir>/sweeps/<name>/`` shared by
every shard (on one host, or many hosts mounting the same cache):

* ``spec.json`` — the sweep spec, written atomically by the first shard
  to arrive.  Every later shard (and ``status``/``merge``) verifies its
  own spec against it by fingerprint, so two hosts can never silently
  run *different* grids under one sweep name.
* ``shard-<i>-of-<n>/journal.jsonl`` — one engine run journal per shard
  (:class:`~repro.engine.checkpoint.RunJournal` rooted in the sweep
  directory), appended and fsynced as each job completes.  Re-running a
  shard resumes from its journal; the content-addressed result cache
  supplies the payloads.
* ``shard-<i>-of-<n>/manifest.json`` — that shard's telemetry manifest.
* ``manifest.json`` — the merged sweep manifest, written atomically by
  ``sweep merge`` from the union of shard journals (flagged
  ``"merged": true`` so the cross-run sharing statistics count only its
  ``merge_totals``, never the duplicated ``shard_totals``).

The journals are progress records, never result stores: ``merge`` reads
results from the cache (recomputing transparently if an entry rotted),
which is what makes a merged report byte-identical to an unsharded run.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Set

from ..engine import (
    SWEEPS_SUBDIR,
    RunJournal,
    atomic_write_json,
    resolve_cache_dir,
)
from ..errors import EngineError
from .grid import expand
from .shard import ShardAssignment
from .spec import SweepSpec

_SHARD_DIR_PATTERN = re.compile(r"^shard-(\d+)-of-(\d+)$")


class SweepCoordinator:
    """Manages one sweep's shared journal directory."""

    def __init__(
        self, spec: SweepSpec, cache_dir: Optional[os.PathLike] = None
    ) -> None:
        self.spec = spec
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.subdir = f"{SWEEPS_SUBDIR}/{spec.name}"
        self.directory = self.cache_dir / SWEEPS_SUBDIR / spec.name
        self.spec_path = self.directory / "spec.json"
        self.manifest_path = self.directory / "manifest.json"

    # ------------------------------------------------------------------
    # Spec pinning
    # ------------------------------------------------------------------
    def ensure_spec(self) -> None:
        """Pin this sweep's spec on disk, or verify it matches the pin.

        The first shard writes ``spec.json``; everyone after must carry
        an identical spec (by fingerprint).  A mismatch is a hard error:
        merging journals from two different grids would silently drop or
        duplicate points.
        """
        recorded = self._load_recorded_spec()
        if recorded is None:
            if atomic_write_json(self.spec_path, self.spec.to_dict()) is None:
                raise EngineError(
                    f"cannot write sweep spec under {self.describe()}; "
                    "is the cache directory writable?"
                )
            return
        if recorded.fingerprint() != self.spec.fingerprint():
            raise EngineError(
                f"sweep {self.spec.name!r} already exists under "
                f"{self.describe()} with a different spec "
                f"(recorded {recorded.fingerprint()[:12]}, "
                f"yours {self.spec.fingerprint()[:12]}); use a new sweep "
                "name or delete the old sweep directory"
            )

    def _load_recorded_spec(self) -> Optional[SweepSpec]:
        try:
            text = self.spec_path.read_text(encoding="utf-8")
        except OSError:
            return None
        return SweepSpec.from_json(text)

    # ------------------------------------------------------------------
    # Shard journals
    # ------------------------------------------------------------------
    def shard_journal(self, assignment: ShardAssignment) -> RunJournal:
        """The engine journal for one shard, rooted in the sweep dir."""
        return RunJournal(self.cache_dir, assignment.run_id, subdir=self.subdir)

    def shard_names(self) -> List[str]:
        """Names of every shard directory present, sorted."""
        try:
            entries = sorted(p.name for p in self.directory.iterdir())
        except OSError:
            return []
        return [n for n in entries if _SHARD_DIR_PATTERN.match(n)]

    def completed_keys(self) -> Set[str]:
        """Union of every shard journal's completed job keys."""
        keys: Set[str] = set()
        for name in self.shard_names():
            journal = RunJournal(self.cache_dir, name, subdir=self.subdir)
            keys |= journal.load()
        return keys

    # ------------------------------------------------------------------
    # Status and merge
    # ------------------------------------------------------------------
    def status(self) -> Dict:
        """Global progress: grid size, per-shard and union completion."""
        points = expand(self.spec)
        grid_keys = {point.key() for point in points}
        shards = []
        union: Set[str] = set()
        for name in self.shard_names():
            journal = RunJournal(self.cache_dir, name, subdir=self.subdir)
            recorded = journal.load() & grid_keys
            union |= recorded
            match = _SHARD_DIR_PATTERN.match(name)
            owned = None
            if match:
                index, count = int(match.group(1)), int(match.group(2))
                if 0 <= index < count:
                    assignment = ShardAssignment(index, count)
                    owned = sum(1 for k in grid_keys if assignment.owns(k))
            shards.append(
                {
                    "name": name,
                    "journaled": len(recorded),
                    "owned": owned,
                    "manifest": (
                        self.directory / name / "manifest.json"
                    ).exists(),
                }
            )
        missing = [p.describe() for p in points if p.key() not in union]
        return {
            "sweep": self.spec.name,
            "directory": self.describe(),
            "spec_fingerprint": self.spec.fingerprint(),
            "grid_jobs": len(grid_keys),
            "completed": len(union),
            "missing": missing,
            "shards": shards,
        }

    def write_merged_manifest(self, payload: Dict) -> Optional[str]:
        """Atomically write the sweep-level manifest (``"merged": true``)."""
        merged = dict(payload)
        merged["merged"] = True
        return atomic_write_json(self.manifest_path, merged)

    def describe(self) -> str:
        """Location string for errors and telemetry."""
        return str(self.directory)


def parse_shard_name(name: str) -> Optional[ShardAssignment]:
    """The assignment a shard directory name encodes, if valid."""
    match = _SHARD_DIR_PATTERN.match(name)
    if not match:
        return None
    index, count = int(match.group(1)), int(match.group(2))
    if not 0 <= index < count:
        return None
    return ShardAssignment(index, count)
