"""Deterministic expansion of a sweep spec into jobs and analysis tasks.

Expansion order is a pure function of the spec: scales outermost, then
pipelines, then benchmarks, all in spec order.  Every shard and every
re-run therefore sees the same points at the same indices, which is what
makes shard assignment (:mod:`repro.sweep.shard`), journals, and the
merged report stable across hosts.

Jobs are built through :meth:`repro.experiments.suite.SuiteRunner.job_for`
— the exact construction the single-run experiments use — so a sweep
point and a plain ``repro-leakage figure8`` run at the same (benchmark,
scale, pipeline) share one content address and one cache entry: sweeps
warm single runs and vice versa.

Technology nodes never appear in a simulation job.  Leakage-mode
analysis is a cheap pure function of the simulated interval population,
so the node axis expands into :class:`AnalysisTask` rows consumed by the
aggregation stage (:mod:`repro.sweep.aggregate`) instead of multiplying
simulation work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu.pipeline import PipelineConfig
from ..engine import SimulationJob
from ..experiments.suite import SuiteRunner
from .spec import SweepSpec


def pipeline_label(pipeline: Optional[PipelineConfig]) -> str:
    """Deterministic human-readable label for a pipeline axis entry."""
    if pipeline is None:
        return "default"
    from dataclasses import asdict

    parts = [f"{key}={value}" for key, value in asdict(pipeline).items()]
    return ",".join(parts)


@dataclass(frozen=True)
class SweepPoint:
    """One simulation point of the grid, with its engine job attached."""

    index: int  #: Position in the deterministic expansion order.
    benchmark: str
    scale: float
    pipeline: Optional[PipelineConfig]
    job: SimulationJob

    def key(self) -> str:
        """The job's content address (shared with single-run caching)."""
        return self.job.key()

    def describe(self) -> str:
        return (
            f"#{self.index} {self.benchmark}@{self.scale:g} "
            f"[{pipeline_label(self.pipeline)}]"
        )


@dataclass(frozen=True)
class AnalysisTask:
    """One per-point analysis row: a (suite context, node, cache) combo."""

    scale: float
    pipeline: Optional[PipelineConfig]
    feature_nm: int
    cache: str  #: ``'icache'`` or ``'dcache'``

    def describe(self) -> str:
        return (
            f"{self.cache}@{self.feature_nm}nm scale={self.scale:g} "
            f"[{pipeline_label(self.pipeline)}]"
        )


def suite_contexts(
    spec: SweepSpec,
) -> List[Tuple[float, Optional[PipelineConfig]]]:
    """The (scale, pipeline) combos of the grid, in expansion order."""
    return [
        (scale, pipeline)
        for scale in spec.scales
        for pipeline in spec.pipelines
    ]


def suite_for(
    spec: SweepSpec,
    scale: float,
    pipeline: Optional[PipelineConfig],
    engine=None,
) -> SuiteRunner:
    """A :class:`SuiteRunner` over the spec's benchmarks for one context."""
    return SuiteRunner(
        scale=scale,
        pipeline=pipeline,
        benchmarks=list(spec.benchmarks),
        engine=engine,
    )


def expand(spec: SweepSpec) -> List[SweepPoint]:
    """The full simulation grid, deterministically ordered and indexed."""
    points: List[SweepPoint] = []
    for scale, pipeline in suite_contexts(spec):
        suite = suite_for(spec, scale, pipeline)
        for name in spec.benchmarks:
            points.append(
                SweepPoint(
                    index=len(points),
                    benchmark=name,
                    scale=scale,
                    pipeline=pipeline,
                    job=suite.job_for(name),
                )
            )
    return points


def expand_analysis(spec: SweepSpec) -> List[AnalysisTask]:
    """Every analysis row the aggregation stage will evaluate."""
    return [
        AnalysisTask(scale=scale, pipeline=pipeline, feature_nm=nm, cache=cache)
        for scale, pipeline in suite_contexts(spec)
        for nm in spec.nodes
        for cache in ("icache", "dcache")
    ]


def grid_keys(spec: SweepSpec) -> Dict[str, SweepPoint]:
    """Content address → point for the whole grid (keys are unique)."""
    return {point.key(): point for point in expand(spec)}
