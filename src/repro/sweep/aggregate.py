"""Sweep-level aggregation: per-point results → one scaling report.

``sweep merge`` calls :func:`collect`, which walks the analysis grid in
deterministic spec order, pulls every simulation result through the
engine (all cache hits after the shards ran; anything missing or rotten
is transparently recomputed), and evaluates the paper's three optimal
policies per (scale, pipeline, node, cache, benchmark).  The output is

* a plain-text report (the technology-scaling story: a per-node summary
  table per cache, plus per-benchmark detail tables),
* a flat CSV (one row per cell, for plotting), and
* a JSON document (the same cells plus the spec and its fingerprint).

Every artefact is a pure function of (spec, simulated results), and the
results are bit-identical however they were computed — so the merged
report of an N-shard sweep is byte-identical to a single-host run.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.stacked import stacked_trio_savings
from ..experiments.reporting import Table, fmt_pct
from ..power.technology import paper_nodes
from .grid import pipeline_label, suite_contexts, suite_for
from .spec import SweepSpec

#: Scheme order of every table and CSV row (matches
#: :data:`repro.core.stacked.TRIO_SCHEMES`).
SCHEMES = ("OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid")

#: Pseudo-benchmark row carrying the suite mean.
AVERAGE = "average"


@dataclass(frozen=True)
class SweepCell:
    """One aggregated value: a policy's savings at one analysis point."""

    scale: float
    pipeline: str  #: Pipeline label (see :func:`grid.pipeline_label`).
    feature_nm: int
    cache: str
    benchmark: str  #: A benchmark name, or :data:`AVERAGE`.
    scheme: str
    saving: float  #: Leakage-energy saving fraction in [0, 1].


@dataclass
class SweepResults:
    """Everything ``sweep merge`` aggregates, in deterministic order."""

    spec: SweepSpec
    cells: List[SweepCell]

    def lookup(self) -> Dict[tuple, float]:
        """Index the cells by their full coordinate."""
        return {
            (c.scale, c.pipeline, c.feature_nm, c.cache, c.benchmark, c.scheme):
                c.saving
            for c in self.cells
        }


def collect(spec: SweepSpec, engine=None) -> SweepResults:
    """Evaluate the full analysis grid; simulation comes via the engine."""
    nodes = paper_nodes()
    cells: List[SweepCell] = []
    for scale, pipeline in suite_contexts(spec):
        suite = suite_for(spec, scale, pipeline, engine=engine)
        label = pipeline_label(pipeline)
        for cache in ("icache", "dcache"):
            populations = suite.intervals_by_benchmark(cache)
            # One stacked pass per benchmark covers every node at once;
            # cells still come out in the original deterministic order.
            models = [ModeEnergyModel(nodes[nm]) for nm in spec.nodes]
            grids = {
                name: stacked_trio_savings(
                    models, populations[name].intervals
                )
                for name in spec.benchmarks
            }
            for column, feature_nm in enumerate(spec.nodes):
                per_scheme: Dict[str, List[float]] = {s: [] for s in SCHEMES}
                for name in spec.benchmarks:
                    grid = grids[name]
                    for row, scheme in enumerate(SCHEMES):
                        saving = float(grid[row, column])
                        per_scheme[scheme].append(saving)
                        cells.append(
                            SweepCell(
                                scale=scale,
                                pipeline=label,
                                feature_nm=feature_nm,
                                cache=cache,
                                benchmark=name,
                                scheme=scheme,
                                saving=float(saving),
                            )
                        )
                for scheme in SCHEMES:
                    cells.append(
                        SweepCell(
                            scale=scale,
                            pipeline=label,
                            feature_nm=feature_nm,
                            cache=cache,
                            benchmark=AVERAGE,
                            scheme=scheme,
                            saving=float(np.mean(per_scheme[scheme])),
                        )
                    )
    return SweepResults(spec=spec, cells=cells)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def report_tables(results: SweepResults) -> List[Table]:
    """Summary + detail tables, ordered like the grid expansion."""
    spec = results.spec
    values = results.lookup()
    node_headers = [f"{nm}nm" for nm in spec.nodes]
    tables: List[Table] = []
    for scale, pipeline in suite_contexts(spec):
        label = pipeline_label(pipeline)
        context = f"scale={scale:g}, pipeline={label}"
        for cache in ("icache", "dcache"):
            rows = [
                [scheme]
                + [
                    fmt_pct(values[(scale, label, nm, cache, AVERAGE, scheme)])
                    for nm in spec.nodes
                ]
                for scheme in SCHEMES
            ]
            tables.append(
                Table(
                    title=(
                        f"Sweep {spec.name} — {cache} suite-average "
                        f"savings (%) by technology ({context})"
                    ),
                    headers=["scheme"] + node_headers,
                    rows=rows,
                )
            )
        for cache in ("icache", "dcache"):
            for scheme in SCHEMES:
                rows = [
                    [name]
                    + [
                        fmt_pct(values[(scale, label, nm, cache, name, scheme)])
                        for nm in spec.nodes
                    ]
                    for name in list(spec.benchmarks) + [AVERAGE]
                ]
                tables.append(
                    Table(
                        title=(
                            f"Sweep {spec.name} — {cache} {scheme} "
                            f"savings (%) per benchmark ({context})"
                        ),
                        headers=["benchmark"] + node_headers,
                        rows=rows,
                    )
                )
    return tables


def render_report(results: SweepResults) -> str:
    """The full plain-text sweep report (byte-stable)."""
    spec = results.spec
    header = (
        f"== sweep {spec.name}: leakage-savings grid ==\n"
        f"{spec.describe()}\n"
        f"spec fingerprint: {spec.fingerprint()}"
    )
    return "\n\n".join([header] + [t.render() for t in report_tables(results)])


def to_csv(results: SweepResults) -> str:
    """Flat CSV: one row per cell (averages flagged in ``benchmark``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["scale", "pipeline", "node_nm", "cache", "benchmark", "scheme",
         "saving_pct"]
    )
    for cell in results.cells:
        writer.writerow(
            [
                f"{cell.scale:g}",
                cell.pipeline,
                cell.feature_nm,
                cell.cache,
                cell.benchmark,
                cell.scheme,
                f"{100.0 * cell.saving:.4f}",
            ]
        )
    return buffer.getvalue()


def to_json_dict(results: SweepResults) -> Dict:
    """JSON-ready document: spec, fingerprint, and every cell."""
    return {
        "sweep": results.spec.name,
        "spec": results.spec.to_dict(),
        "spec_fingerprint": results.spec.fingerprint(),
        "schemes": list(SCHEMES),
        "cells": [
            {
                "scale": cell.scale,
                "pipeline": cell.pipeline,
                "node_nm": cell.feature_nm,
                "cache": cell.cache,
                "benchmark": cell.benchmark,
                "scheme": cell.scheme,
                "saving": cell.saving,
            }
            for cell in results.cells
        ],
    }


def save_csv(results: SweepResults, directory) -> str:
    """Write the flat CSV as ``<dir>/sweep_<name>.csv``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"sweep_{results.spec.name}.csv"
    path.write_text(to_csv(results), encoding="utf-8")
    return str(path)
