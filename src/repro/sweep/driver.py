"""High-level sweep operations behind ``repro-leakage sweep ...``.

Four verbs, each callable from the CLI or directly from Python:

* :func:`plan_text` — expand the grid, show what each shard would run.
* :func:`run_shard` — run one shard's jobs through the engine, journaled
  in the shared sweep directory (re-running resumes and is a ~100% cache
  hit).
* :func:`status_text` — global progress across every shard journal.
* :func:`merge` — aggregate all per-point results into the sweep report
  and write the merged sweep manifest.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..engine import (
    ExecutionEngine,
    ResultStore,
    RunTelemetry,
    iter_run_manifests,
)
from .aggregate import SweepResults, collect, render_report
from .coordinate import SweepCoordinator
from .grid import expand
from .shard import ShardAssignment, shard_of, shard_points
from .spec import SweepSpec

#: Grids at or below this size are listed point by point in ``plan``.
_PLAN_LISTING_LIMIT = 32

#: Shard-manifest totals summed into the merged manifest (counts only —
#: wall times vary run to run and would break merge idempotence).
_COUNT_TOTALS = (
    "jobs",
    "cached",
    "simulated",
    "failed",
    "serial_fallbacks",
    "fallbacks",
    "retries",
    "retried_jobs",
    "faults_injected",
    "quarantined_results",
    "cache_quarantined",
    "heartbeat_events",
    "breaker_trips",
    "cache_hits_from_earlier_runs",
    "cache_hits_from_this_run",
)


def _store_for(cache_dir: Optional[os.PathLike]) -> Optional[ResultStore]:
    return None if cache_dir is None else ResultStore(cache_dir)


def plan_text(spec: SweepSpec, shard_count: int = 1) -> str:
    """Human summary of the grid and its shard split (no execution)."""
    points = expand(spec)
    lines = [spec.describe()]
    lines.append(f"spec fingerprint: {spec.fingerprint()}")
    if shard_count > 1:
        counts = [0] * shard_count
        for point in points:
            counts[shard_of(point.key(), shard_count)] += 1
        for index, count in enumerate(counts):
            lines.append(
                f"  {ShardAssignment(index, shard_count).describe()}: "
                f"{count} job(s)"
            )
    if len(points) <= _PLAN_LISTING_LIMIT:
        lines.append("jobs:")
        for point in points:
            owner = (
                f" -> shard {shard_of(point.key(), shard_count)}"
                if shard_count > 1
                else ""
            )
            lines.append(f"  {point.describe()}{owner}")
    else:
        lines.append(f"({len(points)} jobs; listing suppressed)")
    return "\n".join(lines)


@dataclass
class ShardRun:
    """What one ``sweep run`` invocation did."""

    spec: SweepSpec
    assignment: ShardAssignment
    jobs_run: int
    telemetry: RunTelemetry
    journal_path: str
    resumed: bool


def run_shard(
    spec: SweepSpec,
    assignment: Optional[ShardAssignment] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    backend: Optional[str] = None,
    hosts: Optional[str] = None,
) -> ShardRun:
    """Run one shard of the sweep through the execution engine.

    The shard's journal lives in the shared sweep directory; if it
    already exists the run *resumes* — journaled jobs with intact cache
    entries are skipped, so re-running a finished shard performs zero
    simulations.
    """
    assignment = assignment if assignment is not None else ShardAssignment()
    coordinator = SweepCoordinator(spec, cache_dir)
    coordinator.ensure_spec()
    journal = coordinator.shard_journal(assignment)
    resumed = journal.exists()
    engine = ExecutionEngine(
        jobs=jobs,
        store=_store_for(cache_dir),
        journal=journal,
        resume=resumed,
        backend=backend,
        hosts=hosts,
    )
    engine.telemetry.context.update(
        {
            "sweep": spec.name,
            "sweep_fingerprint": spec.fingerprint(),
            "shard": assignment.run_id,
        }
    )
    mine = shard_points(expand(spec), assignment)
    if mine:
        engine.run([point.job for point in mine])
    journal.write_manifest(engine.telemetry.manifest())
    return ShardRun(
        spec=spec,
        assignment=assignment,
        jobs_run=len(mine),
        telemetry=engine.telemetry,
        journal_path=journal.describe(),
        resumed=resumed,
    )


def status_text(
    spec: SweepSpec, cache_dir: Optional[os.PathLike] = None
) -> str:
    """Render global sweep progress from the shared journals."""
    coordinator = SweepCoordinator(spec, cache_dir)
    coordinator.ensure_spec()
    status = coordinator.status()
    lines = [
        f"sweep {status['sweep']} under {status['directory']}",
        f"grid: {status['grid_jobs']} job(s), "
        f"{status['completed']} completed across "
        f"{len(status['shards'])} shard journal(s)",
    ]
    for shard in status["shards"]:
        owned = shard["owned"]
        quota = f"/{owned}" if owned is not None else ""
        manifest = ", manifest written" if shard["manifest"] else ""
        lines.append(
            f"  {shard['name']}: {shard['journaled']}{quota} job(s) "
            f"journaled{manifest}"
        )
    missing = status["missing"]
    if missing:
        lines.append(f"missing ({len(missing)}):")
        lines.extend(f"  {entry}" for entry in missing[:10])
        if len(missing) > 10:
            lines.append(f"  ... and {len(missing) - 10} more")
    else:
        lines.append("complete: every grid job is journaled")
    return "\n".join(lines)


@dataclass
class MergeOutcome:
    """What ``sweep merge`` produced."""

    spec: SweepSpec
    results: SweepResults
    report: str
    manifest: Dict
    manifest_path: Optional[str]
    telemetry: RunTelemetry


def merge(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    backend: Optional[str] = None,
    engine: Optional[ExecutionEngine] = None,
    hosts: Optional[str] = None,
) -> MergeOutcome:
    """Aggregate every shard's results into the sweep report + manifest.

    Results come from the content-addressed cache; a point no shard ran
    (or whose entry rotted) is recomputed transparently, so the merged
    report is byte-identical to an unsharded single-host run — and
    merging twice is idempotent.

    Passing ``engine`` reuses a caller-owned engine instead of building
    one — the sweep-over-service path: the daemon finalizes a sweep
    ticket through its single shared engine (every point is a cache hit
    by then), so serving-layer merges coalesce with everything else the
    daemon knows.
    """
    coordinator = SweepCoordinator(spec, cache_dir)
    coordinator.ensure_spec()
    if engine is None:
        engine = ExecutionEngine(
            jobs=jobs,
            store=_store_for(cache_dir),
            backend=backend,
            hosts=hosts,
        )
    results = collect(spec, engine=engine)
    report = render_report(results)
    status = coordinator.status()
    manifest = {
        "sweep": spec.name,
        "spec": spec.to_dict(),
        "spec_fingerprint": spec.fingerprint(),
        "grid_jobs": status["grid_jobs"],
        "journaled_jobs": status["completed"],
        "shards": status["shards"],
        "shard_totals": _sum_shard_totals(coordinator),
        "merge_totals": {
            "jobs": engine.telemetry.jobs,
            "cached": engine.telemetry.cached,
            "simulated": engine.telemetry.simulated,
            "cache_hits_from_earlier_runs": engine.telemetry.store_stats.get(
                "hits_from_earlier_runs", 0
            ),
            "cache_hits_from_this_run": engine.telemetry.store_stats.get(
                "hits_from_this_run", 0
            ),
        },
        "report_sha256": hashlib.sha256(report.encode("utf-8")).hexdigest(),
    }
    manifest_path = coordinator.write_merged_manifest(manifest)
    return MergeOutcome(
        spec=spec,
        results=results,
        report=report,
        manifest=manifest,
        manifest_path=manifest_path,
        telemetry=engine.telemetry,
    )


def _sum_shard_totals(coordinator: SweepCoordinator) -> Dict[str, int]:
    """Sum the count totals of this sweep's shard manifests."""
    sums: Dict[str, int] = {name: 0 for name in _COUNT_TOTALS}
    manifests = 0
    for path, manifest in iter_run_manifests(coordinator.cache_dir):
        if path.parent.parent != coordinator.directory:
            continue
        totals = manifest.get("totals")
        if not isinstance(totals, dict):
            continue
        manifests += 1
        for name in _COUNT_TOTALS:
            value = totals.get(name)
            if isinstance(value, (int, float)):
                sums[name] += int(value)
    sums["manifests"] = manifests
    return sums


def shard_run_summary(run: ShardRun) -> List[str]:
    """Stderr footer lines for one ``sweep run`` invocation."""
    lines = [
        f"sweep {run.spec.name} {run.assignment.describe()}: "
        f"{run.jobs_run} job(s)"
        + (" (resumed)" if run.resumed else ""),
        f"journal: {run.journal_path}",
    ]
    if run.telemetry.jobs:
        lines.insert(1, run.telemetry.summary())
    return lines
