"""Sharded parameter sweeps with shared journals and one merged report.

The paper's headline results are grids — leakage-mode energy across
(benchmark × cache scale × pipeline × technology node), e.g. the
180→70 nm scaling study of Figures 7-9.  This package makes such a grid
one command (or one command per host):

* :mod:`~repro.sweep.spec` — a declarative, JSON-round-trippable
  :class:`SweepSpec`, validated against known names up front.
* :mod:`~repro.sweep.grid` — deterministic expansion into ordered
  simulation points (reusing the single-run job construction, so cache
  entries are shared) plus per-point analysis tasks.
* :mod:`~repro.sweep.shard` — stable content-hash shard assignment
  (``--shard-index/--shard-count``): disjoint slices whose union is the
  grid, independent of host or expansion order.
* :mod:`~repro.sweep.coordinate` — the shared journal directory
  (``<cache>/sweeps/<name>/``): spec pinning, one engine journal per
  shard, global status, atomic merged manifest.
* :mod:`~repro.sweep.aggregate` — per-point results → the sweep report
  (per-node/per-benchmark savings tables, CSV + JSON).
* :mod:`~repro.sweep.driver` — the ``plan`` / ``run`` / ``status`` /
  ``merge`` verbs the CLI wires up.

Quickstart::

    from repro.sweep import SweepSpec, run_shard, merge

    spec = SweepSpec("demo", benchmarks=("gzip", "ammp"), scales=(0.05,))
    run_shard(spec)                  # one host: the whole grid
    print(merge(spec).report)        # the technology-scaling tables
"""

from .aggregate import (
    AVERAGE,
    SCHEMES,
    SweepCell,
    SweepResults,
    collect,
    render_report,
    report_tables,
    save_csv,
    to_csv,
    to_json_dict,
)
from .coordinate import SweepCoordinator, parse_shard_name
from .grid import (
    AnalysisTask,
    SweepPoint,
    expand,
    expand_analysis,
    grid_keys,
    pipeline_label,
    suite_contexts,
    suite_for,
)
from .shard import ShardAssignment, shard_of, shard_points
from .spec import DEFAULT_NODES, SweepSpec
from .driver import (
    MergeOutcome,
    ShardRun,
    merge,
    plan_text,
    run_shard,
    shard_run_summary,
    status_text,
)

__all__ = [
    "AVERAGE",
    "AnalysisTask",
    "DEFAULT_NODES",
    "MergeOutcome",
    "SCHEMES",
    "ShardAssignment",
    "ShardRun",
    "SweepCell",
    "SweepCoordinator",
    "SweepPoint",
    "SweepResults",
    "SweepSpec",
    "collect",
    "expand",
    "expand_analysis",
    "grid_keys",
    "merge",
    "parse_shard_name",
    "pipeline_label",
    "plan_text",
    "render_report",
    "report_tables",
    "run_shard",
    "save_csv",
    "shard_of",
    "shard_points",
    "shard_run_summary",
    "status_text",
    "suite_contexts",
    "suite_for",
    "to_csv",
    "to_json_dict",
]
