"""Declarative sweep specifications.

A :class:`SweepSpec` names one design-space grid — benchmarks × workload
scales × pipeline configurations × technology nodes — the way the
paper's scaling study does (Figures 7-9 evaluate every benchmark at
every node from 180 down to 70 nm).  Specs are plain frozen dataclasses
with a JSON/dict round-trip, so the same file drives every shard of a
multi-host sweep, and validation happens *up front*: an unknown
benchmark or node fails when the spec is built, not hours into a run.

Only the (benchmark, scale, pipeline) axes cost simulation time; the
technology-node axis is pure analysis over simulated interval
populations, so adding nodes to a sweep is nearly free (see
:mod:`repro.sweep.grid`).

The JSON form mirrors the dataclass::

    {
      "name": "scaling",
      "benchmarks": ["gzip", "ammp"],
      "scales": [0.25],
      "nodes": [70, 100, 130, 180],
      "pipelines": [null, {"width": 2, "base_cpi": 0.65}]
    }

``pipelines`` entries are ``null`` for the default
:class:`~repro.cpu.pipeline.PipelineConfig` or an object of keyword
overrides; every omitted spec field takes its default.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..cpu.pipeline import PipelineConfig
from ..engine import validate_run_id
from ..errors import ConfigurationError
from ..power.technology import PAPER_INFLECTION_POINTS
from ..workloads.benchmarks import BENCHMARK_NAMES

#: The paper's four technology nodes, the default sweep node axis.
DEFAULT_NODES: Tuple[int, ...] = (70, 100, 130, 180)


def _pipeline_to_dict(pipeline: Optional[PipelineConfig]) -> Optional[Dict]:
    return None if pipeline is None else asdict(pipeline)


def pipeline_to_dict(pipeline: Optional[PipelineConfig]) -> Optional[Dict]:
    """JSON form of a pipeline axis entry (``None`` for the default)."""
    return _pipeline_to_dict(pipeline)


def pipeline_from_dict(value) -> Optional[PipelineConfig]:
    """Parse a pipeline axis entry from its JSON form, validated.

    Shared by the sweep spec and the service wire protocol
    (:mod:`repro.service.protocol`), so a job submitted over HTTP and a
    sweep point built locally agree byte-for-byte on what a pipeline
    override means — and therefore on the content address.
    """
    return _pipeline_from_dict(value)


def _pipeline_from_dict(value) -> Optional[PipelineConfig]:
    if value is None:
        return None
    if isinstance(value, PipelineConfig):
        return value
    if not isinstance(value, dict):
        raise ConfigurationError(
            f"sweep pipeline entry must be null or an object of "
            f"PipelineConfig fields, got {value!r}"
        )
    known = {f.name for f in fields(PipelineConfig)}
    unknown = sorted(set(value) - known)
    if unknown:
        raise ConfigurationError(
            f"sweep pipeline entry has unknown fields {unknown}; "
            f"known: {sorted(known)}"
        )
    return PipelineConfig(**value)


@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep grid, validated on construction.

    Attributes
    ----------
    name:
        Sweep identifier — names the shared journal directory
        (``<cache>/sweeps/<name>/``), so it must be a filesystem-safe
        path component; every shard of one sweep must use the same name.
    benchmarks:
        Benchmark axis; defaults to the paper's full §4.1 suite.
    scales:
        Workload scale axis (positive floats), default ``(1.0,)``.
    nodes:
        Technology-node axis in nanometres; every entry must be one of
        the paper's calibrated nodes (70/100/130/180).
    pipelines:
        Pipeline-configuration axis; ``None`` entries mean the default
        Alpha-21264-like timing model.
    """

    name: str
    benchmarks: Tuple[str, ...] = field(
        default_factory=lambda: tuple(BENCHMARK_NAMES)
    )
    scales: Tuple[float, ...] = (1.0,)
    nodes: Tuple[int, ...] = DEFAULT_NODES
    pipelines: Tuple[Optional[PipelineConfig], ...] = (None,)

    def __post_init__(self) -> None:
        try:
            validate_run_id(self.name, what="sweep name")
        except Exception as error:
            raise ConfigurationError(str(error)) from None
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(
            self, "scales", tuple(float(s) for s in self.scales)
        )
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
        object.__setattr__(self, "pipelines", tuple(self.pipelines))
        for axis, values in (
            ("benchmarks", self.benchmarks),
            ("scales", self.scales),
            ("nodes", self.nodes),
            ("pipelines", self.pipelines),
        ):
            if not values:
                raise ConfigurationError(
                    f"sweep {self.name!r}: the {axis} axis is empty"
                )
            if len(set(values)) != len(values):
                raise ConfigurationError(
                    f"sweep {self.name!r}: duplicate entries on the "
                    f"{axis} axis: {list(values)}"
                )
        # Benchmarks outside the paper suite resolve through the workload
        # registry: registered synthetics and trace: refs sweep like any
        # other benchmark.  Lazy import — repro.traces layers above sweep.
        other = [b for b in self.benchmarks if b not in BENCHMARK_NAMES]
        if other:
            from ..errors import ReproError
            from ..traces.registry import DEFAULT_REGISTRY, is_trace_ref

            for ref in other:
                try:
                    DEFAULT_REGISTRY.validate(ref)
                except ReproError as error:
                    raise ConfigurationError(
                        f"sweep {self.name!r}: {error}"
                    ) from None
                if is_trace_ref(ref):
                    bad = [s for s in self.scales if float(s) != 1.0]
                    if bad:
                        raise ConfigurationError(
                            f"sweep {self.name!r}: {ref!r} is a recorded trace "
                            f"and carries its own scale; a sweep mixing trace "
                            f"refs must use scales (1.0,), got {list(self.scales)}"
                        )
        bad_scales = [s for s in self.scales if not s > 0]
        if bad_scales:
            raise ConfigurationError(
                f"sweep {self.name!r}: scales must be positive, got "
                f"{bad_scales}"
            )
        known_nodes = sorted(PAPER_INFLECTION_POINTS)
        bad_nodes = [n for n in self.nodes if n not in PAPER_INFLECTION_POINTS]
        if bad_nodes:
            raise ConfigurationError(
                f"sweep {self.name!r}: unknown technology nodes {bad_nodes} "
                f"nm; calibrated paper nodes: {known_nodes}"
            )
        for pipeline in self.pipelines:
            if pipeline is not None and not isinstance(
                pipeline, PipelineConfig
            ):
                raise ConfigurationError(
                    f"sweep {self.name!r}: pipeline entries must be None or "
                    f"PipelineConfig, got {pipeline!r}"
                )

    # ------------------------------------------------------------------
    # Round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready dict; ``from_dict`` inverts it exactly."""
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "scales": list(self.scales),
            "nodes": list(self.nodes),
            "pipelines": [_pipeline_to_dict(p) for p in self.pipelines],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepSpec":
        """Build a spec from its dict form (omitted fields default)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"sweep spec must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"sweep spec has unknown fields {unknown}; "
                f"known: {sorted(known)}"
            )
        if "name" not in data:
            raise ConfigurationError("sweep spec needs a 'name' field")
        kwargs: Dict = {"name": data["name"]}
        for axis in ("benchmarks", "scales", "nodes"):
            if axis in data:
                kwargs[axis] = tuple(data[axis])
        if "pipelines" in data:
            kwargs["pipelines"] = tuple(
                _pipeline_from_dict(p) for p in data["pipelines"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ConfigurationError(
                f"sweep spec is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: os.PathLike) -> "SweepSpec":
        """Read a spec from a JSON file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(
                f"cannot read sweep spec {str(path)!r}: {error}"
            ) from None
        return cls.from_json(text)

    def save(self, path: os.PathLike) -> str:
        """Write the spec as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return str(path)

    # ------------------------------------------------------------------
    # Identity and size
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the canonical spec — the sweep's identity.

        Shards of one sweep must agree on this; the coordinator refuses
        to mix journals produced by differing specs under one name.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def simulation_points(self) -> int:
        """Simulation grid size: benchmarks × scales × pipelines."""
        return len(self.benchmarks) * len(self.scales) * len(self.pipelines)

    @property
    def analysis_points(self) -> int:
        """Analysis grid size: simulation points × nodes × 2 caches."""
        return self.simulation_points * len(self.nodes) * 2

    def describe(self) -> str:
        """One-line human summary for ``sweep plan`` and logs."""
        return (
            f"sweep {self.name!r}: {len(self.benchmarks)} benchmark(s) x "
            f"{len(self.scales)} scale(s) x {len(self.pipelines)} "
            f"pipeline(s) = {self.simulation_points} simulation job(s); "
            f"{len(self.nodes)} node(s) -> {self.analysis_points} "
            f"analysis point(s)"
        )
