"""Calibration of technology nodes against the paper's published numbers.

The physical models in :mod:`repro.power.leakage` and
:mod:`repro.power.dynamic` give the right *structure* — leakage per line
grows steeply as Vth drops, dynamic re-fetch energy shrinks with feature
size and Vdd — but the paper's exact operating points came from specific
HotLeakage and CACTI 3.0 runs we cannot re-execute.  Rather than guess,
this module pins the single derived quantity the paper publishes per node:
the sleep-drowsy inflection point of Table 1.

Because the per-mode interval energies are affine in the interval length,
the inflection point is monotone in the re-fetch energy, and the exact
re-fetch energy that produces a target inflection point has a closed form
(invert Equation 3 for ``E_refetch``)::

    E_refetch = (p_drowsy - p_sleep) * b + drowsy_constant
                - sleep_constant_without_refetch

Calibrating the drowsy leakage ratio works the same way from the observed
OPT-Drowsy saturation (the paper's Table 2 shows 66.7% savings in the
long-interval limit, identifying the drowsy residual as one third of
active leakage).
"""

from __future__ import annotations

import math

from ..errors import PowerModelError
from ..units import thermal_voltage
from .technology import TechnologyNode


def calibrate_refetch_energy(
    node: TechnologyNode,
    target_inflection: float,
    durations=None,
) -> float:
    """Return the re-fetch energy (in leakage-cycles) that places the
    sleep-drowsy inflection point exactly at ``target_inflection``.

    Raises :class:`PowerModelError` if the target is infeasible — i.e. it
    would require a negative re-fetch energy, which happens when the target
    sits below the point where sleep's transition overheads alone already
    cost more than drowsy mode.
    """
    from ..core.energy import ModeEnergyModel

    zero_refetch = ModeEnergyModel(
        node.with_refetch_energy(0.0), durations=durations
    )
    if target_inflection < zero_refetch.sleep_min_length:
        raise PowerModelError(
            f"target inflection {target_inflection!r} is below the sleep "
            f"feasibility bound of {zero_refetch.sleep_min_length} cycles"
        )
    gap = zero_refetch.p_drowsy - zero_refetch.p_sleep
    refetch = (
        gap * target_inflection
        + zero_refetch.drowsy_constant
        - zero_refetch.sleep_constant
    )
    if refetch < 0:
        raise PowerModelError(
            f"target inflection {target_inflection!r} cycles is unreachable: "
            "sleep already beats drowsy there with zero re-fetch energy"
        )
    return refetch


def calibrate_drowsy_dibl(node: TechnologyNode, target_ratio: float) -> float:
    """Return the DIBL coefficient (V/V) that yields ``target_ratio``.

    The subthreshold drowsy/active leakage ratio under a retention voltage
    ``Vl`` is ``(Vl/Vdd) * exp(eta * (Vl - Vdd) / (n * vT))`` (supply term
    times the DIBL exponent); solving for ``eta`` gives the closed form
    below.  Used by the physical leakage model to reproduce the calibrated
    drowsy ratio from first principles.
    """
    if not 0 < target_ratio < 1:
        raise PowerModelError(
            f"drowsy ratio must be in (0, 1), got {target_ratio!r}"
        )
    supply_term = node.vdd_drowsy / node.vdd
    n_vt = _subthreshold_slope_factor() * thermal_voltage(node.temperature_k)
    delta_v = node.vdd_drowsy - node.vdd  # negative
    exponent_needed = target_ratio / supply_term
    if exponent_needed >= 1.0:
        raise PowerModelError(
            f"target drowsy ratio {target_ratio!r} exceeds the pure supply "
            f"scaling {supply_term:.3f}; no positive DIBL coefficient exists"
        )
    return math.log(exponent_needed) * n_vt / delta_v


def _subthreshold_slope_factor() -> float:
    """Subthreshold slope ideality factor ``n`` (typical bulk CMOS)."""
    return 1.3
