"""HotLeakage-style analytic leakage model.

The paper obtains per-line leakage powers from HotLeakage [18], a C tool
built on BSIM3 subthreshold equations.  This module re-implements the same
structure analytically:

* **Subthreshold leakage** of an off transistor::

      I_sub = mu0 * Cox * (W/L) * vT^2 * e^1.8
              * exp((Vgs - Vth + eta*Vds) / (n*vT)) * (1 - exp(-Vds/vT))

  evaluated at ``Vgs = 0``, ``Vds = Vdd`` for a fully-on (active) line and
  ``Vds = Vdd_drowsy`` for a drowsy line.  The DIBL coefficient ``eta``
  couples the drain voltage into the exponent, which is what makes drowsy
  mode effective.
* **Gate leakage** is modelled as a fixed fraction of subthreshold leakage
  at the nominal supply (it is a second-order effect at the nodes the
  paper studies and scales similarly with voltage).
* **Gated-Vdd (sleep)** leakage is the stacked residual through the
  high-Vth sleep transistor, modelled as a configurable fraction of active
  leakage.

A 6T SRAM cell leaks through roughly two off devices per cell; a cache
line of ``line_bits`` cells (data + tag + status) leaks the cell current
times the bit count.  Absolute numbers are indicative — the limit study
itself only consumes the *ratios* between modes and the re-fetch/leakage
ratio, both of which are pinned by :mod:`repro.power.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PowerModelError
from ..units import thermal_voltage
from .calibration import calibrate_drowsy_dibl
from .technology import TechnologyNode


@dataclass(frozen=True)
class SramGeometry:
    """Physical description of the SRAM that stores one cache line.

    Attributes
    ----------
    data_bits: bits of data payload per line (512 for a 64 B line).
    tag_bits: bits of tag plus status (valid/dirty/LRU) per line.
    leak_paths_per_cell: effective off-transistor leakage paths per 6T cell.
    width_to_length: W/L ratio of the leaking devices.
    """

    data_bits: int = 512
    tag_bits: int = 40
    leak_paths_per_cell: float = 2.0
    width_to_length: float = 2.0

    @property
    def line_bits(self) -> int:
        """Total SRAM cells per cache line."""
        return self.data_bits + self.tag_bits


class LeakageModel:
    """Per-line leakage power for each operating mode, in watts.

    Parameters
    ----------
    node:
        Technology node supplying voltages and temperature.
    geometry:
        SRAM geometry of one cache line.
    dibl:
        DIBL coefficient ``eta`` (V/V).  When None, it is *calibrated* so
        that the subthreshold drowsy/active ratio equals the node's
        ``drowsy_ratio`` — tying the physical model to the paper-calibrated
        behaviour.
    gate_leak_fraction:
        Gate leakage as a fraction of nominal subthreshold leakage.
    subthreshold_slope:
        Ideality factor ``n`` of the subthreshold slope.
    """

    #: mu0 * Cox * e^1.8 lumped prefactor (A/V^2 per unit W/L); tuned to
    #: land per-device leakage in the nA range at the 70 nm node.
    CURRENT_PREFACTOR = 1.2e-5

    def __init__(
        self,
        node: TechnologyNode,
        geometry: SramGeometry | None = None,
        dibl: float | None = None,
        gate_leak_fraction: float = 0.15,
        subthreshold_slope: float = 1.3,
    ) -> None:
        if gate_leak_fraction < 0:
            raise PowerModelError(
                f"gate leakage fraction cannot be negative, got {gate_leak_fraction!r}"
            )
        if subthreshold_slope < 1.0:
            raise PowerModelError(
                f"subthreshold slope factor must be >= 1, got {subthreshold_slope!r}"
            )
        self.node = node
        self.geometry = geometry if geometry is not None else SramGeometry()
        self.gate_leak_fraction = gate_leak_fraction
        self.subthreshold_slope = subthreshold_slope
        self.vt = thermal_voltage(node.temperature_k)
        if dibl is None:
            dibl = calibrate_drowsy_dibl(node, node.drowsy_ratio)
        if dibl < 0:
            raise PowerModelError(f"DIBL coefficient cannot be negative, got {dibl!r}")
        self.dibl = dibl

    # ------------------------------------------------------------------
    # Device-level currents
    # ------------------------------------------------------------------

    def subthreshold_current(self, vds: float) -> float:
        """Off-device subthreshold current at drain bias ``vds`` (amps)."""
        if vds < 0:
            raise PowerModelError(f"Vds cannot be negative, got {vds!r}")
        n_vt = self.subthreshold_slope * self.vt
        exponent = (-self.node.vth + self.dibl * vds) / n_vt
        drain_term = 1.0 - math.exp(-vds / self.vt) if vds > 0 else 0.0
        return (
            self.CURRENT_PREFACTOR
            * self.geometry.width_to_length
            * self.vt**2
            * math.exp(exponent)
            * drain_term
        )

    # ------------------------------------------------------------------
    # Line-level powers
    # ------------------------------------------------------------------

    def _cell_paths(self) -> float:
        return self.geometry.line_bits * self.geometry.leak_paths_per_cell

    def line_active_power(self) -> float:
        """Leakage power of one fully-powered line (watts)."""
        i_sub = self.subthreshold_current(self.node.vdd)
        i_total = i_sub * (1.0 + self.gate_leak_fraction)
        return self._cell_paths() * i_total * self.node.vdd

    def line_drowsy_power(self) -> float:
        """Leakage power of one line at the drowsy retention voltage."""
        i_sub = self.subthreshold_current(self.node.vdd_drowsy)
        i_total = i_sub * (1.0 + self.gate_leak_fraction)
        return self._cell_paths() * i_total * self.node.vdd_drowsy

    def line_sleep_power(self) -> float:
        """Residual leakage of one gated-off line (watts)."""
        return self.node.sleep_ratio * self.line_active_power()

    def drowsy_ratio(self) -> float:
        """Drowsy/active leakage ratio predicted by the physics."""
        return self.line_drowsy_power() / self.line_active_power()

    def cache_active_power(self, n_lines: int) -> float:
        """Leakage power of a whole cache with every line active (watts)."""
        if n_lines <= 0:
            raise PowerModelError(f"cache must have lines, got {n_lines!r}")
        return n_lines * self.line_active_power()

    def summary(self) -> dict:
        """Key quantities as a plain dict (for reports and examples)."""
        return {
            "node": self.node.name,
            "dibl": self.dibl,
            "line_active_w": self.line_active_power(),
            "line_drowsy_w": self.line_drowsy_power(),
            "line_sleep_w": self.line_sleep_power(),
            "drowsy_ratio": self.drowsy_ratio(),
        }
