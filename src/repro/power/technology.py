"""Technology node descriptions.

A :class:`TechnologyNode` collects every implementation-technology
parameter the limit model needs: supply and threshold voltages (the paper's
Table 2 lists the four nodes it studies), the drowsy retention voltage, the
relative leakage of each operating mode, and the normalized dynamic energy
of the induced-miss re-fetch that prices sleep mode.

Two kinds of nodes are provided:

* :func:`paper_nodes` — the four nodes of the paper (70/100/130/180 nm)
  with mode ratios and re-fetch energies *calibrated* so that the derived
  sleep-drowsy inflection points reproduce the paper's Table 1 exactly
  (1057 / 5088 / 10328 / 103084 cycles).  See
  :mod:`repro.power.calibration` for how the re-fetch energies are pinned.
* physically-derived nodes — :mod:`repro.power.leakage` and
  :mod:`repro.power.dynamic` can populate a node from first-principles
  models for what-if studies at arbitrary geometries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..errors import ConfigurationError

#: Sleep-drowsy inflection points published in the paper's Table 1, keyed
#: by feature size in nanometres.  The active-drowsy point is 6 cycles at
#: every node (``d1 + d3``).
PAPER_INFLECTION_POINTS: Dict[int, int] = {
    70: 1057,
    100: 5088,
    130: 10328,
    180: 103084,
}

#: Supply / threshold voltages from the paper's Table 2, keyed by nm.
PAPER_VOLTAGES: Dict[int, Tuple[float, float]] = {
    70: (0.9, 0.1902),
    100: (1.0, 0.2607),
    130: (1.5, 0.3353),
    180: (2.0, 0.3979),
}

#: Default ratio of drowsy-mode leakage to active leakage.  The paper's
#: Table 2 shows OPT-Drowsy saturating at 66.7% savings independent of
#: technology, which identifies the HotLeakage drowsy residual as one third
#: of active leakage; we adopt that as the calibrated default.
DEFAULT_DROWSY_RATIO = 1.0 / 3.0

#: Default ratio of sleep-mode (gated-Vdd) leakage to active leakage.  A
#: high-Vth sleep transistor leaves only a tiny stacked-device residual —
#: the Gated-Vdd paper reports leakage "essentially eliminated", and the
#: paper's 99.1% D-cache hybrid limit requires a residual well under 1%.
DEFAULT_SLEEP_RATIO = 0.003


@dataclass(frozen=True)
class TechnologyNode:
    """Implementation-technology parameters for the leakage limit model.

    Attributes
    ----------
    feature_nm:
        Drawn feature size in nanometres (70, 100, 130, 180 for the paper).
    vdd:
        Nominal supply voltage in volts.
    vth:
        Nominal NMOS threshold voltage in volts.
    vdd_drowsy:
        Retention supply used in drowsy mode, in volts.  Must satisfy
        ``0 < vdd_drowsy < vdd``.
    drowsy_ratio:
        Leakage power of a drowsy line relative to an active line (0..1).
    sleep_ratio:
        Residual leakage of a gated-off (sleep) line relative to active.
        Must be below ``drowsy_ratio`` or sleep could never win.
    refetch_energy_cycles:
        Dynamic energy of the induced miss that re-fills a slept line,
        expressed in active-line-leakage-cycles (see :mod:`repro.units`).
        This is the single knob that moves the sleep-drowsy inflection
        point; for paper nodes it is calibrated against Table 1.
    frequency_hz:
        Clock frequency used when converting to absolute units.
    temperature_k:
        Junction temperature assumed by the physical leakage models.
    name:
        Human-readable label, e.g. ``"70nm"``.
    """

    feature_nm: float
    vdd: float
    vth: float
    vdd_drowsy: float
    drowsy_ratio: float = DEFAULT_DROWSY_RATIO
    sleep_ratio: float = DEFAULT_SLEEP_RATIO
    refetch_energy_cycles: float = 0.0
    frequency_hz: float = 2.0e9
    temperature_k: float = 353.0
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ConfigurationError(
                f"feature size must be positive, got {self.feature_nm!r} nm"
            )
        if self.vdd <= 0:
            raise ConfigurationError(f"Vdd must be positive, got {self.vdd!r} V")
        if not 0 < self.vth < self.vdd:
            raise ConfigurationError(
                f"Vth must lie in (0, Vdd)={(0, self.vdd)}, got {self.vth!r} V"
            )
        if not 0 < self.vdd_drowsy < self.vdd:
            raise ConfigurationError(
                "drowsy retention voltage must lie strictly between 0 and "
                f"Vdd={self.vdd!r} V, got {self.vdd_drowsy!r} V"
            )
        if not 0 <= self.sleep_ratio < self.drowsy_ratio < 1:
            raise ConfigurationError(
                "mode leakage ratios must satisfy "
                "0 <= sleep_ratio < drowsy_ratio < 1, got "
                f"sleep={self.sleep_ratio!r}, drowsy={self.drowsy_ratio!r}"
            )
        if self.refetch_energy_cycles < 0:
            raise ConfigurationError(
                "re-fetch energy cannot be negative, got "
                f"{self.refetch_energy_cycles!r}"
            )
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {self.frequency_hz!r} Hz"
            )
        if not self.name:
            object.__setattr__(self, "name", f"{self.feature_nm:g}nm")

    def with_refetch_energy(self, refetch_energy_cycles: float) -> "TechnologyNode":
        """Return a copy of this node with a new re-fetch energy."""
        return replace(self, refetch_energy_cycles=refetch_energy_cycles)

    def with_ratios(
        self, drowsy_ratio: float, sleep_ratio: float
    ) -> "TechnologyNode":
        """Return a copy of this node with new mode-leakage ratios."""
        return replace(self, drowsy_ratio=drowsy_ratio, sleep_ratio=sleep_ratio)

    def scaled_clone(self, feature_nm: float) -> "TechnologyNode":
        """Return a crude constant-field-scaled variant of this node.

        Voltages scale linearly with feature size; the re-fetch energy is
        left untouched (use the physical models plus
        :mod:`repro.power.calibration` for a principled derivation).  This
        is a convenience for quick what-if sweeps in examples.
        """
        factor = feature_nm / self.feature_nm
        return replace(
            self,
            feature_nm=feature_nm,
            vdd=self.vdd * factor,
            vth=self.vth * factor,
            vdd_drowsy=self.vdd_drowsy * factor,
            name=f"{feature_nm:g}nm",
        )


def make_paper_node(feature_nm: int, **overrides: float) -> TechnologyNode:
    """Build one of the four paper technology nodes (uncalibrated).

    The returned node carries the paper's Table 2 voltages, a drowsy
    retention voltage of ``Vdd / 2`` (the common choice in the drowsy-cache
    literature), and the default mode ratios.  Its
    ``refetch_energy_cycles`` is zero — run it through
    :func:`repro.power.calibration.calibrate_refetch_energy` (or use
    :func:`paper_nodes`, which does so) before computing inflection points.
    """
    try:
        vdd, vth = PAPER_VOLTAGES[feature_nm]
    except KeyError:
        known = sorted(PAPER_VOLTAGES)
        raise ConfigurationError(
            f"unknown paper node {feature_nm!r} nm; paper nodes are {known}"
        ) from None
    params = {
        "feature_nm": float(feature_nm),
        "vdd": vdd,
        "vth": vth,
        "vdd_drowsy": vdd / 2.0,
    }
    params.update(overrides)
    return TechnologyNode(**params)


def paper_nodes() -> Dict[int, TechnologyNode]:
    """Return the four paper nodes, calibrated to the Table 1 inflections.

    The import happens here (not at module top) because calibration builds
    on the energy model, which itself consumes technology nodes.
    """
    from .calibration import calibrate_refetch_energy

    nodes = {}
    for feature_nm, inflection in PAPER_INFLECTION_POINTS.items():
        raw = make_paper_node(feature_nm)
        nodes[feature_nm] = raw.with_refetch_energy(
            calibrate_refetch_energy(raw, inflection)
        )
    return nodes
