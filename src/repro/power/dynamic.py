"""CACTI-style dynamic access-energy model.

The paper prices the induced miss of sleep mode — the dynamic energy of
re-fetching a line from L2 — with CACTI 3.0 [15].  CACTI decomposes a
cache access into RC stages; this module reproduces that decomposition
analytically so the re-fetch energy has the right structure and scaling:

* **decoder** — address predecode + row decoder gates,
* **wordline** — the selected row's wordline swing,
* **bitlines** — precharged bitline discharge across the selected set
  (reads swing a limited voltage; writes swing full rail),
* **sense amplifiers** — one per output bit,
* **output drive / bus** — moving the line between levels.

Every capacitance is built from a per-feature-size unit capacitance
(``C ∝ feature``, classic constant-field scaling) and energies are
``C * Vdd * Vswing``.  Absolute joules are indicative; the limit study
consumes the re-fetch energy only through the calibrated
``refetch_energy_cycles`` of a :class:`~repro.power.technology.TechnologyNode`
(see :mod:`repro.power.calibration`), for which this model supplies the
physically-scaled starting point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, PowerModelError
from .technology import TechnologyNode


@dataclass(frozen=True)
class CacheOrganization:
    """Structural parameters of the cache bank being accessed.

    Defaults describe the paper's unified L2: 2 MB, direct-mapped, 64 B
    lines.
    """

    size_bytes: int = 2 * 1024 * 1024
    line_bytes: int = 64
    associativity: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError(
                "cache organization fields must be positive, got "
                f"{(self.size_bytes, self.line_bytes, self.associativity)!r}"
            )
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigurationError(
                "cache size must be divisible by line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets in the bank."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def line_bits(self) -> int:
        """Payload bits per line."""
        return self.line_bytes * 8

    @property
    def index_bits(self) -> int:
        """Set-index width in bits."""
        return max(1, (self.n_sets - 1).bit_length())


class DynamicEnergyModel:
    """Analytic per-access and per-refetch dynamic energies (joules)."""

    #: Unit capacitance per bit of structure per nm of feature size (F/nm).
    #: Tuned so a 70 nm 2 MB access lands near the nJ range CACTI reports.
    UNIT_CAP_PER_NM = 3.0e-18

    #: Read bitline swing as a fraction of Vdd (sense-amp limited).
    READ_SWING = 0.15

    #: Energy of one sense amplifier firing, as bit-capacitance multiples.
    SENSE_AMP_CAP_FACTOR = 4.0

    def __init__(
        self,
        node: TechnologyNode,
        organization: CacheOrganization | None = None,
    ) -> None:
        self.node = node
        self.org = organization if organization is not None else CacheOrganization()
        self.unit_cap = self.UNIT_CAP_PER_NM * node.feature_nm

    # ------------------------------------------------------------------
    # Stage energies
    # ------------------------------------------------------------------

    def decoder_energy(self) -> float:
        """Predecode + row-decode switching energy for one access."""
        gates = self.org.index_bits * 8.0
        return gates * self.unit_cap * self.node.vdd**2

    def wordline_energy(self) -> float:
        """Energy to swing the selected wordline across the row."""
        row_cells = self.org.line_bits * self.org.associativity
        return row_cells * self.unit_cap * self.node.vdd**2

    def bitline_energy(self, write: bool = False) -> float:
        """Bitline precharge/discharge energy for one access.

        Each column's bitline capacitance grows with the number of sets in
        the bank; reads swing only ``READ_SWING * Vdd``, writes swing full
        rail.
        """
        columns = self.org.line_bits * self.org.associativity
        per_bitline_cap = self.unit_cap * self.org.n_sets * 0.5
        swing = self.node.vdd if write else self.READ_SWING * self.node.vdd
        return columns * per_bitline_cap * self.node.vdd * swing

    def sense_amp_energy(self) -> float:
        """Energy of firing the sense amplifiers for one line."""
        return (
            self.org.line_bits
            * self.SENSE_AMP_CAP_FACTOR
            * self.unit_cap
            * self.node.vdd**2
        )

    def bus_energy(self, distance_factor: float = 32.0) -> float:
        """Energy to drive the line across the L2-to-L1 bus."""
        if distance_factor <= 0:
            raise PowerModelError(
                f"bus distance factor must be positive, got {distance_factor!r}"
            )
        return (
            self.org.line_bits
            * distance_factor
            * self.unit_cap
            * self.node.vdd**2
        )

    # ------------------------------------------------------------------
    # Composite energies
    # ------------------------------------------------------------------

    def read_access_energy(self) -> float:
        """Dynamic energy of one read access to this bank."""
        return (
            self.decoder_energy()
            + self.wordline_energy()
            + self.bitline_energy(write=False)
            + self.sense_amp_energy()
        )

    def write_access_energy(self) -> float:
        """Dynamic energy of one (full-line) write access to this bank."""
        return (
            self.decoder_energy()
            + self.wordline_energy()
            + self.bitline_energy(write=True)
        )

    def refetch_energy(self, l1_organization: CacheOrganization | None = None) -> float:
        """Dynamic energy of one induced miss (the ``*`` of Figure 4).

        A slept line's re-fetch reads the L2 bank, drives the line over the
        bus, and writes it into the L1 frame.
        """
        l1 = DynamicEnergyModel(
            self.node,
            l1_organization
            if l1_organization is not None
            else CacheOrganization(size_bytes=64 * 1024, associativity=2),
        )
        return self.read_access_energy() + self.bus_energy() + l1.write_access_energy()

    def summary(self) -> dict:
        """Stage-by-stage breakdown as a plain dict."""
        return {
            "node": self.node.name,
            "decoder_j": self.decoder_energy(),
            "wordline_j": self.wordline_energy(),
            "bitline_read_j": self.bitline_energy(write=False),
            "sense_amp_j": self.sense_amp_energy(),
            "read_access_j": self.read_access_energy(),
            "refetch_j": self.refetch_energy(),
        }
