"""Power models: technology nodes, leakage, dynamic energy, calibration.

This subpackage is the reproduction's substitute for the HotLeakage [18]
and CACTI 3.0 [15] tools the paper drew its circuit numbers from, plus the
ITRS projection behind Figure 1.  See DESIGN.md §3.2 for the substitution
rationale.
"""

from .calibration import calibrate_drowsy_dibl, calibrate_refetch_energy
from .dynamic import CacheOrganization, DynamicEnergyModel
from .itrs import ITRS_ANCHORS, leakage_fraction, projection_series
from .leakage import LeakageModel, SramGeometry
from .technology import (
    DEFAULT_DROWSY_RATIO,
    DEFAULT_SLEEP_RATIO,
    PAPER_INFLECTION_POINTS,
    PAPER_VOLTAGES,
    TechnologyNode,
    make_paper_node,
    paper_nodes,
)

__all__ = [
    "CacheOrganization",
    "DynamicEnergyModel",
    "ITRS_ANCHORS",
    "LeakageModel",
    "SramGeometry",
    "TechnologyNode",
    "DEFAULT_DROWSY_RATIO",
    "DEFAULT_SLEEP_RATIO",
    "PAPER_INFLECTION_POINTS",
    "PAPER_VOLTAGES",
    "calibrate_drowsy_dibl",
    "calibrate_refetch_energy",
    "leakage_fraction",
    "make_paper_node",
    "paper_nodes",
    "projection_series",
]
