"""ITRS leakage-fraction projection (the paper's Figure 1).

Figure 1 plots the International Technology Roadmap for Semiconductors
projection of leakage power as a fraction of total power from 1999 to
2009.  The roadmap itself is a table of per-year device targets; the
qualitative curve the paper reproduces is the S-shaped takeover of static
power.  We model it two ways:

* :data:`ITRS_ANCHORS` — per-year anchor fractions matching the shape of
  the published curve (leakage rising from a few percent in 1999 to the
  majority of total power by decade's end);
* :func:`leakage_fraction` — a logistic fit through the anchors, usable at
  fractional years and for extrapolation in examples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..errors import ConfigurationError

#: Anchor points (year -> leakage/total fraction) tracing the ITRS curve
#: the paper reproduces in Figure 1.
ITRS_ANCHORS: Dict[int, float] = {
    1999: 0.06,
    2001: 0.12,
    2003: 0.25,
    2005: 0.45,
    2007: 0.62,
    2009: 0.72,
}

#: Logistic parameters fit to the anchors: fraction(year) =
#: CEILING / (1 + exp(-RATE * (year - MIDPOINT))).
_LOGISTIC_CEILING = 0.78
_LOGISTIC_RATE = 0.55
_LOGISTIC_MIDPOINT = 2005.1


def leakage_fraction(year: float) -> float:
    """Projected leakage/total power fraction for a (fractional) year."""
    if year < 1990 or year > 2030:
        raise ConfigurationError(
            f"ITRS projection is only meaningful near the roadmap years, got {year!r}"
        )
    return _LOGISTIC_CEILING / (
        1.0 + math.exp(-_LOGISTIC_RATE * (year - _LOGISTIC_MIDPOINT))
    )


def projection_series(
    start: int = 1999, end: int = 2009, step: int = 2
) -> List[Tuple[int, float]]:
    """The Figure 1 series: (year, leakage fraction) pairs."""
    if end < start or step <= 0:
        raise ConfigurationError(
            f"invalid projection range {(start, end, step)!r}"
        )
    return [(year, leakage_fraction(year)) for year in range(start, end + 1, step)]


def fit_error() -> float:
    """Maximum absolute deviation of the logistic fit from the anchors.

    Exposed so tests can pin the fit quality (must stay below 5 points).
    """
    return max(
        abs(leakage_fraction(year) - fraction)
        for year, fraction in ITRS_ANCHORS.items()
    )
