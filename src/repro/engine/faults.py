"""Deterministic fault injection for the execution engine.

Every degradation path in :mod:`~repro.engine.robustness` and
:mod:`~repro.engine.store` exists to survive rare events — worker
deaths, hung jobs, bit rot — that never occur in a normal test run.
This module makes those events *schedulable*, so each path is exercised
on purpose rather than by luck.  Faults are **never active by default**:
they are switched on only by the ``REPRO_FAULTS`` environment variable
or an explicit :class:`FaultPlan` handed to the engine, and injection is
a pure function of (job, attempt number), so a faulted run is exactly
reproducible.

``REPRO_FAULTS`` grammar — a comma-separated list of specs::

    spec    := kind ":" target [":" option "=" value]...
    kind    := crash | timeout | raise | hang | flap | garbage
             | corrupt | partial
             | conn-refused | conn-drop | stall | garble | partition
    target  := benchmark["@"scale]      ("*" wildcards either part);
               network kinds: a *host* name instead ("*" = every host)
    option  := attempt=N|*   (worker/result faults: which attempt fires,
                              default 1; flap defaults to every attempt;
                              network faults: which per-host connect or
                              dispatch ordinal fires — partition and
                              conn-refused default to every ordinal)
             | seconds=X     (crash/timeout/hang/stall: sleep before
                              acting, default 5 for timeout/hang/stall,
                              0 for crash)
             | times=N       (store faults: how many injections, default 1)

Examples: ``raise:gzip@*:attempt=1`` (gzip's first attempt raises, the
retry succeeds), ``crash:ammp@0.02:seconds=1`` (the worker running ammp
dies after 1 s), ``timeout:*:attempt=1:seconds=2`` (every job's first
attempt stalls 2 s), ``corrupt:gzip@*`` (gzip's cache entry is corrupted
right after it is written), ``partial:*:times=2`` (two entries are
truncated as if a non-atomic writer crashed mid-write).

Fault kinds and the degradation path each one exercises:

* ``crash``   — the worker process exits hard (``os._exit``), breaking
  the pool: exercises ``BrokenProcessPool`` handling and the
  harvest-then-finish-serially path.
* ``timeout`` — the worker sleeps ``seconds`` before simulating:
  exercises per-job timeout detection, requeueing, and zombie-slot
  accounting.
* ``raise``   — the attempt raises :class:`InjectedFault`: exercises
  per-job retry with backoff (pool and serial paths).
* ``hang``    — the worker goes silent: its heartbeat stops and it
  stalls ``seconds`` before continuing.  Exercises the supervisor's
  heartbeat watchdog (subprocess backend: the worker is killed and the
  job requeued) and the pool's progress watchdog.
* ``flap``    — the worker process exits hard on *every* matching
  attempt (unless ``attempt=N`` narrows it): exercises the per-backend
  circuit breaker, which must eventually stop handing work to a backend
  whose workers keep dying.
* ``garbage`` — the worker completes but returns a mangled result
  (negative cycle counts): exercises the invariant-validation gate,
  which must quarantine the result instead of caching it.
* ``corrupt`` — the just-written cache entry's payload bytes are
  flipped: exercises checksum validation and quarantine-on-corruption.
* ``partial`` — the just-written cache entry is truncated: exercises
  the torn-write path (header or checksum no longer parse).

``crash``, ``timeout``, ``hang`` and ``flap`` only make sense inside a
worker process; on the serial in-process path only ``raise`` faults are
injected (a serial crash would take the whole run down, which is the one
thing the engine promises never to do deliberately) plus ``garbage``
result mangling, which the validation gate turns into a retryable
failure.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import EngineError

#: Environment variable carrying the fault plan (inherited by workers).
ENV_FAULTS = "REPRO_FAULTS"

#: Exit status used by injected worker crashes (recognisable in logs).
CRASH_EXIT_CODE = 87

#: Exit status used by injected worker flapping (distinct from crashes).
FLAP_EXIT_CODE = 86

WORKER_KINDS = ("crash", "timeout", "raise", "hang", "flap")
RESULT_KINDS = ("garbage",)
STORE_KINDS = ("corrupt", "partial")
#: Framing-layer fault classes for the remote backend.  Their target
#: token names a *host* (``"*"`` wildcards), not a benchmark:
#:
#: * ``conn-refused`` — the matching connect attempt to the host fails;
#: * ``conn-drop``    — the connection is severed at the matching
#:   per-host dispatch ordinal (the in-flight job is lost);
#: * ``stall``        — the host stops delivering frames at the matching
#:   dispatch ordinal (heartbeats go silent; the watchdog must fire);
#: * ``garble``       — the frame for the matching dispatch is corrupted
#:   on the wire, so the remote reader sees undecodable bytes;
#: * ``partition``    — from the matching dispatch on, the host is
#:   unreachable for the rest of the run (drops now, refuses forever).
NETWORK_KINDS = ("conn-refused", "conn-drop", "stall", "garble", "partition")
KINDS = WORKER_KINDS + RESULT_KINDS + STORE_KINDS + NETWORK_KINDS

#: Which framing-layer event each network fault kind fires on.
NETWORK_EVENTS = {
    "conn-refused": "connect",
    "conn-drop": "dispatch",
    "stall": "dispatch",
    "garble": "dispatch",
    "partition": "dispatch",
}

#: Kinds whose pre-action sleep defaults to :data:`DEFAULT_FAULT_SECONDS`.
_SLEEPY_KINDS = ("timeout", "hang", "stall")

#: Default sleep for ``timeout``/``hang`` faults, seconds.
DEFAULT_FAULT_SECONDS = 5.0


class InjectedFault(Exception):
    """A deliberately injected transient job failure.

    Not a :class:`~repro.errors.ReproError`: to the engine it must look
    exactly like an unexpected worker exception, so injected faults flow
    through the same retry/fallback machinery as real ones.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what kind, which jobs, which attempt."""

    kind: str
    benchmark: str = "*"
    scale: str = "*"
    attempt: Optional[int] = 1  #: ``None`` = every attempt (``attempt=*``).
    seconds: Optional[float] = None  #: default: 5 for timeout, 0 for crash.
    times: int = 1
    host: str = "*"  #: Network kinds: which remote host ("*" = every).

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise EngineError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KINDS)}"
            )
        if self.attempt is not None and self.attempt < 1:
            raise EngineError(
                f"fault attempt must be at least 1, got {self.attempt!r}"
            )
        if self.seconds is not None and self.seconds < 0:
            raise EngineError(
                f"fault seconds must be non-negative, got {self.seconds!r}"
            )
        if self.times < 1:
            raise EngineError(
                f"fault times must be at least 1, got {self.times!r}"
            )

    @property
    def sleep_seconds(self) -> float:
        """The pre-action sleep: explicit, else 5 s for timeout, 0 otherwise."""
        if self.seconds is not None:
            return self.seconds
        return DEFAULT_FAULT_SECONDS if self.kind in _SLEEPY_KINDS else 0.0

    def matches_job(self, job) -> bool:
        """Whether this spec targets ``job`` (ignoring the attempt)."""
        if self.benchmark != "*" and self.benchmark != job.benchmark:
            return False
        if self.scale != "*" and float(self.scale) != float(job.scale):
            return False
        return True

    def matches(self, job, attempt: int) -> bool:
        """Whether this spec fires for ``job`` on attempt ``attempt``."""
        if not self.matches_job(job):
            return False
        return self.attempt is None or self.attempt == attempt

    def matches_network(self, host: str, event: str, ordinal: int) -> bool:
        """Whether this network spec fires for ``host`` at the given
        framing-layer ``event`` (``"connect"``/``"dispatch"``) ordinal.

        Ordinals are per-host counters (1-based) maintained by the
        remote backend, so network fault schedules are deterministic in
        dispatch order, never in wall time.
        """
        if self.kind not in NETWORK_KINDS:
            return False
        if NETWORK_EVENTS[self.kind] != event:
            return False
        if self.host != "*" and self.host != host:
            return False
        return self.attempt is None or self.attempt == ordinal

    def describe(self) -> str:
        """Canonical spec string (round-trips through the parser)."""
        if self.kind in NETWORK_KINDS:
            parts = [f"{self.kind}:{self.host}"]
            parts.append(
                f"attempt={'*' if self.attempt is None else self.attempt}"
            )
            if self.kind == "stall":
                parts.append(f"seconds={self.sleep_seconds:g}")
            return ":".join(parts)
        target = f"{self.benchmark}@{self.scale}" if self.scale != "*" else self.benchmark
        parts = [f"{self.kind}:{target}"]
        if self.kind in WORKER_KINDS + RESULT_KINDS:
            parts.append(f"attempt={'*' if self.attempt is None else self.attempt}")
            if self.kind in ("crash", "timeout", "hang", "flap"):
                parts.append(f"seconds={self.sleep_seconds:g}")
        else:
            parts.append(f"times={self.times}")
        return ":".join(parts)


def _parse_spec(text: str) -> FaultSpec:
    fields = [f.strip() for f in text.split(":")]
    if len(fields) < 2 or not fields[0] or not fields[1]:
        raise EngineError(
            f"fault spec {text!r} must look like 'kind:target[:option=value...]'"
        )
    kind, target = fields[0], fields[1]
    if kind in NETWORK_KINDS:
        # Network faults target a *host*, not a benchmark; the target
        # token is the host name verbatim ("*" matches every host).
        kwargs: Dict[str, object] = {"kind": kind, "host": target}
        for option in fields[2:]:
            key, sep, value = option.partition("=")
            if not sep or not value:
                raise EngineError(
                    f"fault spec {text!r}: option {option!r} must be "
                    "'key=value'"
                )
            try:
                if key == "attempt":
                    kwargs["attempt"] = None if value == "*" else int(value)
                elif key == "seconds":
                    kwargs["seconds"] = float(value)
                else:
                    raise EngineError(
                        f"fault spec {text!r}: unknown option {key!r} for a "
                        "network fault (expected attempt or seconds)"
                    )
            except ValueError:
                raise EngineError(
                    f"fault spec {text!r}: bad value {value!r} for {key!r}"
                ) from None
        if kind in ("partition", "conn-refused"):
            # Severed is severed: these stay in force from their trigger
            # point, so the natural default is "every ordinal".
            kwargs.setdefault("attempt", None)
        return FaultSpec(**kwargs)
    benchmark, _, scale = target.partition("@")
    kwargs = {
        "kind": kind,
        "benchmark": benchmark or "*",
        "scale": scale or "*",
    }
    if scale not in ("", "*"):
        try:
            float(scale)
        except ValueError:
            raise EngineError(
                f"fault spec {text!r}: scale must be a number or '*', got {scale!r}"
            ) from None
    for option in fields[2:]:
        key, sep, value = option.partition("=")
        if not sep or not value:
            raise EngineError(
                f"fault spec {text!r}: option {option!r} must be 'key=value'"
            )
        try:
            if key == "attempt":
                kwargs["attempt"] = None if value == "*" else int(value)
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            elif key == "times":
                kwargs["times"] = int(value)
            else:
                raise EngineError(
                    f"fault spec {text!r}: unknown option {key!r} "
                    "(expected attempt, seconds or times)"
                )
        except ValueError:
            raise EngineError(
                f"fault spec {text!r}: bad value {value!r} for {key!r}"
            ) from None
    if kind in STORE_KINDS and "attempt" in kwargs:
        raise EngineError(
            f"fault spec {text!r}: 'attempt' only applies to worker faults"
        )
    if kind not in STORE_KINDS and "times" in kwargs:
        raise EngineError(
            f"fault spec {text!r}: 'times' only applies to store faults"
        )
    if kind == "flap":
        # Flapping means dying over and over: default to every attempt.
        kwargs.setdefault("attempt", None)
    return FaultSpec(**kwargs)


def parse_fault_plan(text: str) -> "FaultPlan":
    """Parse a ``REPRO_FAULTS`` string into a :class:`FaultPlan`."""
    specs = [
        _parse_spec(chunk)
        for chunk in (c.strip() for c in text.split(","))
        if chunk
    ]
    if not specs:
        raise EngineError(f"fault plan {text!r} contains no specs")
    return FaultPlan(specs)


class FaultPlan:
    """A schedule of deterministic faults plus a log of what fired.

    Worker-side kinds (``crash``/``timeout``/``raise``) fire inside
    worker processes, which re-read ``REPRO_FAULTS`` from their
    inherited environment; store-side kinds (``corrupt``/``partial``)
    fire in the engine process right after a cache write and are counted
    here so ``times=N`` is exact.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = tuple(specs)
        self._store_fired: Dict[int, int] = {}
        #: Injection log (engine-process side), for telemetry.
        self.fired: List[str] = []

    def describe(self) -> str:
        """Canonical plan string for the run manifest."""
        return ",".join(spec.describe() for spec in self.specs)

    # ------------------------------------------------------------------
    # Worker-side injection
    # ------------------------------------------------------------------
    def inject_worker(self, job, attempt: int) -> None:
        """Apply worker faults for this (job, attempt); may not return."""
        for spec in self.specs:
            if spec.kind not in WORKER_KINDS or not spec.matches(job, attempt):
                continue
            if spec.kind in ("timeout", "hang"):
                time.sleep(spec.sleep_seconds)
            elif spec.kind == "crash":
                if spec.sleep_seconds:
                    time.sleep(spec.sleep_seconds)
                os._exit(CRASH_EXIT_CODE)
            elif spec.kind == "flap":
                if spec.sleep_seconds:
                    time.sleep(spec.sleep_seconds)
                os._exit(FLAP_EXIT_CODE)
            else:  # raise
                raise InjectedFault(
                    f"injected fault for {job.describe()} on attempt {attempt}"
                )

    def matches_hang(self, job, attempt: int) -> bool:
        """Whether a ``hang`` fault fires for this (job, attempt).

        The subprocess worker checks this *before* :meth:`inject_worker`
        so it can silence its heartbeat thread first — a truly hung
        worker stops beating, which is exactly what the watchdog detects.
        """
        return any(
            spec.kind == "hang" and spec.matches(job, attempt)
            for spec in self.specs
        )

    def mangle_result(self, job, attempt: int, annotated):
        """Apply ``garbage`` faults: poison an otherwise-complete result.

        The mangled result violates the model's invariants (negative
        cycle counts, intervals longer than the run) so the validation
        gate must reject it; everything else about the payload stays
        intact, proving the gate — not luck — caught it.
        """
        for spec in self.specs:
            if spec.kind == "garbage" and spec.matches(job, attempt):
                from dataclasses import replace

                poisoned = replace(
                    annotated.result, cycles=-1, stall_cycles=-1
                )
                return replace(annotated, result=poisoned)
        return annotated

    def inject_serial(self, job, attempt: int) -> None:
        """Apply ``raise`` faults on the in-process serial path."""
        for spec in self.specs:
            if spec.kind == "raise" and spec.matches(job, attempt):
                raise InjectedFault(
                    f"injected fault for {job.describe()} on attempt {attempt}"
                )

    # ------------------------------------------------------------------
    # Network-side injection (remote backend framing layer)
    # ------------------------------------------------------------------
    def network_spec(
        self, host: str, event: str, ordinal: int
    ) -> Optional[FaultSpec]:
        """The first network fault due for ``host`` at this event ordinal.

        ``event`` is ``"connect"`` (connection attempts) or
        ``"dispatch"`` (job sends); ``ordinal`` is the host's 1-based
        counter for that event.  The remote backend injects the returned
        spec at its framing layer and logs it via :meth:`record_network`.
        """
        for spec in self.specs:
            if spec.matches_network(host, event, ordinal):
                return spec
        return None

    def record_network(self, spec: FaultSpec, host: str, ordinal: int) -> None:
        """Log one framing-layer injection for telemetry."""
        self.fired.append(
            f"injected {spec.kind} for host {host} "
            f"({NETWORK_EVENTS[spec.kind]} #{ordinal})"
        )

    # ------------------------------------------------------------------
    # Store-side injection
    # ------------------------------------------------------------------
    def take_store_faults(self, job) -> List[FaultSpec]:
        """Store faults due for ``job``, consuming their ``times`` budget."""
        due = []
        for index, spec in enumerate(self.specs):
            if spec.kind not in STORE_KINDS or not spec.matches_job(job):
                continue
            if self._store_fired.get(index, 0) >= spec.times:
                continue
            self._store_fired[index] = self._store_fired.get(index, 0) + 1
            due.append(spec)
        return due


def apply_store_fault(store, key: str, spec: FaultSpec) -> Optional[str]:
    """Damage one just-written cache entry; returns a description or None.

    ``corrupt`` flips the tail of the payload so the checksum no longer
    matches; ``partial`` truncates the file as a crashed non-atomic
    writer would.  Stores without real files (``NullStore``) are left
    alone.
    """
    path_for = getattr(store, "path_for", None)
    if path_for is None:
        return None
    path = path_for(key)
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        if spec.kind == "corrupt":
            head, sep, payload = raw.partition(b"\n")
            if payload:
                flip = min(8, len(payload))
                mutated = payload[:-flip] + bytes(
                    b ^ 0xFF for b in payload[-flip:]
                )
            else:
                mutated = b"garbage"
            path.write_bytes(head + sep + mutated)
            return f"injected corruption into cache entry {key[:12]}"
        if spec.kind == "partial":
            path.write_bytes(raw[: max(1, len(raw) // 3)])
            return f"injected partial write for cache entry {key[:12]}"
    except OSError:
        return None
    return None


def active_plan(env: Optional[dict] = None) -> Optional[FaultPlan]:
    """The plan from ``REPRO_FAULTS``, or ``None`` when faults are off."""
    raw = (env if env is not None else os.environ).get(ENV_FAULTS)
    if not raw:
        return None
    return parse_fault_plan(raw)
