"""Content-addressed on-disk result cache.

Entries are stored one file per job key under a cache directory
(``~/.cache/repro-leakage`` by default, overridable via the
``REPRO_CACHE_DIR`` environment variable or an explicit path).  Each
file is a one-line JSON header followed by the pickled payload::

    {"schema_version": 1, "checksum": "<sha256 of payload bytes>"}\\n
    <pickle bytes>

Reads validate both fields before unpickling.  A schema-version mismatch
with an intact checksum is a lifecycle event — the substrate changed and
:data:`~repro.engine.jobs.SCHEMA_VERSION` was bumped — so the stale
entry is simply evicted.  A checksum mismatch, unparseable header, or
unpicklable payload is *corruption*: the damaged file is moved into a
``quarantine/`` subdirectory (preserving the evidence instead of
silently deleting it), counted, and reported as a miss so the engine
transparently recomputes.  Quarantine counts surface in the run manifest
and ``repro-leakage cache info``.  Writes
go through a temporary file and an atomic rename, so a crashed or
interrupted run never leaves a half-written entry behind; write failures
(read-only or full disk) degrade to running uncached rather than raising.

The cache can be size-bounded (``REPRO_CACHE_MAX_MB`` or the ``max_mb``
argument): after every write the least-recently-used entries — by file
mtime, which reads refresh — are evicted until the cache fits.  The
``repro-leakage cache {info,clear}`` subcommands inspect and empty it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

from ..errors import EngineError
from .jobs import SCHEMA_VERSION

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache size in megabytes.
ENV_CACHE_MAX_MB = "REPRO_CACHE_MAX_MB"

#: Default cache location when neither argument nor environment is set.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-leakage"

#: Subdirectory (under the cache) holding recorded traces and SimPoint
#: plans — durable *inputs*, unlike the recomputable result entries.
TRACES_SUBDIR = "traces"


def resolve_cache_dir(directory: Optional[os.PathLike] = None) -> Path:
    """Cache directory from the argument, the environment, or the default."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return DEFAULT_CACHE_DIR


def resolve_cache_limit(max_mb: Optional[float] = None) -> Optional[int]:
    """Cache size bound in bytes from the argument or ``REPRO_CACHE_MAX_MB``.

    ``None`` means unbounded (the default).  Invalid values raise
    :class:`~repro.errors.EngineError`, mirroring the other engine
    environment knobs.
    """
    if max_mb is None:
        raw = os.environ.get(ENV_CACHE_MAX_MB)
        if not raw:
            return None
        try:
            max_mb = float(raw)
        except ValueError:
            raise EngineError(
                f"{ENV_CACHE_MAX_MB} must be a number of megabytes, got {raw!r}"
            ) from None
        if max_mb <= 0:
            raise EngineError(
                f"{ENV_CACHE_MAX_MB} must be positive, got {max_mb!r}"
            )
    if max_mb <= 0:
        raise EngineError(f"cache size bound must be positive, got {max_mb!r}")
    return int(max_mb * 1024 * 1024)


class ResultStore:
    """Pickle-backed result cache keyed by job content address."""

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        schema_version: int = SCHEMA_VERSION,
        max_mb: Optional[float] = None,
    ) -> None:
        self.directory = resolve_cache_dir(directory)
        self.schema_version = schema_version
        self.max_bytes = resolve_cache_limit(max_mb)
        #: Counters exposed for telemetry and tests.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_errors = 0
        self.quarantined = 0
        #: One record per corrupt entry found, for the run manifest.
        self.corruption_events: list = []
        #: Cross-run sharing split of ``hits``: entries written by this
        #: store instance (i.e. this run) vs. entries that already existed
        #: — produced by an earlier run or another host sharing the cache.
        self.hits_from_this_run = 0
        self.hits_from_earlier_runs = 0
        self._written_keys: set = set()

    def path_for(self, key: str) -> Path:
        """The entry file backing one job key."""
        return self.directory / f"{key}.pkl"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are preserved for post-mortems."""
        return self.directory / "quarantine"

    @property
    def traces_dir(self) -> Path:
        """Where recorded traces and SimPoint plans live."""
        return self.directory / TRACES_SUBDIR

    @property
    def staging_dir(self) -> Path:
        """Where remote workers stage digest-fetched traces.

        Sibling of :attr:`traces_dir` under the cache root (see
        :mod:`repro.traces.fetch`); counted as trace usage so staged
        fetches are charged against ``REPRO_CACHE_MAX_MB`` like every
        other trace artifact.
        """
        from ..traces.fetch import STAGING_SUBDIR

        return self.directory / STAGING_SUBDIR

    def _trace_usage(self) -> tuple:
        """(file count, total bytes) of trace artifacts under the cache.

        Covers both recorded traces (``traces/``) and the remote
        trace-fetch staging directory (``remote-staging/``): both are
        derived artifacts living in the cache's budget envelope.
        """
        files = 0
        total = 0
        candidates = []
        for root in (self.traces_dir, self.staging_dir):
            try:
                candidates.extend(p for p in root.rglob("*") if p.is_file())
            except OSError:
                continue
        for path in candidates:
            try:
                total += path.stat().st_size
            except OSError:
                continue
            files += 1
        return files, total

    def get(self, key: str) -> Optional[Any]:
        """The stored payload, or ``None`` on miss/mismatch/corruption."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            header_line, _, payload = raw.partition(b"\n")
            header = json.loads(header_line)
            checksum = hashlib.sha256(payload).hexdigest()
            if header.get("checksum") != checksum:
                raise ValueError("payload checksum mismatch")
            if header.get("schema_version") != self.schema_version:
                # Intact but stale: a schema bump, not corruption.  Evict
                # so the slot is clean for the recomputed result.
                self.evict(key)
                self.misses += 1
                return None
            value = pickle.loads(payload)
        except Exception as error:
            # Truncation, bit rot, or an unpicklable payload: quarantine
            # the damaged file (evidence preserved, slot cleaned).
            self._quarantine(key, f"{type(error).__name__}: {error}")
            self.misses += 1
            return None
        self.hits += 1
        if key in self._written_keys:
            self.hits_from_this_run += 1
        else:
            self.hits_from_earlier_runs += 1
        try:
            os.utime(path)  # refresh mtime: reads keep hot entries resident
        except OSError:
            pass
        return value

    def put(self, key: str, value: Any) -> bool:
        """Store a payload atomically; returns whether the write landed."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {
                "schema_version": self.schema_version,
                "checksum": hashlib.sha256(payload).hexdigest(),
            }
        ).encode("utf-8")
        path = self.path_for(key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header + b"\n" + payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A broken cache must never break the run: fall back to
            # uncached operation and record the failure for telemetry.
            self.write_errors += 1
            return False
        self._written_keys.add(key)
        self._enforce_limit(protect=path)
        return True

    def _enforce_limit(self, protect: Optional[Path] = None) -> None:
        """Evict least-recently-used entries until the cache fits.

        The entry just written (``protect``) is never evicted, so a
        single oversized result cannot churn the cache forever.  Trace
        artifacts under ``traces/`` count *toward* the budget — they are
        real disk usage the ``REPRO_CACHE_MAX_MB`` bound must stay honest
        about — but are never evicted themselves: a recorded trace is an
        irreplaceable input, not a recomputable result.
        """
        if not self.max_bytes:
            return
        entries = []
        total = self._trace_usage()[1]
        try:
            candidates = list(self.directory.glob("*.pkl"))
        except OSError:
            return
        for path in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            if protect is None or path != protect:
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        while total > self.max_bytes and entries:
            _, size, path = entries.pop(0)
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            total -= size

    def evict(self, key: str) -> None:
        """Remove one entry (missing entries are fine)."""
        try:
            self.path_for(key).unlink()
            self.evictions += 1
        except OSError:
            pass

    def _quarantine(self, key: str, reason: str) -> None:
        """Move one corrupt entry aside and record the event."""
        self.corruption_events.append({"key": key, "reason": reason})
        source = self.path_for(key)
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(source, self.quarantine_dir / source.name)
            self.quarantined += 1
        except OSError:
            self.evict(key)  # cannot preserve the evidence; just drop it

    def clear(self) -> int:
        """Remove every entry (quarantined ones included); returns a count."""
        removed = 0
        try:
            entries = list(self.directory.glob("*.pkl")) + list(
                self.quarantine_dir.glob("*.pkl")
            )
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def info(self) -> dict:
        """Entry count, total bytes, and configuration — for ``cache info``."""
        entries = 0
        total = 0
        try:
            candidates = list(self.directory.glob("*.pkl"))
        except OSError:
            candidates = []
        for path in candidates:
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        try:
            quarantined = len(list(self.quarantine_dir.glob("*.pkl")))
        except OSError:
            quarantined = 0
        trace_files, trace_bytes = self._trace_usage()
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "quarantined": quarantined,
            "trace_files": trace_files,
            "trace_bytes": trace_bytes,
        }

    def describe(self) -> str:
        """Location string for telemetry output."""
        return str(self.directory)


class NullStore:
    """Cache bypass (``--no-cache``): every read misses, writes vanish."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_errors = 0
        self.quarantined = 0
        self.corruption_events: list = []
        self.hits_from_this_run = 0
        self.hits_from_earlier_runs = 0

    def get(self, key: str) -> None:
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> bool:
        return False

    def evict(self, key: str) -> None:
        pass

    def clear(self) -> int:
        return 0

    def describe(self) -> str:
        return "disabled"
