"""Pluggable worker backends behind the ``SimulationJob`` abstraction.

A :class:`WorkerBackend` turns a batch of pending jobs into a
:class:`~repro.engine.robustness.PoolReport` — completions, leftovers,
retries, infrastructure failures — without caring who calls it.  The
:class:`~repro.engine.supervise.Supervisor` chains backends so a run
degrades gracefully instead of failing:

``pool``
    the existing ``ProcessPoolExecutor`` path
    (:func:`~repro.engine.robustness.attempt_parallel`).  Fast and
    battle-tested, but its workers cannot be killed portably and do not
    beat — a hung worker burns its slot until ``REPRO_JOB_TIMEOUT`` or
    the progress watchdog gives the pool up.
``subprocess``
    pipe-connected ``python -m repro.engine.worker`` processes
    (:mod:`~repro.engine.worker`).  Each worker emits heartbeats every
    ``REPRO_HEARTBEAT`` seconds, so the backend detects a hung or dead
    worker *independently of any job timeout*, kills exactly that
    process, requeues its job through the retry backoff, and respawns a
    replacement.  The stepping stone to remote workers.
``remote``
    the same frame protocol shipped to peer hosts
    (:mod:`~repro.engine.remote`): SSH or loopback ``exec`` transports,
    per-host circuit breakers and heartbeat watchdogs, digest-verified
    trace fetch.  Degrades through ``pool`` then ``subprocess``.
``serial``
    no chain at all — the engine's in-process executor runs every job.
    Always available, and always the terminal fallback of the others.

Run with ``python -m repro.engine.backends --worker`` on a remote host
(or from the loopback ``exec`` transport) to enter the remote worker
loop; see :func:`repro.engine.remote.worker_main`.

Every backend runs the same deterministic
:func:`~repro.engine.jobs.execute_job`, so results are bit-identical
whichever backend — or degradation path — produced them.
"""

from __future__ import annotations

import heapq
import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from . import robustness
from .jobs import (
    SOURCE_FALLBACK,
    SOURCE_PARALLEL,
    SOURCE_SUBPROCESS,
    SOURCE_SUBPROCESS_FALLBACK,
    SimulationJob,
)
from .retry import RetryPolicy, _env_float
from .robustness import PoolReport
from .worker import DEFAULT_HEARTBEAT_SECONDS, read_frame, write_frame

#: Environment variable selecting the primary backend.
ENV_BACKEND = "REPRO_BACKEND"

#: Environment variable: subprocess-worker heartbeat interval (seconds;
#: 0 disables heartbeats and with them hang detection).
ENV_HEARTBEAT = "REPRO_HEARTBEAT"

#: Environment variable: watchdog patience in seconds — how long a
#: backend tolerates silence (no heartbeat / no progress) before it
#: declares a worker hung.  0 or unset leaves each backend's default.
ENV_WATCHDOG = "REPRO_WATCHDOG"

#: Valid ``--backend`` / ``REPRO_BACKEND`` values.  ``remote`` sits at
#: the top of the full degradation ladder (remote -> pool -> subprocess
#: -> serial); the rest are listed in their own degradation order.
BACKEND_NAMES = ("remote", "pool", "subprocess", "serial")

#: Grace period for a worker to exit after the "exit" frame.
_EXIT_GRACE_SECONDS = 0.5


def resolve_backend_name(value: Optional[str] = None) -> str:
    """Backend name from the argument, ``REPRO_BACKEND``, or ``pool``."""
    if value is None:
        value = os.environ.get(ENV_BACKEND) or None
    if value is None:
        return "pool"
    name = str(value).strip().lower()
    if name not in BACKEND_NAMES:
        raise EngineError(
            f"{ENV_BACKEND} / --backend must be one of "
            f"{', '.join(BACKEND_NAMES)}, got {value!r}"
        )
    return name


def default_heartbeat_interval() -> float:
    """Heartbeat interval from ``REPRO_HEARTBEAT`` (default 0.5 s)."""
    value = _env_float(ENV_HEARTBEAT, minimum=0.0)
    return DEFAULT_HEARTBEAT_SECONDS if value is None else value


def default_watchdog() -> Optional[float]:
    """Watchdog patience from ``REPRO_WATCHDOG``; ``None`` when unset."""
    value = _env_float(ENV_WATCHDOG, minimum=0.0)
    return None if not value else value


class WorkerBackend:
    """One way to execute pending jobs; chained by the supervisor.

    ``source`` labels completions when the backend ran as the primary,
    ``fallback_source`` when it picked up another backend's leftovers.
    ``run`` receives ``start_attempts`` — attempts each job already
    consumed upstream — and must continue that global numbering in the
    ``PoolReport`` it returns, so deterministic fault schedules and the
    retry budget span the whole degradation path.
    """

    name: str = "backend"
    source: str = SOURCE_PARALLEL
    fallback_source: str = SOURCE_FALLBACK

    def worth_starting(self, pending: int) -> bool:
        """Whether spinning this backend up beats running serially."""
        return True

    def run(
        self,
        jobs: Sequence[SimulationJob],
        start_attempts: Dict[SimulationJob, int],
        policy: RetryPolicy,
    ) -> PoolReport:
        raise NotImplementedError


class PoolBackend(WorkerBackend):
    """The ``ProcessPoolExecutor`` path, wrapped as a backend."""

    name = "pool"
    source = SOURCE_PARALLEL
    fallback_source = SOURCE_PARALLEL  # the pool is only ever primary

    def __init__(
        self,
        max_workers: int,
        timeout: Optional[float] = None,
        watchdog: Optional[float] = None,
    ) -> None:
        self.max_workers = max_workers
        self.timeout = timeout
        self.watchdog = watchdog

    def worth_starting(self, pending: int) -> bool:
        return self.max_workers > 1 and pending > 1

    def run(self, jobs, start_attempts, policy) -> PoolReport:
        # Attribute lookup keeps the tests' monkeypatch seam on
        # robustness.attempt_parallel working.
        return robustness.attempt_parallel(
            jobs,
            self.max_workers,
            self.timeout,
            policy=policy,
            watchdog=self.watchdog,
        )


class _Worker:
    """One pipe-connected subprocess worker and its reader thread."""

    def __init__(
        self, heartbeat: float, inbox: "queue.Queue"
    ) -> None:
        # -c instead of -m: runpy would re-execute repro.engine.worker
        # on top of the already-imported module and warn about it.
        command = [
            sys.executable,
            "-u",
            "-c",
            "import sys; from repro.engine.worker import main; "
            "sys.exit(main(sys.argv[1:]))",
            "--heartbeat",
            str(heartbeat),
        ]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        self.proc = subprocess.Popen(  # noqa: S603 — our own interpreter
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        #: ``(job, attempt, dispatched_at)`` while busy, else ``None``.
        self.current: Optional[Tuple[SimulationJob, int, float]] = None
        self.last_seen = time.monotonic()
        self.dead = False
        reader = threading.Thread(
            target=self._read_loop,
            args=(inbox,),
            name=f"worker-reader-{self.proc.pid}",
            daemon=True,
        )
        reader.start()

    def _read_loop(self, inbox: "queue.Queue") -> None:
        while True:
            frame = read_frame(self.proc.stdout)
            if frame is None:
                inbox.put((self, "eof", None))
                return
            self.last_seen = time.monotonic()
            inbox.put((self, frame[0], frame[1]))

    def send_job(self, job: SimulationJob, attempt: int) -> bool:
        self.current = (job, attempt, time.monotonic())
        self.last_seen = time.monotonic()
        try:
            write_frame(self.proc.stdin, "job", (job, attempt))
        except (OSError, ValueError):
            self.current = None
            return False
        return True

    def kill(self) -> None:
        """Hard-kill the worker (unlike pool workers, we can)."""
        self.dead = True
        self.current = None
        try:
            self.proc.kill()
        except OSError:
            pass

    def close(self) -> None:
        self.dead = True
        if self.proc.poll() is None:
            try:
                write_frame(self.proc.stdin, "exit")
                self.proc.stdin.close()
            except (OSError, ValueError):
                pass
            try:
                self.proc.wait(timeout=_EXIT_GRACE_SECONDS)
            except subprocess.TimeoutExpired:
                self.kill()
        try:
            self.proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:  # pragma: no cover — kernel lag
            pass


class SubprocessBackend(WorkerBackend):
    """Heartbeat-supervised subprocess workers over a frame protocol.

    The supervision loop mirrors :func:`attempt_parallel` — a ready
    queue, a deterministic backoff heap, per-job requeue — but because
    each worker is an ordinary child process with its own pipes, the
    backend can *watch* and *kill* individual workers: a worker whose
    heartbeat goes silent for ``watchdog`` seconds (default
    ``max(8 × heartbeat, 4 s)``) is declared hung, killed, its job
    requeued, and a replacement spawned.  Worker deaths are contained
    and respawned instead of abandoning the whole backend, but each one
    is reported as an infrastructure failure so the circuit breaker
    still opens on a genuinely sick host.
    """

    name = "subprocess"
    source = SOURCE_SUBPROCESS
    fallback_source = SOURCE_SUBPROCESS_FALLBACK

    def __init__(
        self,
        max_workers: int,
        timeout: Optional[float] = None,
        heartbeat: Optional[float] = None,
        watchdog: Optional[float] = None,
    ) -> None:
        self.max_workers = max(1, max_workers)
        self.timeout = timeout
        self.heartbeat = (
            heartbeat if heartbeat is not None else default_heartbeat_interval()
        )
        if watchdog is not None:
            self.hang_after: Optional[float] = watchdog
        elif self.heartbeat > 0:
            self.hang_after = max(8.0 * self.heartbeat, 4.0)
        else:
            self.hang_after = None  # no beats, no hang detection

    def run(self, jobs, start_attempts, policy) -> PoolReport:
        report = PoolReport()
        by_key = {job.key(): job for job in jobs}
        inbox: "queue.Queue" = queue.Queue()
        ready: deque = deque(
            (job, start_attempts.get(job, 0) + 1) for job in jobs
        )
        delayed: List[Tuple[float, int, SimulationJob, int]] = []
        sequence = 0
        workers: List[_Worker] = []
        # Bounds respawns: every legitimate dispatch plus one initial
        # worker per slot; a crash-looping host cannot fork forever.
        spawn_budget = policy.max_attempts * len(jobs) + self.max_workers

        def spawn() -> Optional[_Worker]:
            nonlocal spawn_budget
            if spawn_budget <= 0:
                report.notes.append(
                    "subprocess worker respawn budget exhausted; "
                    "finishing elsewhere"
                )
                report.infra_failures.append("respawn budget exhausted")
                return None
            spawn_budget -= 1
            try:
                worker = _Worker(self.heartbeat, inbox)
            except (OSError, ValueError) as error:
                report.notes.append(
                    f"subprocess worker failed to start ({error}); "
                    "finishing elsewhere"
                )
                report.infra_failures.append(
                    f"worker failed to start: {error}"
                )
                return None
            workers.append(worker)
            return worker

        def record_retry(job, attempt, reason, delay) -> None:
            report.retries.append(
                {
                    "job": job.describe(),
                    "key": job.key(),
                    "failed_attempt": attempt,
                    "next_attempt": attempt + 1,
                    "reason": reason,
                    "backoff_seconds": delay,
                    "where": "subprocess",
                }
            )

        def requeue(job, attempt, reason, what) -> None:
            nonlocal sequence
            if policy.retries_left(attempt):
                delay = policy.delay_before(attempt + 1)
                sequence += 1
                heapq.heappush(
                    delayed,
                    (time.monotonic() + delay, sequence, job, attempt + 1),
                )
                record_retry(job, attempt, reason, delay)
                report.notes.append(
                    f"job {job.describe()} {what}; retrying "
                    f"(attempt {attempt + 1}/{policy.max_attempts}) "
                    f"in {delay:g}s"
                )
            else:
                report.exhausted.append(job)
                report.notes.append(
                    f"job {job.describe()} {what}; retries exhausted after "
                    f"{attempt} attempt(s), finishing serially"
                )

        def alive() -> List[_Worker]:
            return [w for w in workers if not w.dead]

        for _ in range(min(self.max_workers, len(jobs))):
            if spawn() is None:
                break
        if not alive():
            report.leftovers = list(jobs)
            return report

        try:
            while ready or delayed or any(w.current for w in alive()):
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, job, attempt = heapq.heappop(delayed)
                    ready.append((job, attempt))
                for worker in alive():
                    if not ready:
                        break
                    if worker.current is not None:
                        continue
                    job, attempt = ready.popleft()
                    if job in report.completed:
                        continue  # a killed worker's result raced in late
                    if worker.send_job(job, attempt):
                        report.attempts[job] = max(
                            attempt, report.attempts.get(job, 0)
                        )
                    else:
                        # The pipe is gone: the worker is dead in all but
                        # name.  Put the job back (its attempt never ran).
                        worker.dead = True
                        report.infra_failures.append(
                            f"worker {worker.proc.pid} pipe closed before "
                            f"{job.describe()} could be dispatched"
                        )
                        ready.appendleft((job, attempt))
                busy = [w for w in alive() if w.current is not None]
                if not busy:
                    if ready:
                        # Jobs want slots but every worker died: respawn
                        # (bounded by the budget) or give up.
                        if alive() and len(alive()) >= min(
                            self.max_workers, len(ready)
                        ):
                            continue
                        if spawn() is None and not alive():
                            break
                        continue
                    if delayed:  # only backoff waits remain
                        time.sleep(
                            max(0.0, delayed[0][0] - time.monotonic())
                        )
                        continue
                    break
                horizon: List[float] = []
                if self.timeout is not None:
                    horizon.extend(
                        w.current[2] + self.timeout for w in busy
                    )
                if self.hang_after is not None:
                    horizon.extend(
                        w.last_seen + self.hang_after for w in busy
                    )
                if delayed:
                    horizon.append(delayed[0][0])
                block = (
                    max(0.0, min(horizon) - time.monotonic()) + 0.01
                    if horizon
                    else None
                )
                try:
                    sender, kind, payload = inbox.get(timeout=block)
                except queue.Empty:
                    pass
                else:
                    self._handle_frame(
                        sender, kind, payload, by_key, report, requeue, spawn
                    )
                self._watchdog_pass(report, requeue, spawn, workers)
        finally:
            for worker in workers:
                worker.close()
        report.leftovers = [
            job for job in jobs if job not in report.completed
        ]
        return report

    def _handle_frame(
        self, sender, kind, payload, by_key, report, requeue, spawn
    ) -> None:
        if kind == "result":
            job = by_key.get(payload.get("key"))
            if job is not None and job not in report.completed:
                report.completed[job] = (
                    payload["payload"],
                    payload["wall"],
                )
            if sender.current is not None and sender.current[0] is job:
                sender.current = None
        elif kind == "error":
            if sender.current is None:
                return  # raced with a watchdog kill; already requeued
            job, attempt, _ = sender.current
            sender.current = None
            requeue(
                job,
                attempt,
                f"{payload.get('kind')}: {payload.get('message')}",
                f"raised in a worker ({payload.get('kind')})",
            )
        elif kind == "eof":
            if sender.dead:
                return  # killed on purpose; its job is already requeued
            sender.dead = True
            try:
                # EOF on the pipe can precede process teardown; wait
                # briefly so the note carries the real exit code.
                exit_code = sender.proc.wait(timeout=1.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                exit_code = sender.proc.poll()
            if sender.current is not None:
                job, attempt, _ = sender.current
                sender.current = None
                report.infra_failures.append(
                    f"worker {sender.proc.pid} died "
                    f"(exit {exit_code}) running {job.describe()}"
                )
                report.notes.append(
                    f"worker {sender.proc.pid} died (exit {exit_code}) "
                    f"running {job.describe()}; respawning and requeuing"
                )
                requeue(
                    job,
                    attempt,
                    f"worker died (exit {exit_code})",
                    "lost its worker",
                )
                spawn()
        # "ready" and "heartbeat" frames only refresh last_seen, which
        # the reader thread already did.

    def _watchdog_pass(self, report, requeue, spawn, workers) -> None:
        now = time.monotonic()
        for worker in workers:
            if worker.dead or worker.current is None:
                continue
            job, attempt, dispatched = worker.current
            gap = now - worker.last_seen
            if self.hang_after is not None and gap >= self.hang_after:
                report.heartbeats.append(
                    {
                        "backend": self.name,
                        "kind": "hang",
                        "worker": worker.proc.pid,
                        "gap_seconds": round(gap, 3),
                        "job": job.describe(),
                    }
                )
                report.notes.append(
                    f"worker {worker.proc.pid} went silent for {gap:.1f}s "
                    f"running {job.describe()}; killing it and requeuing"
                )
                report.infra_failures.append(
                    f"worker {worker.proc.pid} heartbeat lost "
                    f"({gap:.1f}s) running {job.describe()}"
                )
                worker.kill()
                requeue(
                    job,
                    attempt,
                    f"heartbeat lost for {gap:.1f}s",
                    "went silent (hung worker killed)",
                )
                spawn()
            elif (
                self.timeout is not None
                and now - dispatched >= self.timeout
            ):
                # A job-level timeout, not an infrastructure failure —
                # and this backend can actually reclaim the slot.
                worker.kill()
                requeue(
                    job,
                    attempt,
                    f"timeout after {self.timeout:g}s",
                    f"exceeded the {self.timeout:g}s timeout",
                )
                spawn()


def build_chain(
    name: str,
    max_workers: int,
    timeout: Optional[float] = None,
    heartbeat: Optional[float] = None,
    watchdog: Optional[float] = None,
    hosts: Optional[Sequence[object]] = None,
) -> List[WorkerBackend]:
    """The degradation chain for a primary backend choice.

    ``remote`` degrades through ``pool`` then ``subprocess``; ``pool``
    degrades through ``subprocess``; ``subprocess`` stands alone;
    ``serial`` is the empty chain.  The engine's in-process serial
    executor is always the terminal stage after the chain.  ``hosts``
    (parsed :class:`~repro.engine.remote.HostSpec` entries) is required
    for — and only consulted by — the remote rung.
    """
    name = resolve_backend_name(name)
    if name == "serial":
        return []
    subprocess_backend = SubprocessBackend(
        max_workers, timeout, heartbeat=heartbeat, watchdog=watchdog
    )
    if name == "subprocess":
        return [subprocess_backend]
    pool_backend = PoolBackend(max_workers, timeout, watchdog=watchdog)
    if name == "pool":
        return [pool_backend, subprocess_backend]
    from .remote import ENV_HOSTS, RemoteBackend

    if not hosts:
        raise EngineError(
            "the remote backend needs at least one host "
            f"(--hosts / {ENV_HOSTS})"
        )
    remote_backend = RemoteBackend(
        hosts, timeout, heartbeat=heartbeat, watchdog=watchdog
    )
    return [remote_backend, pool_backend, subprocess_backend]


if __name__ == "__main__":  # pragma: no cover — exercised over pipes
    import argparse as _argparse

    _parser = _argparse.ArgumentParser(prog="repro.engine.backends")
    _parser.add_argument(
        "--worker",
        action="store_true",
        help="run the remote worker loop over stdin/stdout frames",
    )
    _options, _rest = _parser.parse_known_args()
    if not _options.worker:
        _parser.error("only --worker mode is runnable; see repro.engine.remote")
    from .remote import worker_main

    sys.exit(worker_main(_rest))
