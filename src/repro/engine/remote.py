"""Remote worker backend: per-host fault domains over the frame protocol.

:class:`RemoteBackend` ships :class:`~repro.engine.jobs.SimulationJob`\\ s
to peer hosts speaking exactly the length-framed pipe protocol the
heartbeat-subprocess backend already speaks (:mod:`~repro.engine.worker`)
— the remote end runs ``python -m repro.engine.backends --worker`` from
a checked-out tree.  Two transports exist:

``ssh:<[user@]host>[:<dir>]``
    the real thing: an ``ssh`` child process whose stdin/stdout carry
    the frames; ``<dir>`` is the repo checkout on the remote (the worker
    starts with ``PYTHONPATH=src`` there).
``exec[:<label>]``
    a loopback fake: a local subprocess posing as a remote host, running
    the identical remote worker loop.  CI exercises every remote path —
    connect, dispatch, trace fetch, network faults, host death — with no
    SSH dependency, and the framing layer cannot tell the difference.

Every host is its own *fault domain*:

* **heartbeats** flow through the same watchdog logic the subprocess
  backend uses — a host silent for ``watchdog`` seconds is declared
  hung, its connection killed, its job requeued;
* a per-host :class:`~repro.engine.supervise.CircuitBreaker` gates
  dispatch.  Its clock is the host's *dispatch-opportunity counter*,
  not wall time, so probe scheduling is deterministic: an open host
  breaker skips a fixed number of opportunities, then half-opens and
  probes.  Failed probes escalate the backoff (satellite fix in
  :mod:`~repro.engine.supervise`);
* a per-host :class:`~repro.engine.supervise.FlapCounter` rests a host
  whose workers keep dying; the count decays over quiet periods so one
  early flap does not quarantine a host forever;
* connects, dispatches and results are **deadline-bounded**
  (``REPRO_REMOTE_CONNECT_TIMEOUT``, ``REPRO_REMOTE_DEADLINE``);
* re-dispatch is **idempotent by content address**: jobs are keyed by
  :meth:`SimulationJob.key`, late results from a killed host are
  dropped once a completion is recorded, and cache publication happens
  exactly once, controller-side, through the store's atomic writes.

``.rtr`` trace dependencies are fetched *on demand, by content digest*
(:mod:`repro.traces.fetch`): the worker asks for the trace's digest,
serves itself from its staging directory when possible, and otherwise
streams the bytes over dedicated frames, verifying chunk checksums and
the whole-trace digest before first use.

Network fault classes from ``REPRO_FAULTS`` (``conn-refused``,
``conn-drop``, ``stall``, ``garble``, ``partition``) are injected here,
at the framing layer, keyed by per-host connect/dispatch ordinals — so
every ladder rung is testable deterministically without real hosts.
"""

from __future__ import annotations

import heapq
import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from .faults import active_plan
from .jobs import SOURCE_REMOTE, SOURCE_REMOTE_FALLBACK, SimulationJob
from .retry import RetryPolicy, _env_float
from .robustness import PoolReport
from .supervise import CircuitBreaker, FlapCounter
from .worker import DEFAULT_HEARTBEAT_SECONDS, read_frame, write_frame

#: Environment variable: comma-separated remote host specs.
ENV_HOSTS = "REPRO_HOSTS"

#: Environment variable: seconds to wait for a host's ``ready`` frame.
ENV_REMOTE_CONNECT_TIMEOUT = "REPRO_REMOTE_CONNECT_TIMEOUT"

#: Environment variable: per-dispatch result deadline, seconds.
ENV_REMOTE_DEADLINE = "REPRO_REMOTE_DEADLINE"

#: Environment variable: ``always`` forces remote workers to fetch
#: traces by digest even when the path resolves locally (loopback CI
#: uses this to exercise the fetch path on one machine).
ENV_REMOTE_FETCH = "REPRO_REMOTE_FETCH"

#: Default connect timeout, seconds.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Dispatch opportunities an open host breaker skips before half-open.
#: Counted, not timed: probe scheduling is deterministic in dispatch
#: order (the supervisor-level backend breakers stay wall-clock based).
PROBE_OPPORTUNITIES = 4

#: Decayed flap count at which a host is rested (it returns once the
#: FlapCounter decays back under the limit).
FLAP_QUARANTINE = 3

#: Seconds of flap-free quiet after which a host's flap count halves.
DEFAULT_FLAP_DECAY_SECONDS = 30.0

#: Grace period for a remote worker to exit after the "exit" frame.
_EXIT_GRACE_SECONDS = 0.5


def default_connect_timeout() -> float:
    """Connect timeout from ``REPRO_REMOTE_CONNECT_TIMEOUT`` (default 10 s)."""
    value = _env_float(ENV_REMOTE_CONNECT_TIMEOUT, minimum=0.0)
    return DEFAULT_CONNECT_TIMEOUT if value is None else value


def default_remote_deadline() -> Optional[float]:
    """Result deadline from ``REPRO_REMOTE_DEADLINE``; ``None`` when unset."""
    value = _env_float(ENV_REMOTE_DEADLINE, minimum=0.0)
    return None if not value else value


@dataclass(frozen=True)
class HostSpec:
    """One remote host: transport, label, and how to reach it."""

    transport: str  #: ``"exec"`` (loopback subprocess) or ``"ssh"``.
    name: str  #: Label used by breakers, telemetry and fault specs.
    address: str = ""  #: ssh target (``user@host``), empty for exec.
    directory: str = ""  #: Remote checkout directory, empty = preinstalled.

    def describe(self) -> str:
        if self.transport == "exec":
            return f"exec:{self.name}"
        base = f"ssh:{self.address}"
        return f"{base}:{self.directory}" if self.directory else base


def parse_hosts(value: Optional[str] = None) -> List[HostSpec]:
    """Parse ``--hosts`` / ``REPRO_HOSTS`` into :class:`HostSpec` list.

    Grammar, comma-separated::

        host := "exec" [":" label]          (loopback fake host)
              | ["ssh:"] [user "@"] name [":" dir]   (real SSH host)

    Bare ``exec`` entries are labelled ``exec0``, ``exec1``, ... by
    position.  Labels must be unique — they key breakers, fault specs
    and the manifest's fault-domain profile.
    """
    if value is None:
        value = os.environ.get(ENV_HOSTS, "")
    specs: List[HostSpec] = []
    for token in (t.strip() for t in str(value).split(",")):
        if not token:
            continue
        if token == "exec" or token.startswith("exec:"):
            label = token[5:] if token.startswith("exec:") else ""
            if token.startswith("exec:") and not label:
                raise EngineError(
                    f"host spec {token!r}: 'exec:' needs a label "
                    "(or use bare 'exec')"
                )
            specs.append(
                HostSpec("exec", label or f"exec{len(specs)}")
            )
            continue
        body = token[4:] if token.startswith("ssh:") else token
        address, _, directory = body.partition(":")
        if not address:
            raise EngineError(
                f"host spec {token!r}: expected 'exec[:label]' or "
                "'[ssh:][user@]host[:dir]'"
            )
        name = address.rpartition("@")[2]
        specs.append(HostSpec("ssh", name, address, directory))
    names = [spec.name for spec in specs]
    for name in names:
        if names.count(name) > 1:
            raise EngineError(
                f"duplicate remote host label {name!r}; labels key "
                "per-host breakers and fault specs and must be unique"
            )
    return specs


def _spawn_command(spec: HostSpec, heartbeat: float) -> Tuple[List[str], Dict]:
    """The argv + environment that starts this host's remote worker."""
    if spec.transport == "exec":
        command = [
            sys.executable,
            "-u",
            "-c",
            "import sys; from repro.engine.remote import worker_main; "
            "sys.exit(worker_main(sys.argv[1:]))",
            "--heartbeat",
            str(heartbeat),
        ]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root
            if not existing
            else package_root + os.pathsep + existing
        )
        return command, env
    remote = f"python3 -m repro.engine.backends --worker --heartbeat {heartbeat}"
    if spec.directory:
        remote = f"cd {spec.directory} && PYTHONPATH=src {remote}"
    return (
        ["ssh", "-o", "BatchMode=yes", spec.address, remote],
        dict(os.environ),
    )


class _Connection:
    """One live remote worker: process, pipes, reader thread."""

    def __init__(
        self, spec: HostSpec, heartbeat: float, inbox: "queue.Queue"
    ) -> None:
        self.spec = spec
        command, env = _spawn_command(spec, heartbeat)
        self.proc = subprocess.Popen(  # noqa: S603 — our own worker cmd
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        #: ``(job, attempt, dispatched_at)`` while busy, else ``None``.
        self.current: Optional[Tuple[SimulationJob, int, float]] = None
        self.last_seen = time.monotonic()
        self.dead = False
        #: Injected ``stall``: the reader drops every further frame, so
        #: the host looks alive but silent — exactly what a stalled
        #: network path looks like to the watchdog.
        self.stalled = False
        self.ready = threading.Event()
        reader = threading.Thread(
            target=self._read_loop,
            args=(inbox,),
            name=f"remote-reader-{spec.name}",
            daemon=True,
        )
        reader.start()

    def _read_loop(self, inbox: "queue.Queue") -> None:
        while True:
            frame = read_frame(self.proc.stdout)
            if frame is None:
                if not self.stalled:
                    inbox.put((self, "eof", None))
                return
            if self.stalled:
                continue  # partitioned reader: frames never arrive
            self.last_seen = time.monotonic()
            if frame[0] == "ready":
                self.ready.set()
            inbox.put((self, frame[0], frame[1]))

    def await_ready(self, timeout: float) -> bool:
        return self.ready.wait(timeout)

    def send(self, kind: str, payload=None) -> bool:
        try:
            write_frame(self.proc.stdin, kind, payload)
        except (OSError, ValueError):
            return False
        return True

    def send_garbage(self) -> None:
        """Write deliberately undecodable bytes (injected ``garble``)."""
        try:
            self.proc.stdin.write(b"\x00\x00\x00\x08notpickle")
            self.proc.stdin.flush()
        except (OSError, ValueError):
            pass

    def kill(self) -> None:
        self.dead = True
        self.current = None
        try:
            self.proc.kill()
        except OSError:
            pass

    def close(self) -> None:
        self.dead = True
        if self.proc.poll() is None:
            try:
                write_frame(self.proc.stdin, "exit")
                self.proc.stdin.close()
            except (OSError, ValueError):
                pass
            try:
                self.proc.wait(timeout=_EXIT_GRACE_SECONDS)
            except subprocess.TimeoutExpired:
                self.kill()
        try:
            self.proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:  # pragma: no cover — kernel lag
            pass


class _HostState:
    """Everything the backend tracks about one host, across runs."""

    def __init__(
        self,
        spec: HostSpec,
        threshold: int,
        flap_decay: float,
    ) -> None:
        self.spec = spec
        self.conn: Optional[_Connection] = None
        #: Deterministic breaker clock: dispatch opportunities seen.
        self.opportunities = 0
        self.connects = 0  #: connect ordinal (1-based in fault specs).
        self.dispatches = 0  #: dispatch ordinal (1-based in fault specs).
        self.partitioned = False
        self.transitions: List[Dict] = []
        self.breaker = CircuitBreaker(
            f"host:{spec.name}",
            threshold,
            float(PROBE_OPPORTUNITIES),
            self.transitions,
            clock=lambda: float(self.opportunities),
        )
        self.flaps = FlapCounter(flap_decay)
        self.rested_noted = False
        self.stats: Dict[str, float] = {
            "dispatches": 0,
            "completions": 0,
            "requeues": 0,
            "connects": 0,
            "connect_failures": 0,
            "flaps": 0,
            "trace_fetches": 0,
            "trace_bytes_sent": 0,
        }
        self._reported_transitions = 0

    def take_new_transitions(self) -> List[Dict]:
        """Breaker transitions not yet reported to a PoolReport."""
        fresh = self.transitions[self._reported_transitions:]
        self._reported_transitions = len(self.transitions)
        return [dict(t) for t in fresh]


class RemoteBackend:
    """Frame-protocol jobs on peer hosts, one fault domain per host.

    Satisfies the :class:`~repro.engine.backends.WorkerBackend`
    contract; the supervisor chains it ahead of the local pool, so the
    degradation ladder reads ``remote -> pool -> subprocess -> serial``.
    Host state (breakers, flap counters, partition flags) persists
    across ``run`` calls, exactly like the supervisor's backend
    breakers: a host that proved sick stays benched between dispatches.
    """

    name = "remote"
    source = SOURCE_REMOTE
    fallback_source = SOURCE_REMOTE_FALLBACK

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        timeout: Optional[float] = None,
        heartbeat: Optional[float] = None,
        watchdog: Optional[float] = None,
        connect_timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        threshold: Optional[int] = None,
        flap_decay: float = DEFAULT_FLAP_DECAY_SECONDS,
    ) -> None:
        if not hosts:
            raise EngineError(
                f"the remote backend needs at least one host "
                f"(--hosts / {ENV_HOSTS})"
            )
        from .supervise import default_breaker_threshold

        self.heartbeat = (
            heartbeat
            if heartbeat is not None
            else DEFAULT_HEARTBEAT_SECONDS
        )
        if watchdog is not None:
            self.hang_after: Optional[float] = watchdog
        elif self.heartbeat > 0:
            self.hang_after = max(8.0 * self.heartbeat, 4.0)
        else:
            self.hang_after = None
        self.connect_timeout = (
            connect_timeout
            if connect_timeout is not None
            else default_connect_timeout()
        )
        env_deadline = default_remote_deadline()
        self.deadline = (
            deadline
            if deadline is not None
            else env_deadline if env_deadline is not None else timeout
        )
        threshold = (
            threshold
            if threshold is not None
            else default_breaker_threshold()
        )
        self._hosts: Dict[str, _HostState] = {}
        for spec in hosts:
            self._hosts[spec.name] = _HostState(spec, threshold, flap_decay)

    def worth_starting(self, pending: int) -> bool:
        return any(
            not state.partitioned for state in self._hosts.values()
        )

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def run(self, jobs, start_attempts, policy: RetryPolicy) -> PoolReport:
        report = PoolReport()
        plan = active_plan()
        by_key = {job.key(): job for job in jobs}
        inbox: "queue.Queue" = queue.Queue()
        ready: deque = deque(
            (job, start_attempts.get(job, 0) + 1) for job in jobs
        )
        delayed: List[Tuple[float, int, SimulationJob, int]] = []
        sequence = 0
        connections: List[_Connection] = []
        # Bounds re-dispatches the way the subprocess backend bounds
        # respawns: a flapping fleet cannot spin forever.
        dispatch_budget = policy.max_attempts * len(jobs) + len(self._hosts)

        def host_of(conn: _Connection) -> _HostState:
            return self._hosts[conn.spec.name]

        def record_retry(job, attempt, reason, delay) -> None:
            report.retries.append(
                {
                    "job": job.describe(),
                    "key": job.key(),
                    "failed_attempt": attempt,
                    "next_attempt": attempt + 1,
                    "reason": reason,
                    "backoff_seconds": delay,
                    "where": "remote",
                }
            )

        def requeue(job, attempt, reason, what) -> None:
            nonlocal sequence
            if policy.retries_left(attempt):
                delay = policy.delay_before(attempt + 1)
                sequence += 1
                heapq.heappush(
                    delayed,
                    (time.monotonic() + delay, sequence, job, attempt + 1),
                )
                record_retry(job, attempt, reason, delay)
                report.notes.append(
                    f"job {job.describe()} {what}; retrying "
                    f"(attempt {attempt + 1}/{policy.max_attempts}) "
                    f"in {delay:g}s"
                )
            else:
                report.exhausted.append(job)
                report.notes.append(
                    f"job {job.describe()} {what}; retries exhausted after "
                    f"{attempt} attempt(s), finishing elsewhere"
                )

        def infra(state: _HostState, message: str) -> None:
            report.infra_failures.append(message)
            state.breaker.record([message])

        def sever(
            conn: _Connection, state: _HostState, reason: str, what: str
        ) -> None:
            """Kill a connection, requeue its in-flight job, count a flap."""
            current = conn.current
            conn.kill()
            state.stats["flaps"] += 1
            state.flaps.record()
            if current is not None:
                job, attempt, _ = current
                state.stats["requeues"] += 1
                infra(
                    state,
                    f"host {state.spec.name} {reason} "
                    f"running {job.describe()}",
                )
                report.notes.append(
                    f"host {state.spec.name} {reason} running "
                    f"{job.describe()}; requeuing"
                )
                requeue(job, attempt, f"host {reason}", what)
            else:
                infra(state, f"host {state.spec.name} {reason}")

        def connect(state: _HostState) -> Optional[_Connection]:
            """One deadline-bounded connect attempt, faults included."""
            state.connects += 1
            state.stats["connects"] += 1
            ordinal = state.connects
            spec_name = state.spec.name
            if plan is not None:
                fault = plan.network_spec(spec_name, "connect", ordinal)
                if fault is not None and fault.kind == "conn-refused":
                    plan.record_network(fault, spec_name, ordinal)
                    state.stats["connect_failures"] += 1
                    infra(
                        state,
                        f"connect #{ordinal} to host {spec_name} refused",
                    )
                    report.notes.append(
                        f"connect #{ordinal} to host {spec_name} refused"
                    )
                    return None
            try:
                conn = _Connection(state.spec, self.heartbeat, inbox)
            except (OSError, ValueError) as error:
                state.stats["connect_failures"] += 1
                infra(
                    state,
                    f"host {spec_name} failed to start a worker ({error})",
                )
                return None
            connections.append(conn)
            if not conn.await_ready(self.connect_timeout):
                conn.kill()
                state.stats["connect_failures"] += 1
                infra(
                    state,
                    f"host {spec_name} sent no ready frame within "
                    f"{self.connect_timeout:g}s",
                )
                return None
            state.conn = conn
            return conn

        def live_hosts() -> List[_HostState]:
            return list(self._hosts.values())

        def busy_conns() -> List[_Connection]:
            return [
                state.conn
                for state in self._hosts.values()
                if state.conn is not None
                and not state.conn.dead
                and state.conn.current is not None
            ]

        def dispatch_one(state: _HostState, job, attempt) -> bool:
            """Send one job to one host, injecting dispatch faults."""
            nonlocal dispatch_budget
            dispatch_budget -= 1
            conn = state.conn
            state.dispatches += 1
            state.stats["dispatches"] += 1
            ordinal = state.dispatches
            fault = (
                plan.network_spec(state.spec.name, "dispatch", ordinal)
                if plan is not None
                else None
            )
            if fault is not None:
                plan.record_network(fault, state.spec.name, ordinal)
                if fault.kind == "garble":
                    # The job frame is corrupted on the wire: the remote
                    # reader sees undecodable bytes and gives up.
                    conn.current = (job, attempt, time.monotonic())
                    report.attempts[job] = max(
                        attempt, report.attempts.get(job, 0)
                    )
                    conn.send_garbage()
                    return True
                if fault.kind in ("conn-drop", "partition"):
                    conn.current = (job, attempt, time.monotonic())
                    report.attempts[job] = max(
                        attempt, report.attempts.get(job, 0)
                    )
                    conn.send("job", (job, attempt))
                    if fault.kind == "partition":
                        state.partitioned = True
                        report.notes.append(
                            f"host {state.spec.name} partitioned "
                            "(injected); it will not return this run"
                        )
                    conn.stalled = True  # frames in flight are lost too
                    sever(
                        conn,
                        state,
                        "connection dropped (injected)"
                        if fault.kind == "conn-drop"
                        else "partitioned (injected)",
                        "lost its connection",
                    )
                    state.conn = None
                    return True
                if fault.kind == "stall":
                    conn.current = (job, attempt, time.monotonic())
                    report.attempts[job] = max(
                        attempt, report.attempts.get(job, 0)
                    )
                    conn.send("job", (job, attempt))
                    conn.stalled = True  # silence: the watchdog must act
                    return True
            conn.current = (job, attempt, time.monotonic())
            conn.last_seen = time.monotonic()
            if not conn.send("job", (job, attempt)):
                conn.current = None
                conn.dead = True
                state.conn = None
                infra(
                    state,
                    f"host {state.spec.name} pipe closed before "
                    f"{job.describe()} could be dispatched",
                )
                ready.appendleft((job, attempt))
                return False
            report.attempts[job] = max(attempt, report.attempts.get(job, 0))
            return True

        try:
            while ready or delayed or busy_conns():
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, job, attempt = heapq.heappop(delayed)
                    ready.append((job, attempt))
                progressed = False
                for state in live_hosts():
                    if not ready:
                        break
                    if dispatch_budget <= 0:
                        break
                    if state.conn is not None and (
                        state.conn.dead or state.conn.current is not None
                    ):
                        if state.conn.dead:
                            state.conn = None
                        else:
                            continue
                    if state.partitioned:
                        continue
                    state.opportunities += 1
                    if state.flaps.value() >= FLAP_QUARANTINE:
                        if not state.rested_noted:
                            state.rested_noted = True
                            report.notes.append(
                                f"host {state.spec.name} is flapping "
                                f"({state.flaps.value()} recent flaps); "
                                "resting it until the count decays"
                            )
                        continue
                    state.rested_noted = False
                    if not state.breaker.allow():
                        continue
                    if state.conn is None and connect(state) is None:
                        continue
                    job, attempt = ready.popleft()
                    if job in report.completed:
                        continue  # late duplicate; already published once
                    if dispatch_one(state, job, attempt):
                        progressed = True
                if dispatch_budget <= 0 and ready:
                    report.notes.append(
                        "remote dispatch budget exhausted; "
                        "finishing elsewhere"
                    )
                    report.infra_failures.append(
                        "remote dispatch budget exhausted"
                    )
                    break
                busy = busy_conns()
                if not busy:
                    if ready:
                        usable = [
                            s
                            for s in live_hosts()
                            if not s.partitioned
                            and s.flaps.value() < FLAP_QUARANTINE
                            and s.breaker.allow()
                        ]
                        if not usable:
                            report.notes.append(
                                "no usable remote host remains "
                                "(partitioned, flapping or breaker-open); "
                                "finishing elsewhere"
                            )
                            break
                        if progressed:
                            continue
                        # Usable hosts exist but none accepted work this
                        # pass (connects failed): try again, bounded by
                        # the dispatch budget via connect accounting.
                        if dispatch_budget <= 0:
                            break
                        continue
                    if delayed:
                        time.sleep(
                            max(0.0, delayed[0][0] - time.monotonic())
                        )
                        continue
                    break
                horizon: List[float] = []
                if self.deadline is not None:
                    horizon.extend(
                        c.current[2] + self.deadline for c in busy
                    )
                if self.hang_after is not None:
                    horizon.extend(
                        c.last_seen + self.hang_after for c in busy
                    )
                if delayed:
                    horizon.append(delayed[0][0])
                block = (
                    max(0.0, min(horizon) - time.monotonic()) + 0.01
                    if horizon
                    else None
                )
                try:
                    sender, kind, payload = inbox.get(timeout=block)
                except queue.Empty:
                    pass
                else:
                    self._handle_frame(
                        sender, kind, payload, by_key, report, requeue
                    )
                self._watchdog_pass(report, sever, requeue)
        finally:
            for conn in connections:
                conn.close()
            for state in self._hosts.values():
                if state.conn is not None and state.conn.dead:
                    state.conn = None
        report.leftovers = [
            job for job in jobs if job not in report.completed
        ]
        for state in self._hosts.values():
            counters = dict(state.stats)
            counters["breaker_transitions"] = state.take_new_transitions()
            counters["breaker_state"] = state.breaker.state
            counters["partitioned"] = state.partitioned
            report.hosts[state.spec.name] = counters
        return report

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def _handle_frame(
        self, sender, kind, payload, by_key, report, requeue
    ) -> None:
        state = self._hosts[sender.spec.name]
        if kind == "result":
            job = by_key.get(payload.get("key"))
            if job is not None and job not in report.completed:
                report.completed[job] = (
                    payload["payload"],
                    payload["wall"],
                )
                state.stats["completions"] += 1
                state.breaker.record([])  # clean completion: host healthy
            if sender.current is not None and sender.current[0] is job:
                sender.current = None
        elif kind == "error":
            if sender.current is None:
                return  # raced with a watchdog kill; already requeued
            job, attempt, _ = sender.current
            sender.current = None
            state.stats["requeues"] += 1
            requeue(
                job,
                attempt,
                f"{payload.get('kind')}: {payload.get('message')}",
                f"raised on host {state.spec.name} ({payload.get('kind')})",
            )
        elif kind == "trace-fetch":
            self._serve_trace_meta(sender, state, payload, report)
        elif kind == "trace-need":
            self._serve_trace_bytes(sender, state, payload, report)
        elif kind == "eof":
            if sender.dead:
                return  # killed on purpose; its job is already requeued
            sender.dead = True
            if state.conn is sender:
                state.conn = None
            try:
                exit_code = sender.proc.wait(timeout=1.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                exit_code = sender.proc.poll()
            state.stats["flaps"] += 1
            state.flaps.record()
            if sender.current is not None:
                job, attempt, _ = sender.current
                sender.current = None
                state.stats["requeues"] += 1
                report.infra_failures.append(
                    f"host {state.spec.name} worker died "
                    f"(exit {exit_code}) running {job.describe()}"
                )
                state.breaker.record(
                    [f"worker died (exit {exit_code})"]
                )
                report.notes.append(
                    f"host {state.spec.name} worker died (exit {exit_code}) "
                    f"running {job.describe()}; requeuing"
                )
                requeue(
                    job,
                    attempt,
                    f"host worker died (exit {exit_code})",
                    "lost its host",
                )
            else:
                report.infra_failures.append(
                    f"host {state.spec.name} worker died (exit {exit_code})"
                )
                state.breaker.record(
                    [f"worker died (exit {exit_code})"]
                )
        # "ready"/"heartbeat" only refresh last_seen (reader did that).

    def _serve_trace_meta(self, sender, state, payload, report) -> None:
        """Answer a worker's digest query for one trace path."""
        from ..traces.registry import trace_info

        path = payload.get("path", "")
        try:
            info = trace_info(path)
        except Exception as error:  # noqa: BLE001 — forwarded to worker
            sender.send(
                "trace-meta", {"path": path, "error": str(error)}
            )
            return
        sender.send(
            "trace-meta",
            {
                "path": path,
                "digest": info.digest,
                "file_bytes": info.file_bytes,
            },
        )

    def _serve_trace_bytes(self, sender, state, payload, report) -> None:
        """Stream one trace's raw bytes to a worker that missed staging."""
        from ..traces.fetch import FETCH_CHUNK_BYTES, iter_trace_bytes

        path = payload.get("path", "")
        state.stats["trace_fetches"] += 1
        sent = 0
        try:
            for block in iter_trace_bytes(path, FETCH_CHUNK_BYTES):
                if not sender.send(
                    "trace-data", {"path": path, "data": block, "eof": False}
                ):
                    return
                sent += len(block)
        except OSError:
            pass  # worker-side verification rejects the torn stream
        sender.send("trace-data", {"path": path, "data": b"", "eof": True})
        state.stats["trace_bytes_sent"] += sent
        report.notes.append(
            f"streamed trace {os.path.basename(path)} "
            f"({sent} bytes) to host {state.spec.name}"
        )

    def _watchdog_pass(self, report, sever, requeue) -> None:
        now = time.monotonic()
        for state in self._hosts.values():
            conn = state.conn
            if conn is None or conn.dead or conn.current is None:
                continue
            job, attempt, dispatched = conn.current
            gap = now - conn.last_seen
            if self.hang_after is not None and gap >= self.hang_after:
                report.heartbeats.append(
                    {
                        "backend": self.name,
                        "kind": "hang",
                        "host": state.spec.name,
                        "worker": conn.proc.pid,
                        "gap_seconds": round(gap, 3),
                        "job": job.describe(),
                    }
                )
                sever(
                    conn,
                    state,
                    f"went silent for {gap:.1f}s",
                    "went silent (hung host connection killed)",
                )
                state.conn = None
            elif (
                self.deadline is not None
                and now - dispatched >= self.deadline
            ):
                # A per-job deadline, not an infrastructure failure: the
                # breaker is left alone, the job is retried like a local
                # job that ran over REPRO_JOB_TIMEOUT would be.
                conn.kill()
                state.conn = None
                state.stats["requeues"] += 1
                report.notes.append(
                    f"host {state.spec.name} exceeded the "
                    f"{self.deadline:g}s result deadline on "
                    f"{job.describe()}; requeuing"
                )
                requeue(
                    job,
                    attempt,
                    f"result deadline ({self.deadline:g}s) exceeded",
                    "missed its result deadline",
                )


def _missing_trace_ref(job: SimulationJob) -> Optional[object]:
    """The parsed trace ref this job needs fetched, or ``None``."""
    from ..traces.registry import is_trace_ref, parse_trace_ref

    if not isinstance(job.benchmark, str) or not is_trace_ref(job.benchmark):
        return None
    ref = parse_trace_ref(job.benchmark)
    fetch_mode = os.environ.get(ENV_REMOTE_FETCH, "").strip().lower()
    if fetch_mode == "always":
        return ref
    return ref if not os.path.exists(ref.path) else None


def _stage_job_trace(job: SimulationJob, protocol_in, emit) -> SimulationJob:
    """Fetch a job's missing trace by digest; returns the rewritten job.

    The staged copy keeps the job's content address: trace identity is
    digest- (or provenance-) based, never path-based, so substituting
    the staged path leaves :meth:`SimulationJob.key` unchanged and the
    controller's completion bookkeeping lines up.
    """
    from ..traces.fetch import TraceFetchError, TraceStager, staged_trace_path
    from ..traces.registry import format_trace_ref

    ref = _missing_trace_ref(job)
    if ref is None:
        return job
    emit("trace-fetch", {"path": ref.path})
    while True:
        frame = read_frame(protocol_in)
        if frame is None:
            raise TraceFetchError(
                f"controller vanished while serving metadata for {ref.path}"
            )
        kind, payload = frame
        if kind == "trace-meta":
            break
    if payload.get("error") or not payload.get("digest"):
        raise TraceFetchError(
            f"controller cannot serve trace {ref.path}: "
            f"{payload.get('error', 'no digest')}"
        )
    digest = payload["digest"]
    staged = staged_trace_path(digest)
    if not staged.exists():
        emit("trace-need", {"path": ref.path})
        stager = TraceStager(digest, payload.get("file_bytes"))
        try:
            while True:
                frame = read_frame(protocol_in)
                if frame is None:
                    raise TraceFetchError(
                        f"controller vanished while streaming {ref.path}"
                    )
                kind, data = frame
                if kind != "trace-data":
                    continue
                if data.get("data"):
                    stager.feed(data["data"])
                if data.get("eof"):
                    break
            staged = stager.finish()
        except BaseException:
            stager.abort()
            raise
    new_ref = format_trace_ref(
        staged, ref.window, ref.window_instructions
    )
    return replace(job, benchmark=new_ref)


def worker_main(argv=None) -> int:
    """Remote worker loop: the subprocess worker plus digest trace fetch.

    Started on the remote end by ``python -m repro.engine.backends
    --worker`` (or directly for the loopback exec transport).  Speaks a
    strict superset of :mod:`repro.engine.worker`'s protocol: jobs whose
    ``trace:`` workload is absent locally are fetched by content digest
    and verified before first use (:mod:`repro.traces.fetch`).
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro.engine.backends --worker")
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT_SECONDS,
        help="seconds between heartbeat frames (0 disables them)",
    )
    options = parser.parse_args(argv)

    # Claim the protocol channel, then shield it from stray prints.
    protocol_out = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    protocol_in = sys.stdin.buffer

    write_lock = threading.Lock()

    def emit(kind: str, payload=None) -> None:
        try:
            with write_lock:
                write_frame(protocol_out, kind, payload)
        except (OSError, ValueError):
            os._exit(0)  # the controller went away; nobody left to serve

    silenced = threading.Event()
    if options.heartbeat > 0:

        def beat() -> None:
            while True:
                time.sleep(options.heartbeat)
                if not silenced.is_set():
                    emit("heartbeat", time.monotonic())

        threading.Thread(target=beat, name="heartbeat", daemon=True).start()

    emit("ready", {"pid": os.getpid(), "remote": True})

    from .faults import active_plan as worker_plan
    from .jobs import execute_job

    while True:
        frame = read_frame(protocol_in)
        if frame is None:
            break
        kind, payload = frame
        if kind == "exit":
            break
        if kind != "job":
            continue
        job, attempt = payload
        plan = worker_plan()
        try:
            job = _stage_job_trace(job, protocol_in, emit)
            if plan is not None:
                if plan.matches_hang(job, attempt):
                    # A hung host stops beating: silence the heartbeat
                    # before stalling so the watchdog sees a real hang.
                    silenced.set()
                plan.inject_worker(job, attempt)
            start = time.perf_counter()
            annotated = execute_job(job)
            wall = time.perf_counter() - start
            if plan is not None:
                annotated = plan.mangle_result(job, attempt, annotated)
            emit(
                "result",
                {"key": job.key(), "wall": wall, "payload": annotated},
            )
        except Exception as error:  # noqa: BLE001 — forwarded, not swallowed
            try:
                key = job.key()
            except Exception:  # noqa: BLE001 — staging failed pre-key
                key = None
            emit(
                "error",
                {
                    "key": key,
                    "kind": type(error).__name__,
                    "message": str(error),
                },
            )
        finally:
            silenced.clear()
    return 0
