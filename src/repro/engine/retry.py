"""Per-job retry with deterministic exponential backoff.

A :class:`RetryPolicy` decides how many times one job may be attempted
and how long to wait between attempts.  Delays are jitter-free — the
schedule is a pure function of the attempt number — so a run that
retries is exactly as reproducible as a run that does not: retries
change *when* a deterministic simulation executes, never what it
computes.

The policy is shared by the pool supervisor
(:func:`~repro.engine.robustness.attempt_parallel`), which requeues a
failed or timed-out job instead of abandoning the whole pool, and by the
serial executor, which re-attempts a job in-process before declaring it
permanently failed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..errors import EngineError

#: Environment variable overriding the maximum attempts per job.
ENV_RETRIES = "REPRO_RETRIES"

#: Environment variable overriding the base backoff delay in seconds.
ENV_RETRY_DELAY = "REPRO_RETRY_DELAY"

#: Default attempt budget per job (1 initial try + 2 retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Default backoff before the second attempt, in seconds.
DEFAULT_BASE_DELAY = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently one job is re-attempted.

    ``max_attempts`` bounds the total tries (so ``1`` disables retries);
    the delay before attempt *n* is
    ``min(base_delay * multiplier ** (n - 2), max_delay)`` — exponential
    in the attempt number and deliberately jitter-free, so two runs that
    hit the same faults wait the same amounts of time.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay: float = DEFAULT_BASE_DELAY
    multiplier: float = 2.0
    max_delay: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise EngineError(
                f"max_attempts must be at least 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0:
            raise EngineError(
                f"base_delay must be non-negative, got {self.base_delay!r}"
            )
        if self.multiplier < 1:
            raise EngineError(
                f"multiplier must be at least 1, got {self.multiplier!r}"
            )
        if self.max_delay < 0:
            raise EngineError(
                f"max_delay must be non-negative, got {self.max_delay!r}"
            )

    def retries_left(self, attempt: int) -> bool:
        """Whether a job that just failed attempt ``attempt`` may retry."""
        return attempt < self.max_attempts

    def delay_before(self, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based; 0 for the first)."""
        if attempt <= 1:
            return 0.0
        return min(
            self.base_delay * self.multiplier ** (attempt - 2), self.max_delay
        )

    def describe(self) -> dict:
        """JSON-ready summary for the run manifest."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
        }


def _env_int(name: str, minimum: int) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise EngineError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise EngineError(f"{name} must be at least {minimum}, got {value!r}")
    return value


def _env_float(name: str, minimum: float) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise EngineError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None
    if value < minimum:
        raise EngineError(f"{name} must be at least {minimum}, got {value!r}")
    return value


def default_retry_policy() -> RetryPolicy:
    """The retry policy from ``REPRO_RETRIES`` / ``REPRO_RETRY_DELAY``."""
    attempts = _env_int(ENV_RETRIES, minimum=1)
    delay = _env_float(ENV_RETRY_DELAY, minimum=0.0)
    kwargs = {}
    if attempts is not None:
        kwargs["max_attempts"] = attempts
    if delay is not None:
        kwargs["base_delay"] = delay
    return RetryPolicy(**kwargs)
