"""Run telemetry: where the time and the simulated cycles went.

The engine records one :class:`JobRecord` per job outcome plus run-level
wall time, and :class:`RunTelemetry` turns them into

* a JSON *manifest* (``--manifest PATH``) for tooling, and
* a one-paragraph *summary footer* for humans.

Timers are monotonic and deliberately lightweight (one ``perf_counter``
pair per job); they add nothing measurable to multi-second simulations.

Telemetry is also the engine's *streaming* seam: observers subscribed
via :meth:`RunTelemetry.subscribe` receive every lifecycle event —
cache hits, dispatches, completions, retries, quarantines, degradation
notes — the moment it is recorded.  The service daemon
(:mod:`repro.service`) turns this stream into per-ticket SSE events;
observers that raise are dropped from the event, never from the run.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .jobs import SOURCE_CACHED, JobOutcome

#: Version of the manifest JSON layout, independent of the result cache's
#: payload schema version.  Version 2 added per-job attempts plus the
#: ``retries`` and ``faults`` sections; version 3 added the ``store``
#: section and the cross-run cache-sharing totals
#: (``cache_hits_from_earlier_runs`` / ``cache_hits_from_this_run``);
#: version 4 added the simulation-kernel profile: per-job
#: ``kernel_mode`` / ``fast_path_accesses`` / ``slow_path_accesses`` /
#: ``stage_seconds`` and the run-level fast-path totals; version 5 added
#: supervised multi-backend execution: the ``quarantine`` (invalid
#: results + corrupt cache entries), ``heartbeats`` (watchdog events)
#: and ``breakers`` (circuit-breaker states and transitions) sections,
#: their totals, and cache-quarantine counts in the ``store`` section;
#: version 6 added the ``service`` section (the ``ServiceProfile`` a
#: daemon run records: admission, coalescing, per-client and ticket
#: counters — empty for plain CLI runs); version 7 added the
#: ``coordination`` section (the ``CoordinationProfile`` of a
#: multi-daemon fleet: peer id, lease acquire/reclaim/fence counters,
#: guarded-publish outcomes, remote-coalescing and GC totals — empty
#: outside a coordinating daemon); version 8 added the ``substrate``
#: section (the run's resolved kernel mode, residual implementation,
#: trace transport mode and published-arena totals) plus per-job
#: ``residual_impl`` (which residual-loop implementation — ``python``,
#: ``compiled`` or ``scalar`` — produced the result); version 9 added
#: the ``fault_domains`` section (the ``FaultDomainProfile`` of a
#: remote-capable run: per-host dispatch/retry/breaker-transition
#: counters, degradation-ladder descents in order, the rungs that
#: completed work and the final rung — empty for purely local runs).
MANIFEST_VERSION = 9


class Stopwatch:
    """Context-manager wall timer: ``with Stopwatch() as sw: ...``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        self._start = None


@dataclass(frozen=True)
class JobRecord:
    """One job's telemetry row."""

    benchmark: str
    scale: float
    key: str
    source: str
    wall_seconds: float
    instructions: int
    cycles: int
    attempts: int = 1
    #: Simulation-kernel profile ("batched"/"scalar"; empty for results
    #: cached before profiles existed).
    kernel_mode: str = ""
    #: Residual-loop implementation ("python"/"compiled"/"scalar"; empty
    #: for results cached before manifest v8).
    residual_impl: str = ""
    fast_path_accesses: int = 0
    slow_path_accesses: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def instructions_per_second(self) -> float:
        """Simulation throughput of this job (0 for instant cache hits)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def fast_path_share(self) -> float:
        """Fraction of this job's L1 accesses resolved on the fast path."""
        total = self.fast_path_accesses + self.slow_path_accesses
        return self.fast_path_accesses / total if total else 0.0


@dataclass
class RunTelemetry:
    """Accumulates job records and run wall time across engine runs."""

    records: List[JobRecord] = field(default_factory=list)
    failures: List[Dict] = field(default_factory=list)
    retries: List[Dict] = field(default_factory=list)
    faults: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    quarantines: List[Dict] = field(default_factory=list)
    heartbeats: List[Dict] = field(default_factory=list)
    breakers: Dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    context: Dict = field(default_factory=dict)
    store_stats: Dict = field(default_factory=dict)
    #: The ``ServiceProfile`` of a daemon-owned run (manifest v6); empty
    #: for plain CLI runs.
    service: Dict = field(default_factory=dict)
    #: The ``CoordinationProfile`` of a multi-daemon fleet (manifest
    #: v7); empty outside a coordinating daemon.
    coordination: Dict = field(default_factory=dict)
    #: The run's simulation substrate (manifest v8): resolved kernel
    #: mode, residual implementation, trace transport mode and
    #: published-arena totals.
    substrate: Dict = field(default_factory=dict)
    #: The ``FaultDomainProfile`` of a remote-capable run (manifest v9):
    #: per-host counters and breaker transitions, ladder descents, rungs
    #: used and the final rung.  Empty for purely local runs.
    fault_domains: Dict = field(default_factory=dict)
    #: Live event observers (not part of the manifest).
    observers: List[Callable] = field(default_factory=list, repr=False)
    #: Guards the record lists when several engine slots of one fleet
    #: share this telemetry and record from their own executor threads.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Streaming observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: Callable[[Dict], None]) -> None:
        """Attach a live observer; it receives every ``emit`` payload."""
        self.observers.append(observer)

    def unsubscribe(self, observer: Callable[[Dict], None]) -> None:
        """Detach an observer added with :meth:`subscribe`."""
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    def emit(self, event: str, **data) -> None:
        """Push one lifecycle event to every observer.

        Observers run synchronously on the emitting thread (worker
        completions arrive on the engine's thread); a raising observer
        is skipped, never allowed to break the run.
        """
        if not self.observers:
            return
        payload = {"event": event, **data}
        for observer in list(self.observers):
            try:
                observer(payload)
            except Exception:
                continue

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_outcome(self, outcome: JobOutcome) -> None:
        """Add one job outcome's telemetry row."""
        result = outcome.annotated.result
        # getattr: results cached before profiles existed lack the field.
        profile = getattr(result, "profile", None)
        record = JobRecord(
            benchmark=outcome.job.benchmark,
            scale=float(outcome.job.scale),
            key=outcome.job.key(),
            source=outcome.source,
            wall_seconds=outcome.wall_seconds,
            instructions=int(result.instructions),
            cycles=int(result.cycles),
            attempts=outcome.attempts,
            kernel_mode=profile.mode if profile else "",
            residual_impl=(
                getattr(profile, "residual_impl", "") if profile else ""
            ),
            fast_path_accesses=(
                int(profile.fast_path_accesses) if profile else 0
            ),
            slow_path_accesses=(
                int(profile.slow_path_accesses) if profile else 0
            ),
            stage_seconds=(
                {k: float(v) for k, v in profile.stage_seconds.items()}
                if profile
                else {}
            ),
        )
        with self._lock:
            self.records.append(record)

    def record_failure(self, job, error: BaseException) -> None:
        """Add one permanently-failed job."""
        entry = {
            "benchmark": job.benchmark,
            "scale": float(job.scale),
            "key": job.key(),
            "error": f"{type(error).__name__}: {error}",
        }
        with self._lock:
            self.failures.append(entry)
        self.emit("job-failed", **entry)

    def record_retry(self, entry: Dict) -> None:
        """Add one structured retry record (see ``PoolReport.retries``)."""
        with self._lock:
            self.retries.append(dict(entry))
        self.emit("job-retried", **dict(entry))

    def record_fault(self, description: str) -> None:
        """Add one injected-fault record (engine-side injections)."""
        with self._lock:
            self.faults.append(description)
        self.emit("fault-injected", description=description)

    def record_quarantine(self, job, violations, where: str) -> None:
        """Add one invalid-result quarantine (the validation gate fired)."""
        entry = {
            "benchmark": job.benchmark,
            "scale": float(job.scale),
            "key": job.key(),
            "where": where,
            "violations": [str(v) for v in violations],
        }
        with self._lock:
            self.quarantines.append(entry)
        self.emit("result-quarantined", **entry)

    def record_heartbeat(self, entry: Dict) -> None:
        """Add one watchdog event (heartbeat gap or progress stall)."""
        with self._lock:
            self.heartbeats.append(dict(entry))
        self.emit("heartbeat", **dict(entry))

    def record_breakers(self, snapshot: Dict) -> None:
        """Snapshot the supervisor's circuit breakers (idempotent)."""
        with self._lock:
            self.breakers = dict(snapshot)

    def record_service(self, profile: Dict) -> None:
        """Attach the daemon's ``ServiceProfile`` (manifest v6 section)."""
        self.service = dict(profile)

    def record_coordination(self, profile: Dict) -> None:
        """Attach the fleet's ``CoordinationProfile`` (manifest v7).

        Daemons record it on drain/shutdown: peer identity, lease
        counters (acquired/contended/reclaimed/released/fenced),
        guarded-publish outcomes, remote-coalescing totals and GC
        sweeps.  Plain CLI runs never touch it, so their manifests keep
        an empty section.
        """
        self.coordination = dict(profile)

    def record_fault_domains(self, profile: Dict) -> None:
        """Merge one dispatch's ``FaultDomainProfile`` (manifest v9).

        The engine records a profile per dispatch that touched the
        ladder; a run of several dispatches therefore *merges*: host
        counters add (lists extend), ladder descents and used rungs
        append in dispatch order, and the final rung reflects the most
        recent dispatch that completed work.
        """
        with self._lock:
            hosts = self.fault_domains.setdefault("hosts", {})
            for host, counters in profile.get("hosts", {}).items():
                merged = hosts.setdefault(host, {})
                for key, value in counters.items():
                    if isinstance(value, list):
                        merged.setdefault(key, []).extend(value)
                    elif isinstance(value, bool):
                        merged[key] = value
                    elif isinstance(value, (int, float)):
                        merged[key] = merged.get(key, 0) + value
                    else:
                        merged[key] = value
            self.fault_domains.setdefault("ladder", []).extend(
                dict(d) for d in profile.get("ladder", [])
            )
            self.fault_domains.setdefault("rungs_used", []).extend(
                profile.get("rungs_used", [])
            )
            final = profile.get("final_rung")
            if final is not None:
                self.fault_domains["final_rung"] = final

    def record_substrate(self, profile: Dict) -> None:
        """Merge substrate facts (kernel + transport) into the manifest.

        The engine records its resolved kernel/transport selection at
        construction and updates the published-arena totals as
        dispatches publish traces, so the call merges rather than
        replaces.
        """
        with self._lock:
            self.substrate.update(profile)

    def note(self, message: str) -> None:
        """Attach a free-form robustness note (pool fallbacks, evictions)."""
        with self._lock:
            self.notes.append(message)
        self.emit("note", message=message)

    def record_store(self, store) -> None:
        """Snapshot the result store's counters (idempotent, cumulative).

        The sharing split — hits served by entries an *earlier* run wrote
        vs. entries this run produced itself — is what makes shard overlap
        and warm reruns visible in the manifest and ``cache info``.
        """
        self.store_stats = {
            "hits": int(getattr(store, "hits", 0)),
            "misses": int(getattr(store, "misses", 0)),
            "evictions": int(getattr(store, "evictions", 0)),
            "write_errors": int(getattr(store, "write_errors", 0)),
            "quarantined": int(getattr(store, "quarantined", 0)),
            "corruption_events": [
                dict(e) for e in getattr(store, "corruption_events", [])
            ],
            "hits_from_earlier_runs": int(
                getattr(store, "hits_from_earlier_runs", 0)
            ),
            "hits_from_this_run": int(getattr(store, "hits_from_this_run", 0)),
        }

    def add_wall(self, seconds: float) -> None:
        """Accumulate run-level wall time (one engine.run call)."""
        with self._lock:
            self.wall_seconds += seconds

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return len(self.records) + len(self.failures)

    @property
    def cached(self) -> int:
        return sum(1 for r in self.records if r.source == SOURCE_CACHED)

    @property
    def simulated(self) -> int:
        return sum(1 for r in self.records if r.source != SOURCE_CACHED)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def serial_fallbacks(self) -> int:
        return sum(1 for r in self.records if r.source == "serial-fallback")

    @property
    def fallbacks(self) -> int:
        """Jobs completed by a degraded path (any ``*-fallback`` source)."""
        return sum(1 for r in self.records if r.source.endswith("-fallback"))

    @property
    def breaker_trips(self) -> int:
        """How many times a backend circuit breaker opened."""
        return int(self.breakers.get("trips", 0))

    @property
    def retried(self) -> int:
        """Jobs whose result took more than one attempt."""
        return sum(1 for r in self.records if r.attempts > 1)

    @property
    def instructions(self) -> int:
        """Instructions delivered across all jobs, cached ones included."""
        return sum(r.instructions for r in self.records)

    @property
    def simulated_instructions(self) -> int:
        return sum(r.instructions for r in self.records if r.source != SOURCE_CACHED)

    @property
    def throughput(self) -> float:
        """Simulated instructions per wall second of engine runtime."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.simulated_instructions / self.wall_seconds

    @property
    def fast_path_accesses(self) -> int:
        return sum(r.fast_path_accesses for r in self.records)

    @property
    def slow_path_accesses(self) -> int:
        return sum(r.slow_path_accesses for r in self.records)

    @property
    def fast_path_share(self) -> float:
        """Run-wide fraction of L1 accesses the kernel fast path resolved."""
        total = self.fast_path_accesses + self.slow_path_accesses
        return self.fast_path_accesses / total if total else 0.0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def manifest(self) -> Dict:
        """The full run manifest as a JSON-ready dict."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "engine": dict(self.context),
            "totals": {
                "jobs": self.jobs,
                "cached": self.cached,
                "simulated": self.simulated,
                "failed": self.failed,
                "serial_fallbacks": self.serial_fallbacks,
                "fallbacks": self.fallbacks,
                "retries": len(self.retries),
                "retried_jobs": self.retried,
                "faults_injected": len(self.faults),
                "quarantined_results": len(self.quarantines),
                "cache_quarantined": self.store_stats.get("quarantined", 0),
                "heartbeat_events": len(self.heartbeats),
                "breaker_trips": self.breaker_trips,
                "cache_hits_from_earlier_runs": self.store_stats.get(
                    "hits_from_earlier_runs", 0
                ),
                "cache_hits_from_this_run": self.store_stats.get(
                    "hits_from_this_run", 0
                ),
                "wall_seconds": self.wall_seconds,
                "instructions": self.instructions,
                "simulated_instructions": self.simulated_instructions,
                "instructions_per_second": self.throughput,
                "fast_path_accesses": self.fast_path_accesses,
                "slow_path_accesses": self.slow_path_accesses,
                "fast_path_share": self.fast_path_share,
            },
            "jobs": [
                {
                    "benchmark": r.benchmark,
                    "scale": r.scale,
                    "key": r.key,
                    "source": r.source,
                    "wall_seconds": r.wall_seconds,
                    "instructions": r.instructions,
                    "cycles": r.cycles,
                    "attempts": r.attempts,
                    "instructions_per_second": r.instructions_per_second,
                    "kernel_mode": r.kernel_mode,
                    "residual_impl": r.residual_impl,
                    "fast_path_accesses": r.fast_path_accesses,
                    "slow_path_accesses": r.slow_path_accesses,
                    "fast_path_share": r.fast_path_share,
                    "stage_seconds": dict(r.stage_seconds),
                }
                for r in self.records
            ],
            "failures": list(self.failures),
            "retries": [dict(r) for r in self.retries],
            "faults": list(self.faults),
            "notes": list(self.notes),
            "quarantine": [dict(q) for q in self.quarantines],
            "heartbeats": [dict(h) for h in self.heartbeats],
            "breakers": dict(self.breakers),
            "store": dict(self.store_stats),
            "service": dict(self.service),
            "coordination": dict(self.coordination),
            "substrate": dict(self.substrate),
            "fault_domains": dict(self.fault_domains),
        }

    def write_manifest(self, path) -> str:
        """Write the manifest as indented JSON; returns the path written."""
        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return str(target)

    def summary(self) -> str:
        """Human-readable run footer."""
        if self.jobs == 0:
            return "engine: no simulation jobs (static experiments only)"
        parts = [
            f"engine: {self.jobs} job{'s' if self.jobs != 1 else ''}",
            f"({self.simulated} simulated, {self.cached} cached"
            + (f", {self.failed} failed" if self.failed else "")
            + ")",
            f"in {self.wall_seconds:.2f}s",
        ]
        if self.simulated:
            mi = self.simulated_instructions / 1e6
            parts.append(f"| {mi:.2f}M instructions at {self.throughput:,.0f} inst/s")
        if self.fast_path_accesses:
            parts.append(f"| {100.0 * self.fast_path_share:.1f}% fast-path")
        if self.fallbacks:
            parts.append(f"| {self.fallbacks} fallback(s)")
        if self.retries:
            parts.append(f"| {len(self.retries)} retr{'y' if len(self.retries) == 1 else 'ies'}")
        if self.faults:
            parts.append(f"| {len(self.faults)} fault(s) injected")
        quarantined = len(self.quarantines) + self.store_stats.get(
            "quarantined", 0
        )
        if quarantined:
            parts.append(f"| {quarantined} quarantine(s)")
        if self.breaker_trips:
            parts.append(f"| {self.breaker_trips} breaker trip(s)")
        shared = self.store_stats.get("hits_from_earlier_runs", 0)
        if shared:
            parts.append(f"| {shared} hit(s) shared from earlier runs")
        cache_dir = self.context.get("cache_dir")
        if cache_dir:
            parts.append(f"| cache: {cache_dir}")
        return " ".join(parts)
