"""Execution engine: supervised, multi-backend, cache-aware simulation.

The substrate under every experiment.  Jobs (:mod:`~repro.engine.jobs`)
name deterministic simulation points; :class:`ExecutionEngine`
(:mod:`~repro.engine.parallel`) resolves them through a content-addressed
on-disk cache (:mod:`~repro.engine.store`) and a supervised backend
chain (:mod:`~repro.engine.backends`,
:mod:`~repro.engine.supervise`): optionally remote hosts over SSH or a
loopback exec transport (:mod:`~repro.engine.remote`), then the
worker-process pool, then heartbeat-watched subprocess workers, then
in-process serial execution,
with per-job retry (:mod:`~repro.engine.retry`), per-backend circuit
breakers, an invariant-validation gate on every fresh result
(:mod:`~repro.engine.validate`), crash-safe run checkpoints
(:mod:`~repro.engine.checkpoint`), and run telemetry
(:mod:`~repro.engine.telemetry`).  A deterministic fault-injection
harness (:mod:`~repro.engine.faults`, off unless ``REPRO_FAULTS`` is
set) makes every degradation path testable on purpose.

Quickstart::

    from repro.engine import ExecutionEngine, SimulationJob

    engine = ExecutionEngine(jobs=4, backend="subprocess")
    outcomes = engine.run([SimulationJob("gzip", scale=0.25),
                           SimulationJob("ammp", scale=0.25)])
    print(engine.telemetry.summary())
"""

from .backends import (
    BACKEND_NAMES,
    ENV_BACKEND,
    ENV_HEARTBEAT,
    ENV_WATCHDOG,
    PoolBackend,
    SubprocessBackend,
    WorkerBackend,
    build_chain,
    default_heartbeat_interval,
    default_watchdog,
    resolve_backend_name,
)
from .checkpoint import (
    RUNS_SUBDIR,
    SWEEPS_SUBDIR,
    RunJournal,
    atomic_write_json,
    collect_sharing_stats,
    iter_run_manifests,
    validate_run_id,
)
from .faults import (
    CRASH_EXIT_CODE,
    ENV_FAULTS,
    FLAP_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    apply_store_fault,
    parse_fault_plan,
)
from .jobs import (
    SCHEMA_VERSION,
    SOURCE_CACHED,
    SOURCE_FALLBACK,
    SOURCE_PARALLEL,
    SOURCE_REMOTE,
    SOURCE_REMOTE_FALLBACK,
    SOURCE_SERIAL,
    SOURCE_SUBPROCESS,
    SOURCE_SUBPROCESS_FALLBACK,
    JobOutcome,
    SimulationJob,
    execute_job,
)
from .parallel import (
    ENV_JOBS,
    EngineFleet,
    ExecutionEngine,
    resolve_worker_count,
)
from .remote import (
    ENV_HOSTS,
    ENV_REMOTE_CONNECT_TIMEOUT,
    ENV_REMOTE_DEADLINE,
    ENV_REMOTE_FETCH,
    HostSpec,
    RemoteBackend,
    default_connect_timeout,
    default_remote_deadline,
    parse_hosts,
)
from .retry import (
    ENV_RETRIES,
    ENV_RETRY_DELAY,
    RetryPolicy,
    default_retry_policy,
)
from .robustness import (
    ENV_JOB_TIMEOUT,
    PoolReport,
    attempt_parallel,
    default_job_timeout,
)
from .store import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_MB,
    NullStore,
    ResultStore,
    resolve_cache_dir,
    resolve_cache_limit,
)
from .supervise import (
    ENV_BREAKER_COOLDOWN,
    ENV_BREAKER_THRESHOLD,
    CircuitBreaker,
    FlapCounter,
    Supervisor,
    default_breaker_cooldown,
    default_breaker_threshold,
    merge_breaker_snapshots,
)
from .telemetry import MANIFEST_VERSION, JobRecord, RunTelemetry, Stopwatch
from .validate import InvalidResultError, check_result

__all__ = [
    "BACKEND_NAMES",
    "CRASH_EXIT_CODE",
    "CircuitBreaker",
    "DEFAULT_CACHE_DIR",
    "ENV_BACKEND",
    "ENV_BREAKER_COOLDOWN",
    "ENV_BREAKER_THRESHOLD",
    "ENV_CACHE_DIR",
    "ENV_CACHE_MAX_MB",
    "ENV_FAULTS",
    "ENV_HEARTBEAT",
    "ENV_HOSTS",
    "ENV_JOBS",
    "ENV_JOB_TIMEOUT",
    "ENV_REMOTE_CONNECT_TIMEOUT",
    "ENV_REMOTE_DEADLINE",
    "ENV_REMOTE_FETCH",
    "ENV_RETRIES",
    "ENV_RETRY_DELAY",
    "ENV_WATCHDOG",
    "EngineFleet",
    "ExecutionEngine",
    "FLAP_EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "FlapCounter",
    "HostSpec",
    "InjectedFault",
    "InvalidResultError",
    "JobOutcome",
    "JobRecord",
    "MANIFEST_VERSION",
    "NullStore",
    "PoolBackend",
    "PoolReport",
    "RemoteBackend",
    "ResultStore",
    "RUNS_SUBDIR",
    "RunJournal",
    "RunTelemetry",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "SOURCE_CACHED",
    "SOURCE_FALLBACK",
    "SOURCE_PARALLEL",
    "SOURCE_REMOTE",
    "SOURCE_REMOTE_FALLBACK",
    "SOURCE_SERIAL",
    "SOURCE_SUBPROCESS",
    "SOURCE_SUBPROCESS_FALLBACK",
    "SWEEPS_SUBDIR",
    "SimulationJob",
    "Stopwatch",
    "SubprocessBackend",
    "Supervisor",
    "WorkerBackend",
    "active_plan",
    "apply_store_fault",
    "atomic_write_json",
    "attempt_parallel",
    "build_chain",
    "check_result",
    "collect_sharing_stats",
    "default_breaker_cooldown",
    "default_breaker_threshold",
    "default_connect_timeout",
    "default_heartbeat_interval",
    "default_job_timeout",
    "default_remote_deadline",
    "default_retry_policy",
    "default_watchdog",
    "execute_job",
    "iter_run_manifests",
    "merge_breaker_snapshots",
    "parse_fault_plan",
    "parse_hosts",
    "resolve_backend_name",
    "resolve_cache_dir",
    "resolve_cache_limit",
    "resolve_worker_count",
    "validate_run_id",
]
