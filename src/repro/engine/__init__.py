"""Execution engine: parallel, fault-tolerant simulation with caching.

The substrate under every experiment.  Jobs (:mod:`~repro.engine.jobs`)
name deterministic simulation points; :class:`ExecutionEngine`
(:mod:`~repro.engine.parallel`) resolves them through a content-addressed
on-disk cache (:mod:`~repro.engine.store`), a worker-process pool with
per-job retry and serial fallback (:mod:`~repro.engine.robustness`,
:mod:`~repro.engine.retry`), crash-safe run checkpoints
(:mod:`~repro.engine.checkpoint`), and run telemetry
(:mod:`~repro.engine.telemetry`).  A deterministic fault-injection
harness (:mod:`~repro.engine.faults`, off unless ``REPRO_FAULTS`` is
set) makes every degradation path testable on purpose.

Quickstart::

    from repro.engine import ExecutionEngine, SimulationJob

    engine = ExecutionEngine(jobs=4)
    outcomes = engine.run([SimulationJob("gzip", scale=0.25),
                           SimulationJob("ammp", scale=0.25)])
    print(engine.telemetry.summary())
"""

from .checkpoint import (
    RUNS_SUBDIR,
    SWEEPS_SUBDIR,
    RunJournal,
    atomic_write_json,
    collect_sharing_stats,
    iter_run_manifests,
    validate_run_id,
)
from .faults import (
    CRASH_EXIT_CODE,
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    apply_store_fault,
    parse_fault_plan,
)
from .jobs import (
    SCHEMA_VERSION,
    SOURCE_CACHED,
    SOURCE_FALLBACK,
    SOURCE_PARALLEL,
    SOURCE_SERIAL,
    JobOutcome,
    SimulationJob,
    execute_job,
)
from .parallel import ENV_JOBS, ExecutionEngine, resolve_worker_count
from .retry import (
    ENV_RETRIES,
    ENV_RETRY_DELAY,
    RetryPolicy,
    default_retry_policy,
)
from .robustness import (
    ENV_JOB_TIMEOUT,
    PoolReport,
    attempt_parallel,
    default_job_timeout,
)
from .store import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_MB,
    NullStore,
    ResultStore,
    resolve_cache_dir,
    resolve_cache_limit,
)
from .telemetry import MANIFEST_VERSION, JobRecord, RunTelemetry, Stopwatch

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_CACHE_MAX_MB",
    "ENV_FAULTS",
    "ENV_JOBS",
    "ENV_JOB_TIMEOUT",
    "ENV_RETRIES",
    "ENV_RETRY_DELAY",
    "ExecutionEngine",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JobOutcome",
    "JobRecord",
    "MANIFEST_VERSION",
    "NullStore",
    "PoolReport",
    "ResultStore",
    "RUNS_SUBDIR",
    "RunJournal",
    "RunTelemetry",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "SOURCE_CACHED",
    "SOURCE_FALLBACK",
    "SOURCE_PARALLEL",
    "SOURCE_SERIAL",
    "SWEEPS_SUBDIR",
    "SimulationJob",
    "Stopwatch",
    "active_plan",
    "apply_store_fault",
    "atomic_write_json",
    "attempt_parallel",
    "collect_sharing_stats",
    "default_job_timeout",
    "default_retry_policy",
    "execute_job",
    "iter_run_manifests",
    "parse_fault_plan",
    "resolve_cache_dir",
    "resolve_cache_limit",
    "resolve_worker_count",
    "validate_run_id",
]
