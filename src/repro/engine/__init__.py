"""Execution engine: parallel, fault-tolerant simulation with caching.

The substrate under every experiment.  Jobs (:mod:`~repro.engine.jobs`)
name deterministic simulation points; :class:`ExecutionEngine`
(:mod:`~repro.engine.parallel`) resolves them through a content-addressed
on-disk cache (:mod:`~repro.engine.store`), a worker-process pool with
serial fallback (:mod:`~repro.engine.robustness`), and run telemetry
(:mod:`~repro.engine.telemetry`).

Quickstart::

    from repro.engine import ExecutionEngine, SimulationJob

    engine = ExecutionEngine(jobs=4)
    outcomes = engine.run([SimulationJob("gzip", scale=0.25),
                           SimulationJob("ammp", scale=0.25)])
    print(engine.telemetry.summary())
"""

from .jobs import (
    SCHEMA_VERSION,
    SOURCE_CACHED,
    SOURCE_FALLBACK,
    SOURCE_PARALLEL,
    SOURCE_SERIAL,
    JobOutcome,
    SimulationJob,
    execute_job,
)
from .parallel import ENV_JOBS, ExecutionEngine, resolve_worker_count
from .robustness import ENV_JOB_TIMEOUT, attempt_parallel, default_job_timeout
from .store import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    NullStore,
    ResultStore,
    resolve_cache_dir,
)
from .telemetry import MANIFEST_VERSION, JobRecord, RunTelemetry, Stopwatch

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "ENV_JOB_TIMEOUT",
    "ExecutionEngine",
    "JobOutcome",
    "JobRecord",
    "MANIFEST_VERSION",
    "NullStore",
    "ResultStore",
    "RunTelemetry",
    "SCHEMA_VERSION",
    "SOURCE_CACHED",
    "SOURCE_FALLBACK",
    "SOURCE_PARALLEL",
    "SOURCE_SERIAL",
    "SimulationJob",
    "Stopwatch",
    "attempt_parallel",
    "default_job_timeout",
    "execute_job",
    "resolve_cache_dir",
    "resolve_worker_count",
]
