"""Deterministic simulation jobs: the engine's unit of work.

A :class:`SimulationJob` names one (benchmark, scale, pipeline) point of
the experiment space.  Jobs are frozen, hashable and picklable, so they
can be fanned out to worker processes, deduplicated, and used as cache
keys.  :func:`execute_job` is the *only* way the engine simulates — it is
a pure function of the job parameters (workload generators are seeded),
which is what makes parallel execution bit-identical to serial execution
and on-disk caching sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..cpu.pipeline import PipelineConfig
from ..errors import EngineError
from ..prefetch.analysis import AnnotatedSimulationResult, AnnotatingSimulator
from ..workloads.benchmarks import BENCHMARK_NAMES, make_benchmark

#: Version of the pickled result payload *and* of the simulation
#: substrate's observable behaviour.  Bump it whenever a change to the
#: simulator, workload generators or annotation logic alters results:
#: every existing cache entry is then version-mismatched, evicted on
#: first read, and transparently recomputed.
#:
#: Version 2: the batched simulation kernel (fixed-point issue clock,
#: ``SimulationResult.profile``) — results carry new fields and the
#: clock's CPI quantization is at the 2**-20 level.
SCHEMA_VERSION = 2

#: ``JobOutcome.source`` values.
SOURCE_CACHED = "cached"
SOURCE_PARALLEL = "parallel"
SOURCE_SERIAL = "serial"
SOURCE_FALLBACK = "serial-fallback"
SOURCE_SUBPROCESS = "subprocess"
SOURCE_SUBPROCESS_FALLBACK = "subprocess-fallback"


@dataclass(frozen=True)
class SimulationJob:
    """One benchmark simulation point: name x scale x pipeline config."""

    benchmark: str
    scale: float = 1.0
    pipeline: Optional[PipelineConfig] = None

    def __post_init__(self) -> None:
        if self.benchmark not in BENCHMARK_NAMES:
            raise EngineError(
                f"unknown benchmark {self.benchmark!r}; known: {BENCHMARK_NAMES}"
            )
        if not self.scale > 0:
            raise EngineError(f"scale must be positive, got {self.scale!r}")

    def fingerprint(self) -> Dict:
        """Canonical, JSON-stable parameter record this job is keyed by."""
        return {
            "benchmark": self.benchmark,
            "scale": repr(float(self.scale)),
            "pipeline": None if self.pipeline is None else asdict(self.pipeline),
        }

    def key(self) -> str:
        """Content address: SHA-256 over the canonical parameters.

        The payload schema version is deliberately *not* part of the key;
        it lives in the cache entry's header so a version bump is detected
        as a mismatch and evicts the stale entry (see ``store.py``).
        """
        canonical = json.dumps(self.fingerprint(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for logs and telemetry."""
        return f"{self.benchmark}@{self.scale:g}"


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus how, how fast, and in how many tries."""

    job: SimulationJob
    annotated: AnnotatedSimulationResult
    source: str
    wall_seconds: float
    attempts: int = 1  #: Total execution attempts (1 = no retries needed).

    @property
    def simulated(self) -> bool:
        """Whether this outcome ran a simulation (vs. a cache hit)."""
        return self.source != SOURCE_CACHED

    @property
    def retried(self) -> bool:
        """Whether obtaining this result took more than one attempt."""
        return self.attempts > 1


def execute_job(job: SimulationJob) -> AnnotatedSimulationResult:
    """Simulate one job; deterministic in the job parameters."""
    workload = make_benchmark(job.benchmark, scale=job.scale)
    simulator = AnnotatingSimulator(pipeline=job.pipeline)
    return simulator.run(workload.chunks())
