"""Deterministic simulation jobs: the engine's unit of work.

A :class:`SimulationJob` names one (benchmark, scale, pipeline) point of
the experiment space.  Jobs are frozen, hashable and picklable, so they
can be fanned out to worker processes, deduplicated, and used as cache
keys.  :func:`execute_job` is the *only* way the engine simulates — it is
a pure function of the job parameters (workload generators are seeded),
which is what makes parallel execution bit-identical to serial execution
and on-disk caching sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..cpu.pipeline import PipelineConfig
from ..errors import EngineError, ReproError
from ..prefetch.analysis import AnnotatedSimulationResult, AnnotatingSimulator
from ..workloads.benchmarks import BENCHMARK_NAMES, make_benchmark

#: Version of the pickled result payload *and* of the simulation
#: substrate's observable behaviour.  Bump it whenever a change to the
#: simulator, workload generators or annotation logic alters results:
#: every existing cache entry is then version-mismatched, evicted on
#: first read, and transparently recomputed.
#:
#: Version 2: the batched simulation kernel (fixed-point issue clock,
#: ``SimulationResult.profile``) — results carry new fields and the
#: clock's CPI quantization is at the 2**-20 level.
SCHEMA_VERSION = 2

#: ``JobOutcome.source`` values.
SOURCE_CACHED = "cached"
SOURCE_PARALLEL = "parallel"
SOURCE_SERIAL = "serial"
SOURCE_FALLBACK = "serial-fallback"
SOURCE_SUBPROCESS = "subprocess"
SOURCE_SUBPROCESS_FALLBACK = "subprocess-fallback"
SOURCE_REMOTE = "remote"
SOURCE_REMOTE_FALLBACK = "remote-fallback"


@dataclass(frozen=True)
class SimulationJob:
    """One workload simulation point: workload ref x scale x pipeline config.

    ``benchmark`` is any ref the workload registry
    (:mod:`repro.traces.registry`) resolves: a synthetic benchmark name
    (``"gzip"``) or a recorded trace ref (``"trace:/path/file.rtr"``,
    optionally with a ``#window:window_instructions`` suffix).  Recorded
    traces run at scale 1.0 — they carry their own length.
    """

    benchmark: str
    scale: float = 1.0
    pipeline: Optional[PipelineConfig] = None

    def __post_init__(self) -> None:
        if self.benchmark not in BENCHMARK_NAMES:
            # Not a paper-suite benchmark: anything else must resolve
            # through the workload registry (registered synthetics and
            # trace refs).  Imported lazily: repro.traces sits above the
            # engine in the layering, so a module-level import would cycle.
            from ..traces.registry import DEFAULT_REGISTRY, is_trace_ref

            try:
                DEFAULT_REGISTRY.validate(self.benchmark)
            except ReproError as error:
                raise EngineError(str(error)) from None
            if is_trace_ref(self.benchmark) and float(self.scale) != 1.0:
                raise EngineError(
                    f"{self.benchmark!r}: a recorded trace carries its own "
                    f"scale; submit trace refs at scale 1.0 (got {self.scale!r})"
                )
        if not self.scale > 0:
            raise EngineError(f"scale must be positive, got {self.scale!r}")

    def fingerprint(self) -> Dict:
        """Canonical, JSON-stable parameter record this job is keyed by.

        For registry-resolved workloads the identity comes from the
        registry: a trace recorded from a synthetic benchmark fingerprints
        *identically* to the synthetic original (same content address →
        same cache entry, same coalescing), and a foreign trace is keyed
        by its chunking/codec-independent content digest.
        """
        if self.benchmark in BENCHMARK_NAMES:
            identity: Dict = {
                "benchmark": self.benchmark,
                "scale": repr(float(self.scale)),
            }
        else:
            from ..traces.registry import resolve_workload

            try:
                identity = resolve_workload(self.benchmark).identity(self.scale)
            except ReproError as error:
                raise EngineError(str(error)) from None
        identity["pipeline"] = None if self.pipeline is None else asdict(self.pipeline)
        return identity

    def key(self) -> str:
        """Content address: SHA-256 over the canonical parameters.

        The payload schema version is deliberately *not* part of the key;
        it lives in the cache entry's header so a version bump is detected
        as a mismatch and evicts the stale entry (see ``store.py``).
        """
        canonical = json.dumps(self.fingerprint(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def canonical_workload(self) -> tuple:
        """``(benchmark, scale)`` as the content address sees them.

        A trace recorded from a paper-suite benchmark resolves to the
        *synthetic* name and scale it was recorded at, so every document
        derived from it (service result payloads, reports) serializes
        byte-identically to the inline synthetic run sharing its key.
        Foreign traces and window refs keep the job's own fields.
        """
        identity = self.fingerprint()
        if set(identity) == {"benchmark", "scale", "pipeline"}:
            return identity["benchmark"], float(identity["scale"])
        return self.benchmark, float(self.scale)

    def describe(self) -> str:
        """Short human-readable label for logs and telemetry."""
        if self.benchmark in BENCHMARK_NAMES:
            return f"{self.benchmark}@{self.scale:g}"
        from ..traces.registry import DEFAULT_REGISTRY

        try:
            label = DEFAULT_REGISTRY.resolve(self.benchmark).describe()
            return f"{label}@{self.scale:g}"
        except ReproError:
            return f"{self.benchmark}@{self.scale:g}"


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus how, how fast, and in how many tries."""

    job: SimulationJob
    annotated: AnnotatedSimulationResult
    source: str
    wall_seconds: float
    attempts: int = 1  #: Total execution attempts (1 = no retries needed).

    @property
    def simulated(self) -> bool:
        """Whether this outcome ran a simulation (vs. a cache hit)."""
        return self.source != SOURCE_CACHED

    @property
    def retried(self) -> bool:
        """Whether obtaining this result took more than one attempt."""
        return self.attempts > 1


def execute_job(job: SimulationJob) -> AnnotatedSimulationResult:
    """Simulate one job; deterministic in the job parameters.

    Recorded traces are *streamed*: the registry hands back a chunk
    iterator backed by the on-disk reader, so peak memory stays bounded
    by the chunk size however large the trace file is.  When the
    dispatching parent published the trace into a zero-copy arena
    (:mod:`repro.engine.transport`), the worker attaches to it instead
    of re-reading the file — the chunks carry identical content either
    way, so results are bit-identical across transports.
    """
    if job.benchmark in BENCHMARK_NAMES:
        chunks = make_benchmark(job.benchmark, scale=job.scale).chunks()
    else:
        from ..traces.registry import is_trace_ref, parse_trace_ref, resolve_workload

        source = resolve_workload(job.benchmark)
        chunks = None
        if is_trace_ref(job.benchmark):
            from .transport import overlay_chunks

            ref = parse_trace_ref(job.benchmark)
            chunks = overlay_chunks(
                ref.path, ref.window, ref.window_instructions
            )
        if chunks is None:
            chunks = source.chunks(job.scale)
    simulator = AnnotatingSimulator(pipeline=job.pipeline)
    return simulator.run(chunks)
