"""Zero-copy trace transport between the engine and its workers.

Without this module every worker that simulates a recorded-trace job
re-opens the ``.rtr`` file, re-verifies every chunk checksum and
re-materializes every chunk — per job, per attempt.  The transport layer
lets the *parent* engine publish a trace's decoded columns exactly once
and hand workers a tiny handle instead:

``shm``
    columns live in a ``multiprocessing.shared_memory`` segment; pool
    and subprocess workers attach and build numpy views straight into
    the segment — zero copies, dispatch cost independent of trace size.
``disk``
    columns are spooled to a ``.npy``-style arena file; workers
    memory-map it (``np.memmap``) for the same zero-copy views, without
    needing a shared-memory filesystem.
``pickle``
    the legacy behaviour: no arena, workers stream from the ``.rtr``
    file themselves.

The mode comes from ``REPRO_TRANSPORT`` (default ``auto`` = ``shm``
where available, else ``disk``).  Publication is *advisory* and keyed
through a process-wide refcounted registry: the parent writes one JSON
handle per trace into a manifest directory pointed at by
``REPRO_TRANSPORT_DIR`` (inherited by pool and subprocess workers), and
:func:`execute_job` consults :func:`overlay_chunks` — a worker that
finds no handle, or fails to attach, falls back to the on-disk reader
and produces bit-identical results.  The parent owns every segment: it
unlinks them when the dispatch that published them completes, so a
worker killed mid-chunk can never leak a segment.

Arenas preserve the on-disk chunk boundaries, so chunked simulation and
SimPoint window slicing behave identically to the streaming reader.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EngineError

logger = logging.getLogger(__name__)

#: Environment variable selecting the trace transport mode.
ENV_TRANSPORT = "REPRO_TRANSPORT"

#: Environment variable pointing workers at the handle-manifest
#: directory (set by the publishing parent, inherited by workers).
ENV_TRANSPORT_DIR = "REPRO_TRANSPORT_DIR"

#: Valid ``REPRO_TRANSPORT`` values.  ``auto`` resolves to ``shm`` when
#: ``multiprocessing.shared_memory`` works on this host, else ``disk``.
TRANSPORT_MODES = ("auto", "pickle", "shm", "disk")

#: Schema version of the JSON handle files.
HANDLE_VERSION = 1

_COLUMN_DTYPES: Tuple[Tuple[str, np.dtype], ...] = (
    ("pcs", np.dtype(np.int64)),
    ("data_addresses", np.dtype(np.int64)),
    ("data_kinds", np.dtype(np.uint8)),
)


def _shared_memory_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover — always present on CPython 3.8+
        return None
    return shared_memory


def resolve_transport_mode(value: Optional[str] = None) -> str:
    """Resolve a transport selector to ``pickle``/``shm``/``disk``."""
    if value is None:
        value = os.environ.get(ENV_TRANSPORT, "").strip() or "auto"
    mode = str(value).strip().lower()
    if mode not in TRANSPORT_MODES:
        raise EngineError(
            f"unknown trace transport {value!r}; choose one of "
            f"{list(TRANSPORT_MODES)} (also settable via {ENV_TRANSPORT})"
        )
    if mode == "auto":
        return "shm" if _shared_memory_module() is not None else "disk"
    return mode


def handle_name(trace_path: str) -> str:
    """Stable handle filename for one trace path."""
    digest = hashlib.sha256(
        os.path.abspath(str(trace_path)).encode("utf-8")
    ).hexdigest()[:24]
    return f"trace-{digest}.json"


def _attach_shared_memory(name: str):
    """Attach to an existing segment without adopting its lifetime.

    The parent that created the segment owns unlinking it.  Attaching
    must therefore not register the segment with this process's
    ``resource_tracker`` — otherwise a finishing worker would tear the
    segment down under every sibling.  Python 3.13 exposes
    ``track=False``; older versions need the unregister workaround.
    """
    shared_memory = _shared_memory_module()
    if shared_memory is None:  # pragma: no cover — guarded by the mode
        raise EngineError("multiprocessing.shared_memory is unavailable")
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = shared_memory.SharedMemory(name=name, create=False)
        # When this very process published the segment (serial in-process
        # execution), the attach's duplicate tracker registration deduped
        # into the creator's entry — unregistering here would strip it and
        # make the eventual unlink() complain.  Only scrub the tracker in
        # genuinely foreign (worker) processes.
        if not REGISTRY.owns_segment(name):
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover — tracker layout changed
                pass
        return segment


@dataclass
class TraceArena:
    """One published trace: columns in a segment plus chunk boundaries."""

    mode: str  #: ``"shm"`` or ``"disk"``.
    trace_path: str  #: Absolute path of the source ``.rtr`` file.
    segment: str  #: shm segment name, or the arena file path for disk.
    instructions: int
    chunk_offsets: List[int]  #: Start offset of each on-disk chunk.
    handle_path: Path  #: The JSON handle file advertised to workers.
    _shm: Optional[object] = None  #: Parent-side SharedMemory keepalive.

    def nbytes(self) -> int:
        n = self.instructions
        return sum(n * dtype.itemsize for _, dtype in _COLUMN_DTYPES)

    def to_handle(self) -> Dict:
        return {
            "version": HANDLE_VERSION,
            "mode": self.mode,
            "trace_path": self.trace_path,
            "segment": self.segment,
            "instructions": self.instructions,
            "chunk_offsets": list(self.chunk_offsets),
        }

    def unlink(self) -> None:
        """Remove the handle file and the backing segment (parent only)."""
        try:
            self.handle_path.unlink()
        except OSError:
            pass
        if self.mode == "shm":
            shm = self._shm
            self._shm = None
            if shm is not None:
                try:
                    shm.close()
                except OSError:  # pragma: no cover — double close
                    pass
                try:
                    shm.unlink()
                except (OSError, FileNotFoundError):
                    pass
        else:
            try:
                os.unlink(self.segment)
            except OSError:
                pass


def _column_layout(n: int) -> List[Tuple[str, np.dtype, int, int]]:
    """``(name, dtype, byte offset, byte length)`` per column for n rows."""
    layout = []
    offset = 0
    for name, dtype in _COLUMN_DTYPES:
        length = n * dtype.itemsize
        layout.append((name, dtype, offset, length))
        offset += length
    return layout


def _load_columns(trace_path: str):
    """Decode a trace once: concatenated columns + chunk offsets."""
    from ..traces.format import TraceRecording

    recording = TraceRecording(trace_path)
    pcs: List[np.ndarray] = []
    addrs: List[np.ndarray] = []
    kinds: List[np.ndarray] = []
    offsets: List[int] = []
    total = 0
    for chunk in recording.chunks():
        offsets.append(total)
        total += len(chunk)
        pcs.append(chunk.pcs)
        addrs.append(chunk.data_addresses)
        kinds.append(chunk.data_kinds)
    columns = {
        "pcs": np.concatenate(pcs) if pcs else np.zeros(0, dtype=np.int64),
        "data_addresses": (
            np.concatenate(addrs) if addrs else np.zeros(0, dtype=np.int64)
        ),
        "data_kinds": (
            np.concatenate(kinds) if kinds else np.zeros(0, dtype=np.uint8)
        ),
    }
    return columns, offsets, total


def _publish(trace_path: str, mode: str, directory: Path) -> TraceArena:
    """Materialize one trace into an arena and write its handle file."""
    columns, offsets, total = _load_columns(trace_path)
    layout = _column_layout(total)
    handle_path = directory / handle_name(trace_path)
    shm_keepalive = None
    if mode == "shm":
        shared_memory = _shared_memory_module()
        if shared_memory is None:
            raise EngineError(
                "REPRO_TRANSPORT=shm but multiprocessing.shared_memory "
                "is unavailable on this host"
            )
        nbytes = max(1, sum(length for _, _, _, length in layout))
        shm_keepalive = shared_memory.SharedMemory(create=True, size=nbytes)
        for name, dtype, offset, length in layout:
            view = np.ndarray(
                (total,), dtype=dtype, buffer=shm_keepalive.buf, offset=offset
            )
            view[:] = columns[name]
        segment = shm_keepalive.name
    else:
        fd, arena_file = tempfile.mkstemp(
            dir=str(directory), prefix="arena-", suffix=".bin"
        )
        with os.fdopen(fd, "wb") as fh:
            for name, _, _, _ in layout:
                fh.write(np.ascontiguousarray(columns[name]).tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        segment = arena_file
    arena = TraceArena(
        mode=mode,
        trace_path=os.path.abspath(str(trace_path)),
        segment=segment,
        instructions=total,
        chunk_offsets=offsets,
        handle_path=handle_path,
        _shm=shm_keepalive,
    )
    tmp = handle_path.with_name(handle_path.name + ".tmp")
    tmp.write_text(json.dumps(arena.to_handle(), sort_keys=True))
    os.replace(tmp, handle_path)
    return arena


class ArenaRegistry:
    """Process-wide refcounted publisher, safe for concurrent engines.

    Several engines (the service's :class:`EngineFleet` slots run in
    threads) may dispatch jobs over the same trace at once; the registry
    publishes each trace exactly once, hands every publisher the same
    arena, and unlinks only when the last one releases it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._arenas: Dict[str, TraceArena] = {}
        self._refs: Dict[str, int] = {}
        self._dir: Optional[Path] = None

    def manifest_dir(self) -> Path:
        """The handle directory, created lazily and exported via env."""
        with self._lock:
            return self._manifest_dir_locked()

    def _manifest_dir_locked(self) -> Path:
        if self._dir is None:
            self._dir = Path(
                tempfile.mkdtemp(prefix=f"repro-transport-{os.getpid()}-")
            )
            os.environ[ENV_TRANSPORT_DIR] = str(self._dir)
        return self._dir

    def acquire(self, trace_path: str, mode: str) -> Optional[TraceArena]:
        """Publish (or re-reference) one trace; ``None`` if it fails."""
        key = os.path.abspath(str(trace_path))
        with self._lock:
            arena = self._arenas.get(key)
            if arena is not None:
                self._refs[key] += 1
                return arena
            directory = self._manifest_dir_locked()
            try:
                arena = _publish(key, mode, directory)
            except Exception as error:  # noqa: BLE001 — advisory layer
                logger.warning(
                    "trace transport: publishing %s via %s failed (%s); "
                    "workers will stream from disk",
                    key, mode, error,
                )
                return None
            self._arenas[key] = arena
            self._refs[key] = 1
            return arena

    def release(self, trace_path: str) -> None:
        key = os.path.abspath(str(trace_path))
        with self._lock:
            if key not in self._refs:
                return
            self._refs[key] -= 1
            if self._refs[key] > 0:
                return
            arena = self._arenas.pop(key)
            del self._refs[key]
        arena.unlink()

    def active_segments(self) -> List[str]:
        with self._lock:
            return [arena.segment for arena in self._arenas.values()]

    def owns_segment(self, name: str) -> bool:
        """Whether this process published the named shm segment."""
        with self._lock:
            return any(
                arena.mode == "shm" and arena.segment == name
                for arena in self._arenas.values()
            )

    def reset(self) -> None:
        """Unlink everything (tests and interpreter teardown)."""
        with self._lock:
            arenas = list(self._arenas.values())
            self._arenas.clear()
            self._refs.clear()
        for arena in arenas:
            arena.unlink()


#: The process-wide registry engines publish through.
REGISTRY = ArenaRegistry()


def trace_paths_for_jobs(jobs: Sequence[object]) -> List[str]:
    """Distinct trace file paths referenced by a batch of jobs."""
    from ..traces.registry import is_trace_ref, parse_trace_ref

    seen: Dict[str, None] = {}
    for job in jobs:
        benchmark = getattr(job, "benchmark", None)
        if isinstance(benchmark, str) and is_trace_ref(benchmark):
            try:
                ref = parse_trace_ref(benchmark)
            except Exception:  # noqa: BLE001 — job validation owns errors
                continue
            seen.setdefault(os.path.abspath(ref.path))
    return list(seen)


def publish_for_jobs(
    jobs: Sequence[object], mode: Optional[str] = None
) -> List[str]:
    """Publish arenas for every trace a job batch references.

    Returns the published paths (pass them to :func:`release_paths`
    when the dispatch completes).  ``pickle`` mode publishes nothing.
    """
    resolved = resolve_transport_mode(mode)
    if resolved == "pickle":
        return []
    published = []
    for path in trace_paths_for_jobs(jobs):
        if REGISTRY.acquire(path, resolved) is not None:
            published.append(path)
    return published


def release_paths(paths: Sequence[str]) -> None:
    for path in paths:
        REGISTRY.release(path)


# ----------------------------------------------------------------------
# Worker side: the overlay
# ----------------------------------------------------------------------

def _read_handle(trace_path: str) -> Optional[Dict]:
    directory = os.environ.get(ENV_TRANSPORT_DIR)
    if not directory:
        return None
    handle_path = Path(directory) / handle_name(trace_path)
    try:
        handle = json.loads(handle_path.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(handle, dict)
        or handle.get("version") != HANDLE_VERSION
        or handle.get("mode") not in ("shm", "disk")
    ):
        return None
    return handle


class _SegmentKeeper:
    """Closes an attached shm segment once every column view is gone.

    numpy does *not* hold a buffer export on the underlying mmap — a
    view built over ``SharedMemory.buf`` keeps the raw ``mmap.mmap`` in
    its ``base`` chain, yet ``SharedMemory.close()`` still unmaps the
    pages under it (verified: reading the view afterwards segfaults).
    Closing is therefore driven by garbage collection: each column array
    carries a ``weakref.finalize`` that decrements this keeper, and the
    segment is closed only when the last array dies.  Chunk slices keep
    their column array alive through ``.base``, so views handed to the
    simulator can never outlive the mapping.
    """

    def __init__(self, segment, count: int) -> None:
        self._lock = threading.Lock()
        self._segment = segment
        self._count = count

    def done(self) -> None:
        with self._lock:
            self._count -= 1
            if self._count > 0 or self._segment is None:
                return
            segment, self._segment = self._segment, None
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover — double close
            pass


def _attach_columns(handle: Dict):
    """Zero-copy column views for a handle.

    Mapping lifetime is GC-driven in both modes: shm columns keep the
    segment open through :class:`_SegmentKeeper`; disk columns keep the
    ``np.memmap`` alive through their ``base`` chain (numpy closes the
    file mapping when the last view is collected).
    """
    total = int(handle["instructions"])
    layout = _column_layout(total)
    if handle["mode"] == "shm":
        segment = _attach_shared_memory(str(handle["segment"]))
        buf = segment.buf
        columns = {
            name: np.ndarray((total,), dtype=dtype, buffer=buf, offset=offset)
            for name, dtype, offset, _ in layout
        }
        keeper = _SegmentKeeper(segment, len(columns))
        for array in columns.values():
            weakref.finalize(array, keeper.done)
        return columns
    arena = np.memmap(str(handle["segment"]), dtype=np.uint8, mode="r")
    expected = sum(length for _, _, _, length in layout)
    if arena.size < expected:
        raise EngineError(
            f"trace arena {handle['segment']} holds {arena.size} bytes, "
            f"expected {expected}"
        )
    return {
        name: np.frombuffer(arena, dtype=dtype, count=total, offset=offset)
        for name, dtype, offset, _ in layout
    }


def overlay_chunks(
    trace_path: str,
    window: Optional[int] = None,
    window_instructions: Optional[int] = None,
) -> Optional[Iterator["object"]]:
    """Chunk iterator over a published arena, or ``None`` to fall back.

    Yields :class:`~repro.cpu.trace.TraceChunk` views straight into the
    arena, honouring the original on-disk chunk boundaries — windowed
    refs slice exactly like
    :meth:`~repro.traces.format.TraceRecording.window_chunks`.
    """
    handle = _read_handle(trace_path)
    if handle is None:
        return None
    try:
        columns = _attach_columns(handle)
    except Exception as error:  # noqa: BLE001 — advisory layer
        logger.warning(
            "trace transport: attaching to arena for %s failed (%s); "
            "streaming from disk instead",
            trace_path, error,
        )
        return None
    offsets = [int(o) for o in handle["chunk_offsets"]]
    total = int(handle["instructions"])
    return _arena_chunks(
        trace_path, columns, offsets, total, window, window_instructions
    )


def _arena_chunks(
    trace_path, columns, offsets, total, window, window_instructions
) -> Iterator["object"]:
    from ..cpu.trace import TraceChunk
    from ..errors import ConfigurationError

    if window is None:
        start, stop = 0, total
    else:
        if window < 0:
            raise ConfigurationError(
                f"window must be non-negative, got {window}"
            )
        if not window_instructions or window_instructions <= 0:
            raise ConfigurationError(
                f"window_instructions must be positive, got "
                f"{window_instructions}"
            )
        start = window * window_instructions
        stop = start + window_instructions
    yielded = False
    bounds = offsets + [total]
    for index in range(len(offsets)):
        chunk_start, chunk_stop = bounds[index], bounds[index + 1]
        if chunk_stop <= start or chunk_start >= stop:
            continue
        lo = max(start, chunk_start)
        hi = min(stop, chunk_stop)
        if hi <= lo:
            continue
        yield TraceChunk(
            columns["pcs"][lo:hi],
            columns["data_addresses"][lo:hi],
            columns["data_kinds"][lo:hi],
        )
        yielded = True
    if window is not None and not yielded:
        raise ConfigurationError(
            f"window {window} (instructions {start}..{stop}) lies "
            f"beyond the end of trace {trace_path}"
        )
