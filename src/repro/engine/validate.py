"""Result-integrity guardrails: the invariant-validation gate.

Every fresh simulation result — whatever backend produced it — passes
through :func:`check_result` before it is cached, journaled, or handed
to an experiment.  The checks are the model's own physics and accounting
identities, so a worker that silently returns garbage (bit flips, a
miscompiled numpy, an injected ``garbage`` fault) is caught *here*
rather than poisoning the content-addressed store every later run and
every other shard reads from:

* cycle/instruction/stall counts are positive and consistent;
* per-cache access statistics balance (``hits + misses == accesses``,
  compulsory misses bounded by misses);
* interval populations are well-formed: positive lengths no longer than
  the run, known kinds, annotation flags aligned and disjoint, and a
  count consistent with the access/eviction counts that generated them;
* energies derived from the intervals stay inside the oracle envelope:
  the OPT lower bound lies in ``[0, baseline]`` and a full policy
  evaluation yields non-negative mode energies whose cycle shares sum
  to one.

A failing result is *quarantined*: recorded in telemetry (manifest v5's
``quarantine`` section), never written to the store, and the job is
re-run.  On the terminal serial path a failing result raises
:class:`InvalidResultError`, which flows through the ordinary retry
machinery — a transient mangling is survived, a persistent one surfaces
as a clean per-job failure instead of a corrupt cache entry.

The gate evaluates the energy checks at one fixed technology node (70 nm,
the paper's headline node); the envelope identities it asserts are
node-independent, so one node suffices and the model/policy pair is
built once and cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

import numpy as np

from ..errors import EngineError, ReproError

#: Technology node (nm) the energy-envelope checks are evaluated at.
GATE_NODE_NM = 70

#: Absolute tolerance for floating-point identity checks.
TOLERANCE = 1e-6

#: Slack on the interval-count bound: a cache can close one tail/cold
#: interval per frame at the end of simulation on top of the per-access
#: intervals; no configured L1 in this repository has more frames.
_FRAME_SLACK = 4096


class InvalidResultError(EngineError):
    """A simulation result failed the invariant-validation gate."""


@lru_cache(maxsize=1)
def _gate_context():
    """The (energy model, reference policy) pair the energy checks use.

    Imported lazily and cached: building the model calibrates re-fetch
    energies, which is cheap but not free, and the gate runs once per
    fresh result.
    """
    from ..core.energy import ModeEnergyModel
    from ..core.policy import OptHybrid
    from ..power.technology import paper_nodes

    model = ModeEnergyModel(paper_nodes()[GATE_NODE_NM])
    return model, OptHybrid(model)


def check_result(annotated) -> List[str]:
    """Validate one annotated simulation result; returns violations.

    An empty list means the result passes every invariant.  The checks
    never raise: anything the result's own malformedness breaks is
    reported as a violation, so a deeply-corrupt payload is quarantined
    rather than crashing the engine.
    """
    try:
        return _check(annotated)
    except ReproError as error:
        return [f"invariant evaluation rejected the result: {error}"]
    except Exception as error:  # noqa: BLE001 — corrupt payloads may break anything
        return [
            f"invariant evaluation crashed: {type(error).__name__}: {error}"
        ]


def _check(annotated) -> List[str]:
    violations: List[str] = []
    result = getattr(annotated, "result", None)
    if result is None:
        return ["payload carries no simulation result"]

    cycles = int(result.cycles)
    instructions = int(result.instructions)
    stalls = int(result.stall_cycles)
    if cycles <= 0:
        violations.append(f"cycles must be positive, got {cycles}")
    if instructions <= 0:
        violations.append(f"instructions must be positive, got {instructions}")
    if stalls < 0:
        violations.append(f"stall cycles must be non-negative, got {stalls}")
    elif cycles > 0 and stalls > cycles:
        violations.append(
            f"stall cycles ({stalls}) exceed total cycles ({cycles})"
        )

    for cache_name, level in (("l1i", "L1I"), ("l1d", "L1D")):
        annotations = getattr(annotated, cache_name, None)
        if annotations is None:
            violations.append(f"{cache_name}: annotations missing")
            continue
        violations.extend(
            _check_cache(cache_name, level, annotations, result, cycles)
        )
    return violations


def _check_cache(cache_name, level, annotations, result, cycles) -> List[str]:
    violations: List[str] = []
    intervals = annotations.intervals
    lengths = np.asarray(intervals.lengths)
    kinds = np.asarray(intervals.kinds)
    count = len(lengths)

    # Annotation flags: pickling bypasses __post_init__ validation, so a
    # mangled payload can carry misaligned or overlapping flags.
    for label in ("nextline", "stride", "tail"):
        flags = np.asarray(getattr(annotations, label))
        if flags.shape != (count,):
            violations.append(
                f"{cache_name}: {label} flags misaligned with the "
                f"{count} interval(s)"
            )
            return violations
    if count and bool(np.any(annotations.nextline & annotations.stride)):
        violations.append(
            f"{cache_name}: next-line and stride flags overlap"
        )

    if count:
        shortest = int(lengths.min())
        longest = int(lengths.max())
        if shortest <= 0:
            violations.append(
                f"{cache_name}: interval lengths must be positive, "
                f"got {shortest}"
            )
        if cycles > 0 and longest > cycles:
            violations.append(
                f"{cache_name}: longest interval ({longest} cycles) "
                f"exceeds the run ({cycles} cycles)"
            )
        if kinds.shape != lengths.shape or int(kinds.max()) > 2:
            violations.append(f"{cache_name}: unknown interval kinds")

    stats = result.stats.levels.get(level)
    if stats is None:
        violations.append(f"{cache_name}: {level} statistics missing")
        return violations
    accesses = int(stats.accesses)
    hits = int(stats.hits)
    misses = int(stats.misses)
    evictions = int(stats.evictions)
    compulsory = int(stats.compulsory_misses)
    if min(accesses, hits, misses, evictions, compulsory) < 0:
        violations.append(f"{cache_name}: negative access statistics")
    elif hits + misses != accesses:
        violations.append(
            f"{cache_name}: hits ({hits}) + misses ({misses}) != "
            f"accesses ({accesses})"
        )
    elif compulsory > misses:
        violations.append(
            f"{cache_name}: compulsory misses ({compulsory}) exceed "
            f"misses ({misses})"
        )
    # Every interval is closed by an access or by end-of-run cleanup
    # (at most one dead/cold interval per frame), so a population far
    # larger than the access stream is fabricated.
    if count > 2 * max(accesses, 0) + max(evictions, 0) + _FRAME_SLACK:
        violations.append(
            f"{cache_name}: {count} interval(s) inconsistent with "
            f"{accesses} access(es) and {evictions} eviction(s)"
        )

    if violations or not count:
        return violations
    return violations + _check_energy(cache_name, intervals, lengths)


def _check_energy(cache_name, intervals, lengths) -> List[str]:
    from ..core.oracle import oracle_energy
    from ..core.savings import evaluate_policy

    violations: List[str] = []
    model, policy = _gate_context()
    baseline = float(model.active_energy_array(lengths).sum())
    oracle = float(oracle_energy(model, lengths))
    if not np.isfinite(baseline) or baseline < 0.0:
        violations.append(
            f"{cache_name}: baseline energy is not finite and non-negative "
            f"({baseline!r})"
        )
        return violations
    if not np.isfinite(oracle) or oracle < -TOLERANCE:
        violations.append(
            f"{cache_name}: oracle energy must be non-negative, got {oracle!r}"
        )
    elif oracle > baseline * (1.0 + 1e-9) + TOLERANCE:
        violations.append(
            f"{cache_name}: oracle energy ({oracle:.3f}) escapes the "
            f"all-active baseline envelope ({baseline:.3f})"
        )

    report = evaluate_policy(policy, intervals)
    breakdown = report.breakdown.values()
    if any(entry.energy < -TOLERANCE for entry in breakdown):
        violations.append(f"{cache_name}: negative per-mode energy")
    share = sum(entry.cycle_share for entry in breakdown)
    if abs(share - 1.0) > TOLERANCE:
        violations.append(
            f"{cache_name}: mode cycle shares sum to {share:.9f}, not 1"
        )
    if sum(entry.interval_count for entry in breakdown) != len(intervals):
        violations.append(
            f"{cache_name}: mode breakdown drops or duplicates intervals"
        )
    return violations
