"""Supervised dispatch: circuit breakers and graceful backend degradation.

The :class:`Supervisor` owns the engine's backend chain (typically
``pool -> subprocess``, with the in-process serial executor as the
terminal stage in :mod:`~repro.engine.parallel`) and decides, per
dispatch, where pending jobs run:

* each backend reports *infrastructure* failures (a worker died, the
  pool broke, heartbeats went silent) separately from per-job failures;
  jobs stranded by infrastructure move to the next backend with their
  attempt budget intact, so a run always completes somewhere;
* each backend has a :class:`CircuitBreaker`: ``closed`` until
  ``REPRO_BREAKER_THRESHOLD`` consecutive infrastructure failures, then
  ``open`` — dispatches skip it outright — until
  ``REPRO_BREAKER_COOLDOWN`` seconds pass, then ``half-open``: one probe
  dispatch either closes it again or re-opens it.  Breakers persist
  across ``engine.run`` calls, so a long suite stops feeding a flapping
  pool instead of timing out on it once per experiment;
* attempt numbers continue *across* backends (a job that crashed the
  pool on attempt 1 reaches the subprocess backend on attempt 2), which
  keeps deterministic fault schedules — and therefore results — stable
  whatever the degradation path;
* jobs whose retries are exhausted skip the remaining backends: the
  terminal serial path gives them one last in-process attempt so a
  genuine error surfaces with a clean traceback.

Every breaker transition is recorded and lands in the run manifest
(v5's ``breakers`` section) together with per-backend states, so a
degraded run explains itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .retry import RetryPolicy, _env_float, _env_int

#: Environment variable: consecutive infra failures that open a breaker.
ENV_BREAKER_THRESHOLD = "REPRO_BREAKER_THRESHOLD"

#: Environment variable: seconds an open breaker waits before a probe.
ENV_BREAKER_COOLDOWN = "REPRO_BREAKER_COOLDOWN"

#: Default failure threshold (closed -> open).
DEFAULT_BREAKER_THRESHOLD = 3

#: Default cooldown before a half-open probe, seconds.
DEFAULT_BREAKER_COOLDOWN = 30.0


def default_breaker_threshold() -> int:
    """Breaker threshold from ``REPRO_BREAKER_THRESHOLD`` (default 3)."""
    value = _env_int(ENV_BREAKER_THRESHOLD, minimum=1)
    return DEFAULT_BREAKER_THRESHOLD if value is None else value


def default_breaker_cooldown() -> float:
    """Breaker cooldown from ``REPRO_BREAKER_COOLDOWN`` (default 30 s)."""
    value = _env_float(ENV_BREAKER_COOLDOWN, minimum=0.0)
    return DEFAULT_BREAKER_COOLDOWN if value is None else value


class CircuitBreaker:
    """Closed -> open -> half-open failure gate for one backend."""

    def __init__(
        self,
        name: str,
        threshold: int,
        cooldown: float,
        transitions: Optional[List[Dict]] = None,
    ) -> None:
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: Shared transition log (the supervisor passes its own).
        self.transitions = transitions if transitions is not None else []

    def _move(self, state: str, reason: str) -> None:
        self.transitions.append(
            {
                "backend": self.name,
                "from": self.state,
                "to": state,
                "reason": reason,
                "consecutive_failures": self.consecutive_failures,
            }
        )
        self.state = state

    def allow(self) -> bool:
        """Whether the next dispatch may use this backend."""
        if self.state == "open":
            if (
                self._opened_at is not None
                and time.monotonic() - self._opened_at >= self.cooldown
            ):
                self._move("half-open", "cooldown elapsed; probing")
                return True
            return False
        return True  # closed, or half-open with the probe in flight

    def record(self, infra_failures: Sequence[str]) -> None:
        """Feed one dispatch's infrastructure failures back in."""
        if infra_failures:
            self.consecutive_failures += len(infra_failures)
            if self.state == "half-open":
                self._opened_at = time.monotonic()
                self._move("open", f"probe failed ({infra_failures[0]})")
            elif (
                self.state == "closed"
                and self.consecutive_failures >= self.threshold
            ):
                self._opened_at = time.monotonic()
                self._move(
                    "open",
                    f"{self.consecutive_failures} consecutive "
                    f"infrastructure failure(s), last: {infra_failures[-1]}",
                )
        else:
            self.consecutive_failures = 0
            if self.state != "closed":
                self._move("closed", "dispatch completed cleanly")


@dataclass(frozen=True)
class Completion:
    """One job completed by a supervised backend."""

    annotated: object
    wall_seconds: float
    attempts: int
    source: str


@dataclass
class SupervisionOutcome:
    """Everything one :meth:`Supervisor.dispatch` call produced.

    ``leftovers`` are ``(job, attempts_consumed)`` pairs for the
    caller's terminal serial path; ``engaged`` says whether any chain
    backend was tried (or breaker-skipped), i.e. whether serial work is
    a *fallback* rather than the plan.
    """

    completed: Dict[object, Completion] = field(default_factory=dict)
    leftovers: List[Tuple[object, int]] = field(default_factory=list)
    engaged: bool = False
    notes: List[str] = field(default_factory=list)
    retries: List[Dict] = field(default_factory=list)
    heartbeats: List[Dict] = field(default_factory=list)


class Supervisor:
    """Routes pending jobs down the backend chain, breakers permitting."""

    def __init__(
        self,
        chain: Sequence[object],
        policy: RetryPolicy,
        threshold: Optional[int] = None,
        cooldown: Optional[float] = None,
    ) -> None:
        self.chain = list(chain)
        self.policy = policy
        self.transitions: List[Dict] = []
        threshold = (
            threshold if threshold is not None else default_breaker_threshold()
        )
        cooldown = (
            cooldown if cooldown is not None else default_breaker_cooldown()
        )
        self.breakers = {
            backend.name: CircuitBreaker(
                backend.name, threshold, cooldown, self.transitions
            )
            for backend in self.chain
        }

    def describe_chain(self) -> List[str]:
        """Backend names in dispatch order (for the run manifest)."""
        return [backend.name for backend in self.chain]

    def snapshot(self) -> Dict:
        """Breaker states + transition log, JSON-ready for telemetry."""
        return {
            "states": {
                name: breaker.state for name, breaker in self.breakers.items()
            },
            "transitions": [dict(t) for t in self.transitions],
            "trips": sum(
                1 for t in self.transitions if t["to"] == "open"
            ),
        }

    def dispatch(self, jobs: Sequence[object]) -> SupervisionOutcome:
        """Run pending jobs through the chain; leftovers go serial."""
        out = SupervisionOutcome()
        remaining: Dict[object, int] = {job: 0 for job in jobs}
        exhausted: Dict[object, int] = {}
        for index, backend in enumerate(self.chain):
            if not remaining:
                break
            if index == 0 and not backend.worth_starting(len(remaining)):
                break  # parallelism not worth it: plain serial, no fallback
            primary = index == 0 and not out.engaged
            breaker = self.breakers[backend.name]
            if not breaker.allow():
                out.notes.append(
                    f"{backend.name} backend circuit breaker is open "
                    f"(after {breaker.consecutive_failures} infrastructure "
                    "failure(s)); skipping it"
                )
                out.engaged = True
                continue
            report = backend.run(
                list(remaining), dict(remaining), self.policy
            )
            out.notes.extend(report.notes)
            out.retries.extend(report.retries)
            out.heartbeats.extend(report.heartbeats)
            breaker.record(report.infra_failures)
            for job, (annotated, wall) in report.completed.items():
                source = backend.source if primary else backend.fallback_source
                out.completed[job] = Completion(
                    annotated=annotated,
                    wall_seconds=wall,
                    attempts=report.attempts.get(
                        job, remaining.get(job, 0) + 1
                    ),
                    source=source,
                )
                remaining.pop(job, None)
            for job in report.exhausted:
                if job in remaining:
                    exhausted[job] = report.attempts.get(job, remaining[job])
                    remaining.pop(job)
            for job in remaining:
                remaining[job] = report.attempts.get(job, remaining[job])
            if remaining or report.exhausted:
                out.engaged = True  # the backend stranded work: degrade
        for job in jobs:
            if job not in out.completed:
                out.leftovers.append(
                    (job, exhausted.get(job, remaining.get(job, 0)))
                )
        return out


#: Breaker states ordered by severity, for cross-slot merging.
_STATE_RANK = {"closed": 0, "half-open": 1, "open": 2}


def merge_breaker_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Combine per-slot :meth:`Supervisor.snapshot` dicts into one view.

    A fleet of engine slots (one supervisor each — supervisors are not
    thread-safe, so concurrent slots cannot share one) still wants a
    single ``breakers`` section in the manifest.  States merge to the
    *most degraded* state any slot observed per backend, transitions
    concatenate in slot order, and trips sum.
    """
    states: Dict[str, str] = {}
    transitions: List[Dict] = []
    trips = 0
    for snapshot in snapshots:
        for name, state in snapshot.get("states", {}).items():
            current = states.get(name)
            if current is None or (
                _STATE_RANK.get(state, 0) > _STATE_RANK.get(current, 0)
            ):
                states[name] = state
        transitions.extend(dict(t) for t in snapshot.get("transitions", []))
        trips += int(snapshot.get("trips", 0))
    return {"states": states, "transitions": transitions, "trips": trips}
