"""Supervised dispatch: circuit breakers and graceful backend degradation.

The :class:`Supervisor` owns the engine's backend chain (typically
``pool -> subprocess``, with the in-process serial executor as the
terminal stage in :mod:`~repro.engine.parallel`) and decides, per
dispatch, where pending jobs run:

* each backend reports *infrastructure* failures (a worker died, the
  pool broke, heartbeats went silent) separately from per-job failures;
  jobs stranded by infrastructure move to the next backend with their
  attempt budget intact, so a run always completes somewhere;
* each backend has a :class:`CircuitBreaker`: ``closed`` until
  ``REPRO_BREAKER_THRESHOLD`` consecutive infrastructure failures, then
  ``open`` — dispatches skip it outright — until
  ``REPRO_BREAKER_COOLDOWN`` seconds pass, then ``half-open``: one probe
  dispatch either closes it again or re-opens it.  Breakers persist
  across ``engine.run`` calls, so a long suite stops feeding a flapping
  pool instead of timing out on it once per experiment;
* attempt numbers continue *across* backends (a job that crashed the
  pool on attempt 1 reaches the subprocess backend on attempt 2), which
  keeps deterministic fault schedules — and therefore results — stable
  whatever the degradation path;
* jobs whose retries are exhausted skip the remaining backends: the
  terminal serial path gives them one last in-process attempt so a
  genuine error surfaces with a clean traceback.

Every breaker transition is recorded and lands in the run manifest
(v5's ``breakers`` section) together with per-backend states, so a
degraded run explains itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .retry import RetryPolicy, _env_float, _env_int

#: Environment variable: consecutive infra failures that open a breaker.
ENV_BREAKER_THRESHOLD = "REPRO_BREAKER_THRESHOLD"

#: Environment variable: seconds an open breaker waits before a probe.
ENV_BREAKER_COOLDOWN = "REPRO_BREAKER_COOLDOWN"

#: Default failure threshold (closed -> open).
DEFAULT_BREAKER_THRESHOLD = 3

#: Default cooldown before a half-open probe, seconds.
DEFAULT_BREAKER_COOLDOWN = 30.0


def default_breaker_threshold() -> int:
    """Breaker threshold from ``REPRO_BREAKER_THRESHOLD`` (default 3)."""
    value = _env_int(ENV_BREAKER_THRESHOLD, minimum=1)
    return DEFAULT_BREAKER_THRESHOLD if value is None else value


def default_breaker_cooldown() -> float:
    """Breaker cooldown from ``REPRO_BREAKER_COOLDOWN`` (default 30 s)."""
    value = _env_float(ENV_BREAKER_COOLDOWN, minimum=0.0)
    return DEFAULT_BREAKER_COOLDOWN if value is None else value


#: Cap on the half-open backoff exponent: a breaker that keeps failing
#: its probes waits at most ``cooldown * 2**_MAX_REOPEN_SHIFT``.
_MAX_REOPEN_SHIFT = 6


class CircuitBreaker:
    """Closed -> open -> half-open failure gate for one backend.

    ``clock`` defaults to wall time; the remote backend passes a
    per-host dispatch-opportunity counter instead, which makes probe
    scheduling deterministic (the Nth opportunity probes, whatever the
    wall clock did in between).

    A single successful half-open probe closes the breaker and resets
    the backoff schedule.  A *failed* probe re-opens it with the next
    backoff step — ``cooldown * 2**reopens``, capped — instead of
    restarting the schedule from the base cooldown, so a persistently
    sick backend is probed geometrically less often.
    """

    def __init__(
        self,
        name: str,
        threshold: int,
        cooldown: float,
        transitions: Optional[List[Dict]] = None,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        #: How many times a failed probe re-opened the breaker since it
        #: last closed; drives the escalating half-open backoff.
        self.reopens = 0
        self._opened_at: Optional[float] = None
        #: Shared transition log (the supervisor passes its own).
        self.transitions = transitions if transitions is not None else []

    def current_cooldown(self) -> float:
        """The wait before the next half-open probe (escalates on failure)."""
        return self.cooldown * (2 ** min(self.reopens, _MAX_REOPEN_SHIFT))

    def _move(self, state: str, reason: str) -> None:
        self.transitions.append(
            {
                "backend": self.name,
                "from": self.state,
                "to": state,
                "reason": reason,
                "consecutive_failures": self.consecutive_failures,
            }
        )
        self.state = state

    def allow(self) -> bool:
        """Whether the next dispatch may use this backend."""
        if self.state == "open":
            if (
                self._opened_at is not None
                and self.clock() - self._opened_at >= self.current_cooldown()
            ):
                self._move("half-open", "cooldown elapsed; probing")
                return True
            return False
        return True  # closed, or half-open with the probe in flight

    def record(self, infra_failures: Sequence[str]) -> None:
        """Feed one dispatch's infrastructure failures back in."""
        if infra_failures:
            self.consecutive_failures += len(infra_failures)
            if self.state == "half-open":
                self.reopens += 1
                self._opened_at = self.clock()
                self._move(
                    "open",
                    f"probe failed ({infra_failures[0]}); next probe in "
                    f"{self.current_cooldown():g}",
                )
            elif (
                self.state == "closed"
                and self.consecutive_failures >= self.threshold
            ):
                self._opened_at = self.clock()
                self._move(
                    "open",
                    f"{self.consecutive_failures} consecutive "
                    f"infrastructure failure(s), last: {infra_failures[-1]}",
                )
        else:
            self.consecutive_failures = 0
            self.reopens = 0
            if self.state != "closed":
                self._move("closed", "dispatch completed cleanly")


class FlapCounter:
    """Flap tally that halves after every clean quiet period.

    The subprocess and remote watchdogs count worker/host flaps (hard
    deaths) to decide when a fault domain is too sick to keep feeding.
    A plain monotone counter would let one early flap bias a long run
    toward quarantine forever; this counter instead halves for every
    ``decay_after`` seconds that pass without a new flap, so only
    *sustained* flapping accumulates.
    """

    def __init__(self, decay_after: float, clock=time.monotonic) -> None:
        if decay_after < 0:
            raise ValueError(
                f"decay_after must be non-negative, got {decay_after!r}"
            )
        self.decay_after = decay_after
        self.clock = clock
        self._count = 0
        self._last_flap: Optional[float] = None

    def _decay(self) -> None:
        if self._last_flap is None or self.decay_after <= 0:
            return
        elapsed = self.clock() - self._last_flap
        periods = int(elapsed // self.decay_after)
        if periods <= 0:
            return
        # Halve once per fully elapsed quiet period; advance the anchor
        # by the consumed periods so partial periods keep accumulating.
        self._count >>= min(periods, self._count.bit_length())
        self._last_flap += periods * self.decay_after

    def record(self) -> int:
        """Count one flap; returns the post-decay running value."""
        self._decay()
        self._count += 1
        self._last_flap = self.clock()
        return self._count

    def value(self) -> int:
        """The current (decayed) flap count."""
        self._decay()
        return self._count


@dataclass(frozen=True)
class Completion:
    """One job completed by a supervised backend."""

    annotated: object
    wall_seconds: float
    attempts: int
    source: str


@dataclass
class SupervisionOutcome:
    """Everything one :meth:`Supervisor.dispatch` call produced.

    ``leftovers`` are ``(job, attempts_consumed)`` pairs for the
    caller's terminal serial path; ``engaged`` says whether any chain
    backend was tried (or breaker-skipped), i.e. whether serial work is
    a *fallback* rather than the plan.
    """

    completed: Dict[object, Completion] = field(default_factory=dict)
    leftovers: List[Tuple[object, int]] = field(default_factory=list)
    engaged: bool = False
    notes: List[str] = field(default_factory=list)
    retries: List[Dict] = field(default_factory=list)
    heartbeats: List[Dict] = field(default_factory=list)
    #: Degradation-ladder descents this dispatch took, in order: each is
    #: ``{"from", "to", "jobs", "reason"}`` (manifest v9 material).
    descents: List[Dict] = field(default_factory=list)
    #: Rungs that actually completed at least one job, dispatch order.
    rungs_used: List[str] = field(default_factory=list)
    #: Per-host fault-domain counters reported by host-aware backends
    #: (the remote backend), keyed by host name.
    hosts: Dict[str, Dict] = field(default_factory=dict)


class Supervisor:
    """Routes pending jobs down the backend chain, breakers permitting."""

    def __init__(
        self,
        chain: Sequence[object],
        policy: RetryPolicy,
        threshold: Optional[int] = None,
        cooldown: Optional[float] = None,
    ) -> None:
        self.chain = list(chain)
        self.policy = policy
        self.transitions: List[Dict] = []
        threshold = (
            threshold if threshold is not None else default_breaker_threshold()
        )
        cooldown = (
            cooldown if cooldown is not None else default_breaker_cooldown()
        )
        self.breakers = {
            backend.name: CircuitBreaker(
                backend.name, threshold, cooldown, self.transitions
            )
            for backend in self.chain
        }

    def describe_chain(self) -> List[str]:
        """Backend names in dispatch order (for the run manifest)."""
        return [backend.name for backend in self.chain]

    def snapshot(self) -> Dict:
        """Breaker states + transition log, JSON-ready for telemetry."""
        return {
            "states": {
                name: breaker.state for name, breaker in self.breakers.items()
            },
            "transitions": [dict(t) for t in self.transitions],
            "trips": sum(
                1 for t in self.transitions if t["to"] == "open"
            ),
        }

    def dispatch(self, jobs: Sequence[object]) -> SupervisionOutcome:
        """Run pending jobs through the chain; leftovers go serial."""
        out = SupervisionOutcome()
        remaining: Dict[object, int] = {job: 0 for job in jobs}
        exhausted: Dict[object, int] = {}

        def next_rung(index: int) -> str:
            return (
                self.chain[index + 1].name
                if index + 1 < len(self.chain)
                else "serial"
            )

        for index, backend in enumerate(self.chain):
            if not remaining:
                break
            if index == 0 and not backend.worth_starting(len(remaining)):
                break  # parallelism not worth it: plain serial, no fallback
            primary = index == 0 and not out.engaged
            breaker = self.breakers[backend.name]
            if not breaker.allow():
                out.notes.append(
                    f"{backend.name} backend circuit breaker is open "
                    f"(after {breaker.consecutive_failures} infrastructure "
                    "failure(s)); skipping it"
                )
                out.engaged = True
                out.descents.append(
                    {
                        "from": backend.name,
                        "to": next_rung(index),
                        "jobs": len(remaining),
                        "reason": "circuit breaker open",
                    }
                )
                continue
            report = backend.run(
                list(remaining), dict(remaining), self.policy
            )
            out.notes.extend(report.notes)
            out.retries.extend(report.retries)
            out.heartbeats.extend(report.heartbeats)
            for host, counters in getattr(report, "hosts", {}).items():
                merged = out.hosts.setdefault(host, {})
                for field_name, value in counters.items():
                    if isinstance(value, list):
                        merged.setdefault(field_name, []).extend(value)
                    elif isinstance(value, (int, float)):
                        merged[field_name] = (
                            merged.get(field_name, 0) + value
                        )
                    else:
                        merged[field_name] = value
            breaker.record(report.infra_failures)
            if report.completed:
                out.rungs_used.append(backend.name)
            for job, (annotated, wall) in report.completed.items():
                source = backend.source if primary else backend.fallback_source
                out.completed[job] = Completion(
                    annotated=annotated,
                    wall_seconds=wall,
                    attempts=report.attempts.get(
                        job, remaining.get(job, 0) + 1
                    ),
                    source=source,
                )
                remaining.pop(job, None)
            for job in report.exhausted:
                if job in remaining:
                    exhausted[job] = report.attempts.get(job, remaining[job])
                    remaining.pop(job)
            for job in remaining:
                remaining[job] = report.attempts.get(job, remaining[job])
            if remaining or report.exhausted:
                out.engaged = True  # the backend stranded work: degrade
                stranded = len(remaining) + len(report.exhausted)
                reason = (
                    report.infra_failures[-1]
                    if report.infra_failures
                    else "jobs left unfinished"
                )
                out.descents.append(
                    {
                        "from": backend.name,
                        "to": next_rung(index),
                        "jobs": stranded,
                        "reason": reason,
                    }
                )
        for job in jobs:
            if job not in out.completed:
                out.leftovers.append(
                    (job, exhausted.get(job, remaining.get(job, 0)))
                )
        if out.leftovers:
            out.rungs_used.append("serial")
        return out


#: Breaker states ordered by severity, for cross-slot merging.
_STATE_RANK = {"closed": 0, "half-open": 1, "open": 2}


def merge_breaker_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Combine per-slot :meth:`Supervisor.snapshot` dicts into one view.

    A fleet of engine slots (one supervisor each — supervisors are not
    thread-safe, so concurrent slots cannot share one) still wants a
    single ``breakers`` section in the manifest.  States merge to the
    *most degraded* state any slot observed per backend, transitions
    concatenate in slot order, and trips sum.
    """
    states: Dict[str, str] = {}
    transitions: List[Dict] = []
    trips = 0
    for snapshot in snapshots:
        for name, state in snapshot.get("states", {}).items():
            current = states.get(name)
            if current is None or (
                _STATE_RANK.get(state, 0) > _STATE_RANK.get(current, 0)
            ):
                states[name] = state
        transitions.extend(dict(t) for t in snapshot.get("transitions", []))
        trips += int(snapshot.get("trips", 0))
    return {"states": states, "transitions": transitions, "trips": trips}
