"""Crash-safe run checkpoints: the journal behind ``--resume``.

A resumable run owns a directory under ``<cache_dir>/runs/<run_id>/``
holding two artefacts:

* ``journal.jsonl`` — one JSON line per completed job, appended and
  fsynced the moment the job's result lands in the cache.  Appends are
  tiny, so a crash can at worst leave one torn trailing line, which the
  loader skips; every fully-written line survives.
* ``manifest.json`` — the run telemetry manifest, written atomically
  (temp file + rename) when the run finishes.

Resuming (``--resume <run_id>``) replays nothing: the journal tells the
engine which job keys the interrupted run already finished, and the
content-addressed result cache supplies their payloads, so only the
remainder is simulated.  If a journaled entry's cache payload has gone
missing or corrupt in the meantime, the job is transparently recomputed
— the journal is a progress record, never a source of results — which
is what keeps a resumed report byte-identical to a single-shot one.

Journal I/O failures (read-only disk, quota) are swallowed: a run that
cannot checkpoint still completes, it just cannot be resumed.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, Optional, Set

from ..errors import EngineError

#: Subdirectory of the cache dir holding one directory per run id.
RUNS_SUBDIR = "runs"

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class RunJournal:
    """Append-only record of one run's completed job keys."""

    def __init__(self, cache_dir: os.PathLike, run_id: str) -> None:
        if not _RUN_ID_PATTERN.match(run_id or ""):
            raise EngineError(
                f"run id {run_id!r} must be letters, digits, '.', '_' or '-' "
                "(and start with a letter or digit)"
            )
        self.run_id = run_id
        self.directory = Path(cache_dir) / RUNS_SUBDIR / run_id
        self.path = self.directory / "journal.jsonl"
        self.manifest_path = self.directory / "manifest.json"
        self._recorded: Set[str] = set()

    def exists(self) -> bool:
        """Whether this run already has a journal on disk."""
        return self.path.exists()

    def load(self) -> Set[str]:
        """Job keys the journal records as completed.

        Tolerates a torn trailing line from a crash mid-append: any line
        that does not parse as JSON is skipped, everything before it is
        kept.
        """
        keys: Set[str] = set()
        try:
            text = self.path.read_bytes().decode("utf-8", errors="replace")
        except OSError:
            return keys
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn write from the crash that ended the run
            key = entry.get("key") if isinstance(entry, dict) else None
            if key:
                keys.add(key)
        self._recorded |= keys
        return set(keys)

    def record(self, job) -> None:
        """Durably append one completed job (idempotent per key)."""
        key = job.key()
        if key in self._recorded:
            return
        line = (
            json.dumps({"key": key, "job": job.describe()}, sort_keys=True)
            + "\n"
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            return  # a broken journal must never break the run
        self._recorded.add(key)

    def write_manifest(self, manifest: Dict) -> Optional[str]:
        """Atomically write the run manifest; returns its path or None."""
        payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=".manifest-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp_name, self.manifest_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return None
        return str(self.manifest_path)

    def describe(self) -> str:
        """Location string for telemetry output."""
        return str(self.directory)
