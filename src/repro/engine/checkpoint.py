"""Crash-safe run checkpoints: the journals behind ``--resume`` and sweeps.

A resumable run owns a directory under ``<cache_dir>/runs/<run_id>/``
holding two artefacts:

* ``journal.jsonl`` — one JSON line per completed job, appended and
  fsynced the moment the job's result lands in the cache.  Appends are
  tiny, so a crash can at worst leave one torn trailing line, which the
  loader skips; every fully-written line survives.
* ``manifest.json`` — the run telemetry manifest, written atomically
  (temp file + rename) when the run finishes.

Resuming (``--resume <run_id>``) replays nothing: the journal tells the
engine which job keys the interrupted run already finished, and the
content-addressed result cache supplies their payloads, so only the
remainder is simulated.  If a journaled entry's cache payload has gone
missing or corrupt in the meantime, the job is transparently recomputed
— the journal is a progress record, never a source of results — which
is what keeps a resumed report byte-identical to a single-shot one.

The same journal machinery backs *shared* sweep journals: a parameter
sweep (:mod:`repro.sweep`) roots one :class:`RunJournal` per shard under
``<cache_dir>/sweeps/<sweep_name>/`` (the ``subdir`` parameter), so
several hosts pointed at the same cache directory each append to their
own journal while ``sweep status``/``sweep merge`` read the union.
Journal entries are keyed by the job's content address, which is
backend-agnostic — a run checkpointed on the remote backend resumes
cleanly on any rung of the degradation ladder (and vice versa), and its
manifest (v9) carries the ``fault_domains`` profile of whichever rungs
actually ran.

Journal I/O failures (read-only disk, quota) are swallowed: a run that
cannot checkpoint still completes, it just cannot be resumed.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Set, Tuple

from ..errors import EngineError

#: Subdirectory of the cache dir holding one directory per run id.
RUNS_SUBDIR = "runs"

#: Subdirectory of the cache dir holding one directory per sweep name;
#: each sweep directory holds one journal directory per shard (see
#: :mod:`repro.sweep.coordinate`).  Defined here so the engine can find
#: sweep manifests without importing the sweep subsystem.
SWEEPS_SUBDIR = "sweeps"

#: Valid run ids (and sweep names): filesystem-safe path components.
RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def validate_run_id(run_id: str, what: str = "run id") -> str:
    """Validate a run id / sweep name as a safe path component."""
    if not RUN_ID_PATTERN.match(run_id or ""):
        raise EngineError(
            f"{what} {run_id!r} must be letters, digits, '.', '_' or '-' "
            "(and start with a letter or digit)"
        )
    return run_id


def atomic_write_json(path: os.PathLike, payload: Dict) -> Optional[str]:
    """Write ``payload`` as indented JSON via temp file + rename.

    Returns the path written, or ``None`` when the filesystem refuses —
    checkpoint artefacts must never break the run that produces them.
    """
    path = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return str(path)


class RunJournal:
    """Append-only record of one run's completed job keys.

    ``subdir`` selects the namespace under the cache directory: the
    default ``runs`` for ``--run-id`` checkpoints, or a sweep's shared
    directory (``sweeps/<name>``) for shard journals.
    """

    def __init__(
        self,
        cache_dir: os.PathLike,
        run_id: str,
        subdir: str = RUNS_SUBDIR,
    ) -> None:
        validate_run_id(run_id)
        self.run_id = run_id
        self.directory = Path(cache_dir) / subdir / run_id
        self.path = self.directory / "journal.jsonl"
        self.manifest_path = self.directory / "manifest.json"
        self._recorded: Set[str] = set()

    def exists(self) -> bool:
        """Whether this run already has a journal on disk."""
        return self.path.exists()

    def load(self) -> Set[str]:
        """Job keys the journal records as completed.

        Tolerates a torn trailing line from a crash mid-append: any line
        that does not parse as JSON is skipped, everything before it is
        kept.
        """
        keys: Set[str] = set()
        try:
            text = self.path.read_bytes().decode("utf-8", errors="replace")
        except OSError:
            return keys
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn write from the crash that ended the run
            key = entry.get("key") if isinstance(entry, dict) else None
            if key:
                keys.add(key)
        self._recorded |= keys
        return set(keys)

    def record(self, job) -> None:
        """Durably append one completed job (idempotent per key)."""
        key = job.key()
        if key in self._recorded:
            return
        line = (
            json.dumps({"key": key, "job": job.describe()}, sort_keys=True)
            + "\n"
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            return  # a broken journal must never break the run
        self._recorded.add(key)

    def write_manifest(self, manifest: Dict) -> Optional[str]:
        """Atomically write the run manifest; returns its path or None."""
        return atomic_write_json(self.manifest_path, manifest)

    def describe(self) -> str:
        """Location string for telemetry output."""
        return str(self.directory)


def iter_run_manifests(
    cache_dir: os.PathLike,
) -> Iterator[Tuple[Path, Dict]]:
    """Yield every per-run / per-shard manifest under a cache directory.

    Covers ``runs/<id>/manifest.json``,
    ``sweeps/<name>/<shard>/manifest.json``, and merged sweep manifests
    (``sweeps/<name>/manifest.json``, flagged ``"merged": true``).
    Callers aggregating totals must not double-count merged manifests —
    their ``shard_totals`` summarise shard manifests yielded separately;
    only their ``merge_totals`` (the merge run itself) are additive.
    """
    root = Path(cache_dir)
    patterns = (
        f"{RUNS_SUBDIR}/*/manifest.json",
        f"{SWEEPS_SUBDIR}/*/*/manifest.json",
        f"{SWEEPS_SUBDIR}/*/manifest.json",
    )
    for pattern in patterns:
        try:
            paths = sorted(root.glob(pattern))
        except OSError:
            continue
        for path in paths:
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(manifest, dict):
                continue
            yield path, manifest


def collect_sharing_stats(cache_dir: os.PathLike) -> Dict:
    """Cross-run cache sharing totals, aggregated from recorded manifests.

    Every journaled run and sweep shard leaves a telemetry manifest next
    to its journal; summing their totals shows how much work the
    content-addressed cache let later runs skip — the ``repro-leakage
    cache info`` "sharing" section.  A merged sweep manifest contributes
    only its ``merge_totals`` (the merge run's own engine pass); its
    ``shard_totals`` duplicate the shard manifests counted directly.
    """
    stats = {
        "manifests": 0,
        "jobs": 0,
        "simulated": 0,
        "cached": 0,
        "hits_from_earlier_runs": 0,
        "hits_from_this_run": 0,
    }
    for _, manifest in iter_run_manifests(cache_dir):
        totals = manifest.get(
            "merge_totals" if manifest.get("merged") else "totals"
        )
        if not isinstance(totals, dict):
            continue
        stats["manifests"] += 1
        for field, source in (
            ("jobs", "jobs"),
            ("simulated", "simulated"),
            ("cached", "cached"),
            ("hits_from_earlier_runs", "cache_hits_from_earlier_runs"),
            ("hits_from_this_run", "cache_hits_from_this_run"),
        ):
            value = totals.get(source)
            if isinstance(value, (int, float)):
                stats[field] += int(value)
    return stats
