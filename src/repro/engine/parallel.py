"""The execution engine: cache-aware, parallel, fault-tolerant job runs.

:class:`ExecutionEngine` is the single entry point the experiment layer
uses to obtain simulation results.  For every requested job it

1. consults the on-disk :class:`~repro.engine.store.ResultStore`
   (content-addressed by job parameters — a warm cache run performs zero
   simulations);
2. fans the misses out over a ``ProcessPoolExecutor`` sized by
   ``--jobs`` / ``REPRO_JOBS`` / ``os.cpu_count()``, where each failed
   or timed-out job is retried by itself with deterministic backoff
   (:mod:`~repro.engine.robustness`, :mod:`~repro.engine.retry`) before
   anything falls back to serial in-process execution;
3. writes fresh results back to the store, journals them in the run
   checkpoint when one is attached (:mod:`~repro.engine.checkpoint`),
   and records everything — outcomes, retries, injected faults,
   degradation notes — in a
   :class:`~repro.engine.telemetry.RunTelemetry`.

Because :func:`~repro.engine.jobs.execute_job` is deterministic, serial,
parallel, retried, resumed, and fault-injected runs all produce
bit-identical results; the engine only changes *when* and *where*
simulations run, never what they compute.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from .checkpoint import RunJournal
from .faults import FaultPlan, active_plan, apply_store_fault
from .jobs import (
    SOURCE_CACHED,
    SOURCE_FALLBACK,
    SOURCE_PARALLEL,
    SOURCE_SERIAL,
    JobOutcome,
    SimulationJob,
    execute_job,
)
from .retry import RetryPolicy, default_retry_policy
from .robustness import attempt_parallel, default_job_timeout
from .store import ResultStore
from .telemetry import RunTelemetry, Stopwatch

#: Environment variable supplying the default worker count.
ENV_JOBS = "REPRO_JOBS"


def resolve_worker_count(value: Optional[int] = None) -> int:
    """Worker count from the argument, ``REPRO_JOBS``, or the CPU count.

    ``REPRO_JOBS`` is validated like the other engine environment knobs:
    a non-integer or non-positive value raises a clear
    :class:`~repro.errors.EngineError` naming the variable.
    """
    if value is None:
        raw = os.environ.get(ENV_JOBS)
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise EngineError(
                    f"{ENV_JOBS} must be an integer worker count, got {raw!r}"
                ) from None
            if value < 1:
                raise EngineError(
                    f"{ENV_JOBS} must be positive, got {value!r}"
                )
    if value is None:
        value = os.cpu_count() or 1
    value = int(value)
    if value < 1:
        raise EngineError(f"worker count must be at least 1, got {value!r}")
    return value


class ExecutionEngine:
    """Runs simulation jobs through the cache, the pool, and telemetry."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[object] = None,
        timeout: Optional[float] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        journal: Optional[RunJournal] = None,
        resume: bool = False,
    ) -> None:
        self.max_workers = resolve_worker_count(jobs)
        self.store = store if store is not None else ResultStore()
        self.timeout = timeout if timeout is not None else default_job_timeout()
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.retry = retry if retry is not None else default_retry_policy()
        self.faults = faults if faults is not None else active_plan()
        self.journal = journal
        self._journaled: set = set()
        if journal is not None and resume:
            self._journaled = journal.load()
            self.telemetry.note(
                f"resuming run {journal.run_id!r}: "
                f"{len(self._journaled)} job(s) already journaled"
            )
        self.telemetry.context.update(
            {
                "max_workers": self.max_workers,
                "cache_dir": self.store.describe(),
                "timeout_seconds": self.timeout,
                "retry": self.retry.describe(),
                "faults": None if self.faults is None else self.faults.describe(),
                "run_id": None if journal is None else journal.run_id,
                "resumed": bool(journal is not None and resume),
            }
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[SimulationJob]
    ) -> Dict[SimulationJob, JobOutcome]:
        """Obtain every job's result; cache first, then parallel, then serial.

        Results are keyed by job and independent of execution order, so
        callers see identical outputs whatever path produced them —
        including runs that retried, resumed, or survived injected
        faults.
        """
        ordered = self._deduplicate(jobs)
        run_start = time.perf_counter()
        outcomes: Dict[SimulationJob, JobOutcome] = {}

        pending: List[SimulationJob] = []
        for job in ordered:
            with Stopwatch() as sw:
                hit = self.store.get(job.key())
            if hit is not None:
                outcomes[job] = JobOutcome(job, hit, SOURCE_CACHED, sw.seconds)
                self._journal_record(job)
            else:
                if job.key() in self._journaled:
                    # The interrupted run finished this job but its cache
                    # entry is gone or corrupt: recompute transparently.
                    self.telemetry.note(
                        f"resume: journaled job {job.describe()} is missing "
                        "from the cache; recomputing"
                    )
                pending.append(job)

        if pending:
            self._run_pending(pending, outcomes)

        self.telemetry.add_wall(time.perf_counter() - run_start)
        for job in ordered:
            self.telemetry.record_outcome(outcomes[job])
        self.telemetry.record_store(self.store)
        return outcomes

    def run_one(self, job: SimulationJob) -> JobOutcome:
        """Convenience wrapper: run a single job."""
        return self.run([job])[job]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _deduplicate(jobs: Sequence[SimulationJob]) -> List[SimulationJob]:
        seen = set()
        ordered = []
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append(job)
        return ordered

    def _run_pending(
        self,
        pending: List[SimulationJob],
        outcomes: Dict[SimulationJob, JobOutcome],
    ) -> None:
        pool_attempted = self.max_workers > 1 and len(pending) > 1
        pool_attempts: Dict[SimulationJob, int] = {}
        if pool_attempted:
            report = attempt_parallel(
                pending, self.max_workers, self.timeout, policy=self.retry
            )
            for note in report.notes:
                self.telemetry.note(note)
            for entry in report.retries:
                self.telemetry.record_retry(entry)
            for job, (annotated, wall) in report.completed.items():
                outcomes[job] = JobOutcome(
                    job,
                    annotated,
                    SOURCE_PARALLEL,
                    wall,
                    attempts=report.attempts.get(job, 1),
                )
                self._commit(job, annotated)
            leftovers = report.leftovers
            pool_attempts = report.attempts
        else:
            leftovers = pending

        source = SOURCE_FALLBACK if pool_attempted else SOURCE_SERIAL
        for job in leftovers:
            annotated, seconds, attempts = self._execute_serial(job)
            outcomes[job] = JobOutcome(
                job,
                annotated,
                source,
                seconds,
                attempts=pool_attempts.get(job, 0) + attempts,
            )
            self._commit(job, annotated)

    def _execute_serial(
        self, job: SimulationJob
    ) -> Tuple[object, float, int]:
        """One job in-process, retried per the policy; raises when exhausted."""
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.faults is not None:
                    self.faults.inject_serial(job, attempt)
                with Stopwatch() as sw:
                    annotated = execute_job(job)
                return annotated, sw.seconds, attempt
            except Exception as error:
                if self.retry.retries_left(attempt):
                    delay = self.retry.delay_before(attempt + 1)
                    self.telemetry.record_retry(
                        {
                            "job": job.describe(),
                            "key": job.key(),
                            "failed_attempt": attempt,
                            "next_attempt": attempt + 1,
                            "reason": f"{type(error).__name__}: {error}",
                            "backoff_seconds": delay,
                            "where": "serial",
                        }
                    )
                    self.telemetry.note(
                        f"job {job.describe()} failed serially "
                        f"({type(error).__name__}); retrying "
                        f"(attempt {attempt + 1}/{self.retry.max_attempts}) "
                        f"in {delay:g}s"
                    )
                    time.sleep(delay)
                    continue
                self.telemetry.record_failure(job, error)
                raise

    def _commit(self, job: SimulationJob, annotated: object) -> None:
        """Persist one fresh result: cache write, fault hooks, journal."""
        wrote = self.store.put(job.key(), annotated)
        if wrote and self.faults is not None:
            for spec in self.faults.take_store_faults(job):
                description = apply_store_fault(self.store, job.key(), spec)
                if description:
                    self.telemetry.record_fault(description)
        self._journal_record(job)

    def _journal_record(self, job: SimulationJob) -> None:
        if self.journal is not None:
            self.journal.record(job)
