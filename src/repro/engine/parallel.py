"""The execution engine: cache-aware, parallel, fault-tolerant job runs.

:class:`ExecutionEngine` is the single entry point the experiment layer
uses to obtain simulation results.  For every requested job it

1. consults the on-disk :class:`~repro.engine.store.ResultStore`
   (content-addressed by job parameters — a warm cache run performs zero
   simulations);
2. fans the misses out over a ``ProcessPoolExecutor`` sized by
   ``--jobs`` / ``REPRO_JOBS`` / ``os.cpu_count()``, falling back to
   serial in-process execution whenever the pool misbehaves
   (:mod:`~repro.engine.robustness`);
3. writes fresh results back to the store and records everything in a
   :class:`~repro.engine.telemetry.RunTelemetry`.

Because :func:`~repro.engine.jobs.execute_job` is deterministic, serial
and parallel execution produce bit-identical results; the engine only
changes *when* and *where* simulations run, never what they compute.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from ..errors import EngineError
from .jobs import (
    SOURCE_CACHED,
    SOURCE_FALLBACK,
    SOURCE_PARALLEL,
    SOURCE_SERIAL,
    JobOutcome,
    SimulationJob,
    execute_job,
)
from .robustness import attempt_parallel, default_job_timeout
from .store import ResultStore
from .telemetry import RunTelemetry, Stopwatch

#: Environment variable supplying the default worker count.
ENV_JOBS = "REPRO_JOBS"


def resolve_worker_count(value: Optional[int] = None) -> int:
    """Worker count from the argument, ``REPRO_JOBS``, or the CPU count."""
    if value is None:
        raw = os.environ.get(ENV_JOBS)
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise EngineError(
                    f"{ENV_JOBS} must be an integer, got {raw!r}"
                ) from None
    if value is None:
        value = os.cpu_count() or 1
    value = int(value)
    if value < 1:
        raise EngineError(f"worker count must be at least 1, got {value!r}")
    return value


class ExecutionEngine:
    """Runs simulation jobs through the cache, the pool, and telemetry."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[object] = None,
        timeout: Optional[float] = None,
        telemetry: Optional[RunTelemetry] = None,
    ) -> None:
        self.max_workers = resolve_worker_count(jobs)
        self.store = store if store is not None else ResultStore()
        self.timeout = timeout if timeout is not None else default_job_timeout()
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.telemetry.context.update(
            {
                "max_workers": self.max_workers,
                "cache_dir": self.store.describe(),
                "timeout_seconds": self.timeout,
            }
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[SimulationJob]
    ) -> Dict[SimulationJob, JobOutcome]:
        """Obtain every job's result; cache first, then parallel, then serial.

        Results are keyed by job and independent of execution order, so
        callers see identical outputs whatever path produced them.
        """
        ordered = self._deduplicate(jobs)
        run_start = time.perf_counter()
        outcomes: Dict[SimulationJob, JobOutcome] = {}

        pending: List[SimulationJob] = []
        for job in ordered:
            with Stopwatch() as sw:
                hit = self.store.get(job.key())
            if hit is not None:
                outcomes[job] = JobOutcome(job, hit, SOURCE_CACHED, sw.seconds)
            else:
                pending.append(job)

        if pending:
            self._run_pending(pending, outcomes)

        self.telemetry.add_wall(time.perf_counter() - run_start)
        for job in ordered:
            self.telemetry.record_outcome(outcomes[job])
        return outcomes

    def run_one(self, job: SimulationJob) -> JobOutcome:
        """Convenience wrapper: run a single job."""
        return self.run([job])[job]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _deduplicate(jobs: Sequence[SimulationJob]) -> List[SimulationJob]:
        seen = set()
        ordered = []
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append(job)
        return ordered

    def _run_pending(
        self,
        pending: List[SimulationJob],
        outcomes: Dict[SimulationJob, JobOutcome],
    ) -> None:
        pool_attempted = self.max_workers > 1 and len(pending) > 1
        if pool_attempted:
            completed, leftovers, notes = attempt_parallel(
                pending, self.max_workers, self.timeout
            )
            for note in notes:
                self.telemetry.note(note)
            for job, (annotated, wall) in completed.items():
                outcomes[job] = JobOutcome(job, annotated, SOURCE_PARALLEL, wall)
                self.store.put(job.key(), annotated)
        else:
            leftovers = pending

        source = SOURCE_FALLBACK if pool_attempted else SOURCE_SERIAL
        for job in leftovers:
            try:
                with Stopwatch() as sw:
                    annotated = execute_job(job)
            except Exception as error:
                self.telemetry.record_failure(job, error)
                raise
            outcomes[job] = JobOutcome(job, annotated, source, sw.seconds)
            self.store.put(job.key(), annotated)
