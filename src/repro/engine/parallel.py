"""The execution engine: cache-aware, parallel, fault-tolerant job runs.

:class:`ExecutionEngine` is the single entry point the experiment layer
uses to obtain simulation results.  For every requested job it

1. consults the on-disk :class:`~repro.engine.store.ResultStore`
   (content-addressed by job parameters — a warm cache run performs zero
   simulations);
2. hands the misses to a :class:`~repro.engine.supervise.Supervisor`
   that dispatches them down a backend chain
   (:mod:`~repro.engine.backends`, selected by ``--backend`` /
   ``REPRO_BACKEND``): the process pool, then heartbeat-supervised
   subprocess workers, then — always — the in-process serial executor,
   with per-backend circuit breakers and per-job retry backoff
   (:mod:`~repro.engine.retry`) deciding how work degrades;
3. passes every fresh result through the invariant-validation gate
   (:mod:`~repro.engine.validate`) — a result that violates the model's
   own accounting identities is quarantined and recomputed, never
   cached;
4. writes validated results back to the store, journals them in the run
   checkpoint when one is attached (:mod:`~repro.engine.checkpoint`),
   and records everything — outcomes, retries, injected faults,
   heartbeat/watchdog events, breaker transitions, quarantines — in a
   :class:`~repro.engine.telemetry.RunTelemetry`.

Because :func:`~repro.engine.jobs.execute_job` is deterministic, serial,
parallel, subprocess, retried, resumed, and fault-injected runs all
produce bit-identical results; the engine only changes *when* and
*where* simulations run, never what they compute.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.kernel import resolve_kernel_mode
from ..errors import EngineError
from . import transport
from .backends import build_chain, default_watchdog, resolve_backend_name
from .checkpoint import RunJournal
from .faults import FaultPlan, active_plan, apply_store_fault
from .jobs import (
    SOURCE_CACHED,
    SOURCE_FALLBACK,
    SOURCE_SERIAL,
    JobOutcome,
    SimulationJob,
    execute_job,
)
from .remote import parse_hosts
from .retry import RetryPolicy, default_retry_policy
from .robustness import default_job_timeout
from .store import ResultStore
from .supervise import Supervisor, merge_breaker_snapshots
from .telemetry import RunTelemetry, Stopwatch
from .validate import InvalidResultError, check_result

#: Environment variable supplying the default worker count.
ENV_JOBS = "REPRO_JOBS"


def resolve_worker_count(value: Optional[int] = None) -> int:
    """Worker count from the argument, ``REPRO_JOBS``, or the CPU count.

    ``REPRO_JOBS`` is validated like the other engine environment knobs:
    a non-integer or non-positive value raises a clear
    :class:`~repro.errors.EngineError` naming the variable.
    """
    if value is None:
        raw = os.environ.get(ENV_JOBS)
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise EngineError(
                    f"{ENV_JOBS} must be an integer worker count, got {raw!r}"
                ) from None
            if value < 1:
                raise EngineError(
                    f"{ENV_JOBS} must be positive, got {value!r}"
                )
    if value is None:
        value = os.cpu_count() or 1
    value = int(value)
    if value < 1:
        raise EngineError(f"worker count must be at least 1, got {value!r}")
    return value


class ExecutionEngine:
    """Runs simulation jobs through the cache, the pool, and telemetry."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[object] = None,
        timeout: Optional[float] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        journal: Optional[RunJournal] = None,
        resume: bool = False,
        backend: Optional[str] = None,
        hosts: Optional[str] = None,
    ) -> None:
        self.max_workers = resolve_worker_count(jobs)
        self.store = store if store is not None else ResultStore()
        self.timeout = timeout if timeout is not None else default_job_timeout()
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.retry = retry if retry is not None else default_retry_policy()
        self.faults = faults if faults is not None else active_plan()
        self.backend = resolve_backend_name(backend)
        self.hosts = (
            parse_hosts(hosts) if self.backend == "remote" else []
        )
        self.supervisor = Supervisor(
            build_chain(
                self.backend,
                self.max_workers,
                self.timeout,
                watchdog=default_watchdog(),
                hosts=self.hosts,
            ),
            self.retry,
        )
        self.journal = journal
        self._journaled: set = set()
        if journal is not None and resume:
            self._journaled = journal.load()
            self.telemetry.note(
                f"resuming run {journal.run_id!r}: "
                f"{len(self._journaled)} job(s) already journaled"
            )
        self.transport = transport.resolve_transport_mode()
        self.kernel_mode = resolve_kernel_mode()
        self._traces_published = 0
        self.telemetry.context.update(
            {
                "max_workers": self.max_workers,
                "backend": self.backend,
                "backend_chain": self.supervisor.describe_chain() + ["serial"],
                "hosts": [spec.describe() for spec in self.hosts],
                "cache_dir": self.store.describe(),
                "timeout_seconds": self.timeout,
                "retry": self.retry.describe(),
                "faults": None if self.faults is None else self.faults.describe(),
                "run_id": None if journal is None else journal.run_id,
                "resumed": bool(journal is not None and resume),
                "kernel_mode": self.kernel_mode,
                "transport": self.transport,
            }
        )
        from ..cache.kernel import resolve_residual_impl

        self.telemetry.record_substrate(
            {
                "kernel_mode": self.kernel_mode,
                "residual_impl": (
                    "scalar"
                    if self.kernel_mode == "scalar"
                    else resolve_residual_impl(
                        "compiled"
                        if self.kernel_mode == "compiled"
                        else "python"
                    )
                ),
                "transport": self.transport,
                "traces_published": 0,
            }
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[SimulationJob]
    ) -> Dict[SimulationJob, JobOutcome]:
        """Obtain every job's result; cache first, then parallel, then serial.

        Results are keyed by job and independent of execution order, so
        callers see identical outputs whatever path produced them —
        including runs that retried, resumed, or survived injected
        faults.
        """
        ordered = self._deduplicate(jobs)
        run_start = time.perf_counter()
        outcomes: Dict[SimulationJob, JobOutcome] = {}

        pending: List[SimulationJob] = []
        for job in ordered:
            with Stopwatch() as sw:
                hit = self.store.get(job.key())
            if hit is not None:
                outcomes[job] = JobOutcome(job, hit, SOURCE_CACHED, sw.seconds)
                self.telemetry.emit(
                    "job-cached", job=job.describe(), key=job.key()
                )
                self._journal_record(job)
            else:
                if job.key() in self._journaled:
                    # The interrupted run finished this job but its cache
                    # entry is gone or corrupt: recompute transparently.
                    self.telemetry.note(
                        f"resume: journaled job {job.describe()} is missing "
                        "from the cache; recomputing"
                    )
                pending.append(job)

        if pending:
            self._run_pending(pending, outcomes)

        self.telemetry.add_wall(time.perf_counter() - run_start)
        for job in ordered:
            self.telemetry.record_outcome(outcomes[job])
        self.telemetry.record_store(self.store)
        return outcomes

    def run_one(self, job: SimulationJob) -> JobOutcome:
        """Convenience wrapper: run a single job."""
        return self.run([job])[job]

    def run_streaming(
        self,
        jobs: Sequence[SimulationJob],
        callback,
    ) -> Dict[SimulationJob, JobOutcome]:
        """:meth:`run` with a progress callback subscribed for its duration.

        ``callback`` receives every telemetry event of the run (cache
        hits, dispatches, completions, retries, quarantines, degradation
        notes) as a dict with an ``"event"`` key.  This is the
        async-friendly submit seam: callers owning an event loop hand
        ``run_streaming`` to an executor thread and marshal the events
        back with ``loop.call_soon_threadsafe`` — the service daemon's
        SSE ticket streams are exactly this.
        """
        self.telemetry.subscribe(callback)
        try:
            return self.run(jobs)
        finally:
            self.telemetry.unsubscribe(callback)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _deduplicate(jobs: Sequence[SimulationJob]) -> List[SimulationJob]:
        seen = set()
        ordered = []
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append(job)
        return ordered

    def _run_pending(
        self,
        pending: List[SimulationJob],
        outcomes: Dict[SimulationJob, JobOutcome],
    ) -> None:
        for job in pending:
            self.telemetry.emit(
                "job-started", job=job.describe(), key=job.key()
            )
        # Publish recorded traces into zero-copy arenas for the worker
        # backends; the parent owns the segments and unlinks them when
        # the dispatch completes, however workers fared.
        published: List[str] = []
        if self.supervisor.chain:
            published = transport.publish_for_jobs(pending, self.transport)
            for path in published:
                self.telemetry.emit(
                    "trace-published", path=path, transport=self.transport
                )
            if published:
                self._traces_published += len(published)
                self.telemetry.record_substrate(
                    {"traces_published": self._traces_published}
                )
        try:
            dispatch = self.supervisor.dispatch(pending)
        finally:
            transport.release_paths(published)
        for note in dispatch.notes:
            self.telemetry.note(note)
        for entry in dispatch.retries:
            self.telemetry.record_retry(entry)
        for entry in dispatch.heartbeats:
            self.telemetry.record_heartbeat(entry)

        # Serial work: (job, attempts already consumed, outcome source).
        base_source = SOURCE_FALLBACK if dispatch.engaged else SOURCE_SERIAL
        serial_work: List[Tuple[SimulationJob, int, str]] = [
            (job, start, base_source) for job, start in dispatch.leftovers
        ]
        for job, completion in dispatch.completed.items():
            violations = check_result(completion.annotated)
            if violations:
                # Never cache an invalid result: quarantine it and give
                # the job to the serial path, where the gate re-checks.
                self.telemetry.record_quarantine(
                    job, violations, where=completion.source
                )
                self.telemetry.note(
                    f"job {job.describe()} result failed the validation "
                    f"gate ({violations[0]}); quarantined, re-running "
                    "serially"
                )
                serial_work.append((job, completion.attempts, SOURCE_FALLBACK))
                continue
            outcomes[job] = JobOutcome(
                job,
                completion.annotated,
                completion.source,
                completion.wall_seconds,
                attempts=completion.attempts,
            )
            self.telemetry.emit(
                "job-validated",
                job=job.describe(),
                key=job.key(),
                source=completion.source,
                attempts=completion.attempts,
            )
            self._commit(job, completion.annotated)

        try:
            for job, start, source in serial_work:
                annotated, seconds, attempts = self._execute_serial(
                    job, start_attempt=start
                )
                outcomes[job] = JobOutcome(
                    job, annotated, source, seconds, attempts=attempts
                )
                self.telemetry.emit(
                    "job-validated",
                    job=job.describe(),
                    key=job.key(),
                    source=source,
                    attempts=attempts,
                )
                self._commit(job, annotated)
        finally:
            self.telemetry.record_breakers(self.supervisor.snapshot())
            if dispatch.hosts or dispatch.descents or dispatch.rungs_used:
                self.telemetry.record_fault_domains(
                    {
                        "hosts": dispatch.hosts,
                        "ladder": dispatch.descents,
                        "rungs_used": dispatch.rungs_used,
                        "final_rung": (
                            dispatch.rungs_used[-1]
                            if dispatch.rungs_used
                            else None
                        ),
                    }
                )

    def _execute_serial(
        self, job: SimulationJob, start_attempt: int = 0
    ) -> Tuple[object, float, int]:
        """One job in-process, retried per the policy; raises when exhausted.

        ``start_attempt`` continues the global attempt numbering of
        whatever backends already tried this job, so deterministic fault
        schedules and the retry budget span the degradation path; the
        returned attempt count is the global total.
        """
        attempt = start_attempt
        while True:
            attempt += 1
            try:
                if self.faults is not None:
                    self.faults.inject_serial(job, attempt)
                with Stopwatch() as sw:
                    annotated = execute_job(job)
                if self.faults is not None:
                    annotated = self.faults.mangle_result(
                        job, attempt, annotated
                    )
                violations = check_result(annotated)
                if violations:
                    self.telemetry.record_quarantine(
                        job, violations, where="serial"
                    )
                    raise InvalidResultError(
                        f"result for {job.describe()} failed the "
                        f"validation gate: {violations[0]}"
                    )
                return annotated, sw.seconds, attempt
            except Exception as error:
                if self.retry.retries_left(attempt):
                    delay = self.retry.delay_before(attempt + 1)
                    self.telemetry.record_retry(
                        {
                            "job": job.describe(),
                            "key": job.key(),
                            "failed_attempt": attempt,
                            "next_attempt": attempt + 1,
                            "reason": f"{type(error).__name__}: {error}",
                            "backoff_seconds": delay,
                            "where": "serial",
                        }
                    )
                    self.telemetry.note(
                        f"job {job.describe()} failed serially "
                        f"({type(error).__name__}); retrying "
                        f"(attempt {attempt + 1}/{self.retry.max_attempts}) "
                        f"in {delay:g}s"
                    )
                    time.sleep(delay)
                    continue
                self.telemetry.record_failure(job, error)
                raise

    def _commit(self, job: SimulationJob, annotated: object) -> None:
        """Persist one fresh result: cache write, fault hooks, journal."""
        wrote = self.store.put(job.key(), annotated)
        if wrote and self.faults is not None:
            for spec in self.faults.take_store_faults(job):
                description = apply_store_fault(self.store, job.key(), spec)
                if description:
                    self.telemetry.record_fault(description)
        self._journal_record(job)

    def _journal_record(self, job: SimulationJob) -> None:
        if self.journal is not None:
            self.journal.record(job)


class EngineFleet:
    """N single-slot engines sharing one store and one telemetry.

    :class:`ExecutionEngine` is built for one caller at a time — its
    :class:`~repro.engine.supervise.Supervisor` mutates breaker state
    per dispatch and is not thread-safe.  A daemon that wants to run
    several WorkItems *concurrently* therefore cannot funnel them
    through one engine; it checks a slot engine out of this fleet per
    item instead.  Every slot shares the fleet's result store (so cache
    hits, coalescing and the coordination layer's guarded publishes see
    one source of truth) and the fleet's :class:`RunTelemetry` (which is
    lock-protected for exactly this arrangement); each slot owns its
    own supervisor, journal-free and one worker wide.

    Slots are created lazily and recycled, so a mostly-idle daemon pays
    for one engine, a saturated one for ``slots``.
    """

    def __init__(
        self,
        slots: int,
        store: Optional[object] = None,
        telemetry: Optional[RunTelemetry] = None,
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        hosts: Optional[str] = None,
    ) -> None:
        if slots < 1:
            raise EngineError(f"fleet slots must be at least 1, got {slots!r}")
        self.slots = int(slots)
        self.store = store if store is not None else ResultStore()
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.backend = backend
        self.timeout = timeout
        self.retry = retry
        self.faults = faults
        self.hosts = hosts
        self._idle: List[ExecutionEngine] = []
        self._all: List[ExecutionEngine] = []
        self._lock = threading.Lock()

    def _build_slot(self) -> ExecutionEngine:
        return ExecutionEngine(
            jobs=1,
            store=self.store,
            telemetry=self.telemetry,
            backend=self.backend,
            timeout=self.timeout,
            retry=self.retry,
            faults=self.faults,
            hosts=self.hosts,
        )

    def acquire(self) -> ExecutionEngine:
        """Check out an idle slot engine, creating one when none is free.

        Callers are expected to bound their concurrency to
        :attr:`slots` (the service daemon does, with a semaphore); the
        fleet itself never blocks — an over-subscribed caller simply
        grows extra slots rather than deadlocking.
        """
        with self._lock:
            if self._idle:
                return self._idle.pop()
            engine = self._build_slot()
            self._all.append(engine)
            return engine

    def release(self, engine: ExecutionEngine) -> None:
        """Return a slot engine to the idle pool."""
        with self._lock:
            self._idle.append(engine)

    def run_one(self, job: SimulationJob) -> JobOutcome:
        """Run one job on a checked-out slot (acquire/run/release)."""
        engine = self.acquire()
        try:
            return engine.run_one(job)
        finally:
            self.release(engine)

    @property
    def engines(self) -> List[ExecutionEngine]:
        with self._lock:
            return list(self._all)

    def breaker_snapshot(self) -> Dict:
        """Every slot's breaker state merged into one manifest section."""
        return merge_breaker_snapshots(
            [engine.supervisor.snapshot() for engine in self.engines]
        )

    def finalize(self) -> None:
        """Record merged breakers + store counters into the telemetry."""
        self.telemetry.record_breakers(self.breaker_snapshot())
        self.telemetry.record_store(self.store)
