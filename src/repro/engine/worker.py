"""Pipe-connected subprocess worker: ``python -m repro.engine.worker``.

The subprocess backend (:mod:`~repro.engine.backends`) talks to each
worker over its stdin/stdout pipes using a tiny length-prefixed frame
protocol — the stepping stone to remote workers, where the same frames
would flow over a socket::

    frame   := length(4 bytes, big-endian) || pickle((kind, payload))
    to worker   : ("job", (SimulationJob, attempt)) | ("exit", None)
    from worker : ("ready", {"pid": ...})
                | ("heartbeat", monotonic_seconds)
                | ("result", {"key", "wall", "payload"})
                | ("error", {"key", "kind", "message"})

Unlike a ``ProcessPoolExecutor`` worker, a subprocess worker *beats*: a
daemon thread emits a heartbeat frame every ``--heartbeat`` seconds, so
the supervisor can tell a worker that is busy simulating (beating, no
result yet) from one that is hung or dead (silent) — and kill exactly
the right process instead of writing off a pool slot.

The worker re-executes ``REPRO_FAULTS`` from its inherited environment,
exactly like pool workers do: ``hang`` silences the heartbeat thread
before stalling (so the watchdog sees a real hang), ``flap``/``crash``
exit hard, ``raise`` turns into an error frame, and ``garbage`` mangles
the result so the engine-side validation gate can catch it.

On startup the worker duplicates its stdout file descriptor for the
frame stream and re-points fd 1 at stderr, so stray ``print`` calls
anywhere in the simulation stack cannot corrupt the protocol.
"""

from __future__ import annotations

import argparse
import os
import pickle
import struct
import sys
import threading
import time
from typing import Any, Optional, Tuple

#: Default heartbeat interval, seconds (overridable via --heartbeat).
DEFAULT_HEARTBEAT_SECONDS = 0.5

_LENGTH = struct.Struct(">I")


def write_frame(stream, kind: str, payload: Any = None) -> None:
    """Write one length-prefixed pickled frame and flush it."""
    blob = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_LENGTH.pack(len(blob)) + blob)
    stream.flush()


def read_frame(stream) -> Optional[Tuple[str, Any]]:
    """Read one frame; ``None`` on EOF, a torn frame, or undecodable bytes."""
    try:
        header = stream.read(_LENGTH.size)
        if header is None or len(header) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack(header)
        blob = stream.read(length)
        if blob is None or len(blob) < length:
            return None
        return pickle.loads(blob)
    except (OSError, ValueError, EOFError, pickle.UnpicklingError):
        return None


def main(argv=None) -> int:
    """Worker loop: read job frames, simulate, write result frames."""
    parser = argparse.ArgumentParser(prog="repro.engine.worker")
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT_SECONDS,
        help="seconds between heartbeat frames (0 disables them)",
    )
    options = parser.parse_args(argv)

    # Claim the protocol channel, then shield it from stray prints.
    protocol_out = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    protocol_in = sys.stdin.buffer

    write_lock = threading.Lock()

    def emit(kind: str, payload: Any = None) -> None:
        try:
            with write_lock:
                write_frame(protocol_out, kind, payload)
        except (OSError, ValueError):
            # The supervisor went away; there is nobody left to serve.
            os._exit(0)

    silenced = threading.Event()
    if options.heartbeat > 0:

        def beat() -> None:
            while True:
                time.sleep(options.heartbeat)
                if not silenced.is_set():
                    emit("heartbeat", time.monotonic())

        threading.Thread(target=beat, name="heartbeat", daemon=True).start()

    emit("ready", {"pid": os.getpid()})

    from .faults import active_plan
    from .jobs import execute_job

    while True:
        frame = read_frame(protocol_in)
        if frame is None:
            break
        kind, payload = frame
        if kind == "exit":
            break
        if kind != "job":
            continue
        job, attempt = payload
        plan = active_plan()
        try:
            if plan is not None:
                if plan.matches_hang(job, attempt):
                    # A genuinely hung worker stops beating: silence the
                    # heartbeat *before* stalling so the watchdog fires.
                    silenced.set()
                plan.inject_worker(job, attempt)
            start = time.perf_counter()
            annotated = execute_job(job)
            wall = time.perf_counter() - start
            if plan is not None:
                annotated = plan.mangle_result(job, attempt, annotated)
            emit(
                "result",
                {"key": job.key(), "wall": wall, "payload": annotated},
            )
        except Exception as error:  # noqa: BLE001 — forwarded, not swallowed
            emit(
                "error",
                {
                    "key": job.key(),
                    "kind": type(error).__name__,
                    "message": str(error),
                },
            )
        finally:
            silenced.clear()  # hangs silence one job, not the worker
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via the backend
    raise SystemExit(main())
