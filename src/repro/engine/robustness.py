"""Fault tolerance for the parallel path.

The engine must never be *less* reliable than the serial code it
replaced, so every parallel-infrastructure failure degrades to in-process
serial execution instead of propagating:

* the worker pool cannot start (sandboxed environment, fork limits,
  missing ``/dev/shm``) — every job runs serially;
* a worker process dies (``BrokenProcessPool``) — the pool is abandoned
  and the unfinished jobs run serially;
* a job exceeds the per-job timeout — the pool is abandoned (its workers
  cannot be force-killed portably, so waiting longer is the only thing
  abandoning avoids) and the unfinished jobs run serially;
* a job *raises* inside a worker — it is retried serially so a genuine
  simulation error surfaces with a clean in-process traceback.

Simulation is deterministic in the job parameters, so a serial retry is
always equivalent — robustness never changes results, only where and
when they are computed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from .jobs import SimulationJob, execute_job

#: Environment variable supplying a default per-job timeout in seconds.
ENV_JOB_TIMEOUT = "REPRO_JOB_TIMEOUT"


def default_job_timeout() -> Optional[float]:
    """Per-job timeout from ``REPRO_JOB_TIMEOUT``, or ``None`` (no limit)."""
    raw = os.environ.get(ENV_JOB_TIMEOUT)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise EngineError(
            f"{ENV_JOB_TIMEOUT} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise EngineError(
            f"{ENV_JOB_TIMEOUT} must be positive, got {value!r}"
        )
    return value


def _worker(job: SimulationJob):
    """Pool worker: simulate one job and time it (module-level: picklable)."""
    start = time.perf_counter()
    annotated = execute_job(job)
    return annotated, time.perf_counter() - start


def attempt_parallel(
    jobs: Sequence[SimulationJob],
    max_workers: int,
    timeout: Optional[float] = None,
    worker: Callable = _worker,
) -> Tuple[Dict[SimulationJob, Tuple[object, float]], List[SimulationJob], List[str]]:
    """Run jobs on a process pool, surviving every pool failure.

    Returns ``(completed, leftovers, notes)``: results that the pool
    delivered, jobs the caller must run serially, and human-readable notes
    describing any degradation.  ``completed[job]`` is an
    ``(annotated_result, worker_wall_seconds)`` pair.
    """
    completed: Dict[SimulationJob, Tuple[object, float]] = {}
    notes: List[str] = []
    try:
        executor = ProcessPoolExecutor(max_workers=min(max_workers, len(jobs)))
    except (OSError, ValueError, PermissionError) as error:
        notes.append(f"worker pool failed to start ({error}); running serially")
        return completed, list(jobs), notes
    try:
        try:
            futures = [(executor.submit(worker, job), job) for job in jobs]
        except BrokenProcessPool as error:
            notes.append(f"worker pool broke on submit ({error}); running serially")
            return completed, list(jobs), notes
        abandoned = False
        for future, job in futures:
            if abandoned:
                continue
            try:
                annotated, wall = future.result(timeout=timeout)
                completed[job] = (annotated, wall)
            except FutureTimeoutError:
                notes.append(
                    f"job {job.describe()} exceeded the {timeout:g}s timeout; "
                    "abandoning the pool and finishing serially"
                )
                abandoned = True
            except BrokenProcessPool:
                notes.append(
                    "a worker process died; abandoning the pool and "
                    "finishing serially"
                )
                abandoned = True
            except Exception as error:
                # The job itself raised: retry serially for a clean,
                # in-process traceback (and to rule out pool flakiness).
                notes.append(
                    f"job {job.describe()} raised in a worker "
                    f"({type(error).__name__}); retrying serially"
                )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    leftovers = [job for job in jobs if job not in completed]
    return completed, leftovers, notes
