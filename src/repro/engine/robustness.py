"""Fault tolerance for the parallel path: a retrying pool supervisor.

The engine must never be *less* reliable than the serial code it
replaced, so parallel-infrastructure failures are contained at the
smallest possible scope and everything that remains degrades to
in-process serial execution instead of propagating:

* the worker pool cannot start (sandboxed environment, fork limits,
  missing ``/dev/shm``) — every job runs serially;
* a job exceeds the per-job timeout — **only that job** is requeued
  with deterministic backoff (:class:`~repro.engine.retry.RetryPolicy`);
  the stuck worker's slot is written off (workers cannot be force-killed
  portably) but the rest of the pool keeps running.  Should the stuck
  worker finish late anyway, its slot — and even its result — are
  reclaimed;
* a job *raises* inside a worker — it is requeued with backoff; once
  its attempts are exhausted it falls to the serial path, where a final
  in-process attempt surfaces a genuine error with a clean traceback;
* a worker process dies (``BrokenProcessPool``) — the pool itself is
  broken, so after harvesting every future that already finished the
  remaining jobs run serially;
* every worker slot ends up stuck on timed-out jobs — the pool can make
  no progress, so it is abandoned and the remainder runs serially.

Simulation is deterministic in the job parameters and backoff delays
are jitter-free, so a retried or serially-finished run is always
equivalent — robustness never changes results, only where and when they
are computed.  Every requeue is reported as a structured retry record
plus a human-readable note so the manifest shows exactly what happened.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from .faults import active_plan
from .jobs import SimulationJob, execute_job
from .retry import RetryPolicy, default_retry_policy

#: Environment variable supplying a default per-job timeout in seconds.
ENV_JOB_TIMEOUT = "REPRO_JOB_TIMEOUT"

#: How often the supervisor re-checks stuck workers for late results.
_ZOMBIE_POLL_SECONDS = 0.1


def default_job_timeout() -> Optional[float]:
    """Per-job timeout from ``REPRO_JOB_TIMEOUT``, or ``None`` (no limit)."""
    raw = os.environ.get(ENV_JOB_TIMEOUT)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise EngineError(
            f"{ENV_JOB_TIMEOUT} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise EngineError(
            f"{ENV_JOB_TIMEOUT} must be positive, got {value!r}"
        )
    return value


def _worker(job: SimulationJob, attempt: int = 1):
    """Pool worker: simulate one job and time it (module-level: picklable).

    Fault injection reads ``REPRO_FAULTS`` from the environment the
    worker inherited, so injected crashes/timeouts/raises happen inside
    the worker exactly as real ones would.
    """
    plan = active_plan()
    if plan is not None:
        plan.inject_worker(job, attempt)
    start = time.perf_counter()
    annotated = execute_job(job)
    wall = time.perf_counter() - start
    if plan is not None:
        annotated = plan.mangle_result(job, attempt, annotated)
    return annotated, wall


@dataclass
class PoolReport:
    """Everything one :func:`attempt_parallel` call did and left behind.

    ``completed[job]`` is an ``(annotated_result, worker_wall_seconds)``
    pair; ``leftovers`` must be run by the next backend (or serially by
    the caller); ``attempts`` counts attempts per job (so later stages
    can continue the global numbering); ``retries`` are structured
    records for telemetry and ``notes`` are the matching human-readable
    degradation messages.

    For the supervisor, ``exhausted`` lists jobs whose retry budget is
    spent (they should skip straight to the terminal serial attempt),
    ``infra_failures`` describes *infrastructure* breakdowns — worker
    deaths, a broken pool, watchdog stalls, as opposed to per-job
    errors — which feed the backend's circuit breaker, and
    ``heartbeats`` carries watchdog/heartbeat-gap records for the run
    manifest.
    """

    completed: Dict[SimulationJob, Tuple[object, float]] = field(
        default_factory=dict
    )
    leftovers: List[SimulationJob] = field(default_factory=list)
    attempts: Dict[SimulationJob, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    retries: List[Dict] = field(default_factory=list)
    exhausted: List[SimulationJob] = field(default_factory=list)
    infra_failures: List[str] = field(default_factory=list)
    heartbeats: List[Dict] = field(default_factory=list)
    #: Per-host fault-domain counters from host-aware backends (the
    #: remote backend), keyed by host name; empty for local backends.
    hosts: Dict[str, Dict] = field(default_factory=dict)


def attempt_parallel(
    jobs: Sequence[SimulationJob],
    max_workers: int,
    timeout: Optional[float] = None,
    worker: Callable = _worker,
    policy: Optional[RetryPolicy] = None,
    watchdog: Optional[float] = None,
) -> PoolReport:
    """Run jobs on a process pool, retrying per job and surviving the pool.

    A failed or timed-out job is requeued by itself (deterministic
    exponential backoff, ``policy.max_attempts`` total tries); the pool
    is only given up when it breaks (a worker died), when every slot is
    stuck on a timed-out job, when the ``watchdog`` (seconds without any
    job finishing while work is in flight) declares it stalled, or when
    nothing retryable remains.  On the way out every future that already
    finished is harvested so no completed work is re-simulated serially.

    Pool workers cannot emit heartbeats (``ProcessPoolExecutor`` owns
    their stdio), so the watchdog here is progress-based; per-worker
    heartbeats need the subprocess backend.
    """
    policy = policy if policy is not None else default_retry_policy()
    report = PoolReport()
    pool_size = min(max_workers, len(jobs))
    try:
        executor = ProcessPoolExecutor(max_workers=pool_size)
    except (OSError, ValueError, PermissionError) as error:
        report.notes.append(
            f"worker pool failed to start ({error}); running serially"
        )
        report.infra_failures.append(f"pool failed to start: {error}")
        report.leftovers = list(jobs)
        return report

    ready = deque((job, 1) for job in jobs)
    delayed: List[Tuple[float, int, SimulationJob, int]] = []  # backoff heap
    sequence = 0
    in_flight: Dict[object, Tuple[SimulationJob, int, Optional[float]]] = {}
    zombies: Dict[object, SimulationJob] = {}  # timed-out but still running
    broken = False

    def record_retry(job: SimulationJob, attempt: int, reason: str, delay: float):
        report.retries.append(
            {
                "job": job.describe(),
                "key": job.key(),
                "failed_attempt": attempt,
                "next_attempt": attempt + 1,
                "reason": reason,
                "backoff_seconds": delay,
                "where": "pool",
            }
        )

    def requeue(job: SimulationJob, attempt: int, reason: str, what: str) -> None:
        nonlocal sequence
        if policy.retries_left(attempt):
            delay = policy.delay_before(attempt + 1)
            sequence += 1
            heapq.heappush(
                delayed, (time.monotonic() + delay, sequence, job, attempt + 1)
            )
            record_retry(job, attempt, reason, delay)
            report.notes.append(
                f"job {job.describe()} {what}; retrying "
                f"(attempt {attempt + 1}/{policy.max_attempts}) in {delay:g}s"
            )
        else:
            report.exhausted.append(job)
            report.notes.append(
                f"job {job.describe()} {what}; retries exhausted after "
                f"{attempt} attempt(s), finishing serially"
            )

    last_progress = time.monotonic()
    try:
        while ready or delayed or in_flight:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, _, job, attempt = heapq.heappop(delayed)
                ready.append((job, attempt))
            # A stuck worker that finished after its timeout was declared
            # frees its slot — and its result is still perfectly good.
            for future in [f for f in zombies if f.done()]:
                job = zombies.pop(future)
                try:
                    annotated, wall = future.result()
                except Exception:
                    continue  # its retry is already scheduled
                if job not in report.completed:
                    report.completed[job] = (annotated, wall)
                    last_progress = time.monotonic()
                    report.notes.append(
                        f"job {job.describe()} finished after its timeout; "
                        "late result harvested"
                    )
            free = pool_size - len(in_flight) - len(zombies)
            while ready and free > 0:
                job, attempt = ready.popleft()
                if job in report.completed:
                    continue  # a late zombie result beat the retry to it
                try:
                    future = executor.submit(worker, job, attempt)
                except BrokenProcessPool as error:
                    report.notes.append(
                        f"worker pool broke on submit ({error}); "
                        "finishing serially"
                    )
                    report.infra_failures.append(
                        f"pool broke on submit: {error}"
                    )
                    broken = True
                    break
                report.attempts[job] = max(attempt, report.attempts.get(job, 0))
                deadline = now + timeout if timeout is not None else None
                in_flight[future] = (job, attempt, deadline)
                free -= 1
            if broken:
                break
            if not in_flight:
                if delayed:  # only backoff waits remain: sleep them out
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                    continue
                if ready and free <= 0:
                    report.notes.append(
                        f"all {pool_size} worker slot(s) are stuck on "
                        "timed-out jobs; abandoning the pool and finishing "
                        "serially"
                    )
                    report.infra_failures.append(
                        f"all {pool_size} worker slot(s) stuck on "
                        "timed-out jobs"
                    )
                    break
                if not ready:
                    break
                continue
            horizon = [
                deadline
                for (_, _, deadline) in in_flight.values()
                if deadline is not None
            ]
            if delayed:
                horizon.append(delayed[0][0])
            if zombies:
                horizon.append(time.monotonic() + _ZOMBIE_POLL_SECONDS)
            if watchdog is not None:
                horizon.append(last_progress + watchdog)
            wait_timeout = (
                max(0.0, min(horizon) - time.monotonic()) if horizon else None
            )
            done, _ = wait(
                list(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            if done:
                last_progress = time.monotonic()
            for future in done:
                job, attempt, _ = in_flight.pop(future)
                try:
                    annotated, wall = future.result()
                except BrokenProcessPool:
                    report.notes.append(
                        "a worker process died; harvesting finished results "
                        "and finishing serially"
                    )
                    report.infra_failures.append(
                        f"worker process died running {job.describe()}"
                    )
                    broken = True
                    continue
                except Exception as error:
                    requeue(
                        job,
                        attempt,
                        f"{type(error).__name__}: {error}",
                        f"raised in a worker ({type(error).__name__})",
                    )
                    continue
                if job not in report.completed:
                    report.completed[job] = (annotated, wall)
            if broken:
                break
            now = time.monotonic()
            if (
                watchdog is not None
                and in_flight
                and now - last_progress >= watchdog
            ):
                gap = now - last_progress
                stuck = sorted(
                    job.describe() for (job, _, _) in in_flight.values()
                )
                report.notes.append(
                    f"pool made no progress for {gap:.1f}s (watchdog "
                    f"{watchdog:g}s) with {len(stuck)} job(s) in flight; "
                    "abandoning the pool and finishing elsewhere"
                )
                report.infra_failures.append(
                    f"watchdog stall: no progress for {gap:.1f}s"
                )
                report.heartbeats.append(
                    {
                        "backend": "pool",
                        "kind": "stall",
                        "gap_seconds": round(gap, 3),
                        "jobs": stuck,
                    }
                )
                broken = True
                break
            for future in [
                f
                for f, (_, _, deadline) in in_flight.items()
                if deadline is not None and deadline <= now
            ]:
                job, attempt, _ = in_flight.pop(future)
                if not future.cancel():
                    # Already running: the slot is burned until the worker
                    # returns on its own (it cannot be killed portably).
                    zombies[future] = job
                requeue(
                    job,
                    attempt,
                    f"timeout after {timeout:g}s",
                    f"exceeded the {timeout:g}s timeout",
                )
    finally:
        # Harvest completed-but-unread futures before walking away so no
        # finished work is thrown out and re-simulated serially.
        for future, (job, _, _) in list(in_flight.items()):
            if future.done():
                try:
                    annotated, wall = future.result()
                except Exception:
                    continue
                if job not in report.completed:
                    report.completed[job] = (annotated, wall)
        executor.shutdown(wait=False, cancel_futures=True)
    report.leftovers = [job for job in jobs if job not in report.completed]
    return report
