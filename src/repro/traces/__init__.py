"""Real-trace ingestion: recorded trace files, adapters, workload registry.

The data front door of the reproduction.  :mod:`~repro.traces.format`
defines the versioned chunked on-disk trace format (streaming writer and
reader); :mod:`~repro.traces.adapters` converts external dumps (gem5
Exec text traces) into it; :mod:`~repro.traces.registry` makes recorded
traces and synthetic generators interchangeable workload refs behind one
interface; and :mod:`~repro.traces.estimate` wires :mod:`repro.simpoint`
into the registry so whole-trace savings can be reconstructed from a few
representative regions.

``estimate`` pulls in the execution engine; import it directly
(``from repro.traces import estimate`` or the names re-exported lazily
here) only where the engine dependency is acceptable — the format,
adapter and registry layers stay importable without it.
"""

from __future__ import annotations

from .adapters import ConversionReport, convert_gem5_text
from .format import (
    DEFAULT_CHUNK_INSTRUCTIONS,
    DEFAULT_CODEC,
    FORMAT_VERSION,
    RECORD_DTYPE,
    TRACE_SUFFIX,
    TraceInfo,
    TraceRecording,
    TraceWriter,
    available_codecs,
    read_trace,
    record_benchmark,
    record_chunks,
)
from .registry import (
    DEFAULT_REGISTRY,
    TRACE_SCHEME,
    RecordedTraceSource,
    SyntheticSource,
    TraceRef,
    WorkloadRegistry,
    WorkloadSource,
    format_trace_ref,
    is_trace_ref,
    parse_trace_ref,
    resolve_workload,
    trace_info,
    trace_store_dir,
    validate_workload_ref,
)

_ESTIMATE_NAMES = {
    "CACHES",
    "DEFAULT_NODES",
    "DEFAULT_WINDOW_INSTRUCTIONS",
    "SavingsEstimate",
    "SimPointPlan",
    "default_plan_path",
    "estimate_savings",
    "exact_savings",
    "load_plan",
    "plan_simpoints",
    "save_plan",
}


def __getattr__(name: str):
    # Lazy re-export: repro.traces.estimate imports repro.engine, which
    # imports this package's registry — loading it eagerly here would
    # make `import repro.traces` drag the whole engine in (and cycle).
    if name in _ESTIMATE_NAMES:
        from . import estimate

        return getattr(estimate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ConversionReport",
    "DEFAULT_CHUNK_INSTRUCTIONS",
    "DEFAULT_CODEC",
    "DEFAULT_REGISTRY",
    "FORMAT_VERSION",
    "RECORD_DTYPE",
    "RecordedTraceSource",
    "SyntheticSource",
    "TRACE_SCHEME",
    "TRACE_SUFFIX",
    "TraceInfo",
    "TraceRecording",
    "TraceRef",
    "TraceWriter",
    "WorkloadRegistry",
    "WorkloadSource",
    "available_codecs",
    "convert_gem5_text",
    "format_trace_ref",
    "is_trace_ref",
    "parse_trace_ref",
    "read_trace",
    "record_benchmark",
    "record_chunks",
    "resolve_workload",
    "trace_info",
    "trace_store_dir",
    "validate_workload_ref",
] + sorted(_ESTIMATE_NAMES)
