"""SimPoint-backed whole-trace estimation through the execution engine.

Simulating a huge recorded trace in full defeats the point of recording
it.  This module wires :mod:`repro.simpoint` into the workload registry
so one clustering pass buys estimates for every downstream analysis:

1. **Plan** — stream the trace once through a
   :class:`~repro.simpoint.bbv.BBVProfiler`, cluster the basic-block
   vectors, and keep the representative windows plus their cluster
   weights as a :class:`SimPointPlan` (JSON, persisted next to the trace
   under ``<cache>/traces/`` by default).
2. **Fan out** — each representative window becomes an ordinary
   ``trace:<path>#<window>:<n>`` :class:`~repro.engine.SimulationJob`,
   so window simulations run through the engine with caching, retry,
   supervision, and coalescing like any other job.  The window reader
   seeks past non-overlapping chunks, so each job touches O(window)
   disk bytes.
3. **Reconstruct** — per-window leakage savings (the paper's stacked
   OPT-Drowsy / OPT-Sleep / OPT-Hybrid trio, per technology node) are
   combined as a weight-averaged estimate of the whole-trace savings.

:func:`exact_savings` runs the same metric over the full trace, which is
what the error-bound test compares against on a trace small enough to
afford both.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.energy import ModeEnergyModel
from ..core.stacked import TRIO_SCHEMES, stacked_trio_savings
from ..cpu.pipeline import PipelineConfig
from ..engine import ExecutionEngine, SimulationJob
from ..errors import ConfigurationError, TraceError
from ..power.technology import paper_nodes
from ..simpoint.bbv import BBVProfiler
from ..simpoint.simpoint import select_simpoints
from .format import TraceRecording
from .registry import format_trace_ref, trace_info, trace_store_dir

#: Caches simulated by every estimate, in reporting order.
CACHES = ("icache", "dcache")

#: Default SimPoint profiling-window size for recorded traces.
DEFAULT_WINDOW_INSTRUCTIONS = 100_000

#: Default technology nodes (nm) an estimate covers.
DEFAULT_NODES = (70, 100, 130, 180)

PLAN_VERSION = 1


@dataclass(frozen=True)
class SimPointPlan:
    """Representative windows + weights for one recorded trace."""

    trace_path: str
    trace_digest: str
    window_instructions: int
    windows: Tuple[int, ...]
    weights: Tuple[float, ...]
    n_windows: int  #: Total complete profiling windows in the trace.

    def __post_init__(self) -> None:
        if len(self.windows) != len(self.weights):
            raise ConfigurationError(
                f"simpoint plan has {len(self.windows)} windows but "
                f"{len(self.weights)} weights"
            )
        if not self.windows:
            raise ConfigurationError("simpoint plan selects no windows")
        total = float(sum(self.weights))
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"simpoint plan weights sum to {total!r}, expected 1.0"
            )

    def to_dict(self) -> Dict:
        return {
            "version": PLAN_VERSION,
            "trace_path": self.trace_path,
            "trace_digest": self.trace_digest,
            "window_instructions": self.window_instructions,
            "windows": list(self.windows),
            "weights": list(self.weights),
            "n_windows": self.n_windows,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimPointPlan":
        if payload.get("version") != PLAN_VERSION:
            raise ConfigurationError(
                f"unsupported simpoint plan version {payload.get('version')!r} "
                f"(expected {PLAN_VERSION})"
            )
        return cls(
            trace_path=str(payload["trace_path"]),
            trace_digest=str(payload["trace_digest"]),
            window_instructions=int(payload["window_instructions"]),
            windows=tuple(int(w) for w in payload["windows"]),
            weights=tuple(float(w) for w in payload["weights"]),
            n_windows=int(payload["n_windows"]),
        )

    def window_jobs(
        self, pipeline: Optional[PipelineConfig] = None
    ) -> List[SimulationJob]:
        """One engine job per representative window."""
        return [
            SimulationJob(
                format_trace_ref(self.trace_path, window, self.window_instructions),
                scale=1.0,
                pipeline=pipeline,
            )
            for window in self.windows
        ]


def plan_simpoints(
    path: Path | str,
    *,
    window_instructions: int = DEFAULT_WINDOW_INSTRUCTIONS,
    max_k: int = 10,
    k: Optional[int] = None,
    seed: int = 0,
) -> SimPointPlan:
    """Profile + cluster one recorded trace into a :class:`SimPointPlan`.

    Streams the trace once (bounded memory); determinism is inherited
    from the seeded k-means in :mod:`repro.simpoint`.
    """
    info = trace_info(path)
    profiler = BBVProfiler(window_instructions=window_instructions)
    for chunk in TraceRecording(path).chunks():
        profiler.observe(chunk)
    profile = profiler.profile()
    selection = select_simpoints(profile, max_k=max_k, k=k, seed=seed)
    return SimPointPlan(
        trace_path=str(Path(path)),
        trace_digest=info.digest,
        window_instructions=window_instructions,
        windows=tuple(int(w) for w in selection.windows),
        weights=tuple(float(w) for w in selection.weights),
        n_windows=profile.n_windows,
    )


def default_plan_path(plan: SimPointPlan, directory: Optional[Path] = None) -> Path:
    """Canonical location of a plan file under the cache's trace store."""
    base = trace_store_dir(directory)
    return base / (
        f"simpoints-{plan.trace_digest[:16]}-w{plan.window_instructions}.json"
    )


def save_plan(plan: SimPointPlan, path: Optional[Path] = None) -> Path:
    """Persist a plan as JSON (atomic write); returns its path."""
    dest = Path(path) if path is not None else default_plan_path(plan)
    dest.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(plan.to_dict(), sort_keys=True, indent=2) + "\n"
    fd, tmp = tempfile.mkstemp(dir=str(dest.parent), prefix=f".{dest.name}.")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(payload)
        os.replace(tmp, dest)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return dest


def load_plan(path: Path | str) -> SimPointPlan:
    """Load a persisted plan, verifying its schema."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise TraceError(f"cannot read simpoint plan {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise TraceError(f"simpoint plan {path} is not valid JSON: {error}") from None
    try:
        return SimPointPlan.from_dict(payload)
    except (KeyError, TypeError, ValueError) as error:
        raise TraceError(f"simpoint plan {path} is malformed: {error}") from None


@dataclass(frozen=True)
class SavingsEstimate:
    """Stacked-trio savings per cache × scheme × technology node.

    ``grids[cache]`` is a ``(len(TRIO_SCHEMES), len(nodes))`` array of
    saving fractions, the same quantity the sweep aggregation reports.
    """

    nodes: Tuple[int, ...]
    grids: Dict[str, np.ndarray]

    def saving(self, cache: str, scheme: str, node: int) -> float:
        row = TRIO_SCHEMES.index(scheme)
        column = self.nodes.index(node)
        return float(self.grids[cache][row, column])

    def max_abs_error(self, other: "SavingsEstimate") -> float:
        """Largest absolute savings difference across all cells."""
        if self.nodes != other.nodes or set(self.grids) != set(other.grids):
            raise ConfigurationError(
                "cannot compare savings estimates over different nodes/caches"
            )
        return max(
            float(np.max(np.abs(self.grids[cache] - other.grids[cache])))
            for cache in self.grids
        )

    def to_dict(self) -> Dict:
        return {
            "nodes": list(self.nodes),
            "schemes": list(TRIO_SCHEMES),
            "savings": {
                cache: [[float(v) for v in row] for row in grid]
                for cache, grid in sorted(self.grids.items())
            },
        }


def _models_for(nodes: Sequence[int]) -> List[ModeEnergyModel]:
    catalogue = paper_nodes()
    unknown = [nm for nm in nodes if nm not in catalogue]
    if unknown:
        raise ConfigurationError(
            f"unknown technology nodes {unknown}; known: {sorted(catalogue)}"
        )
    return [ModeEnergyModel(catalogue[nm]) for nm in nodes]


def _trio_grid(annotated, models: Sequence[ModeEnergyModel]) -> Dict[str, np.ndarray]:
    return {
        cache: stacked_trio_savings(
            models, annotated.annotated_for(cache).as_normal().intervals
        )
        for cache in CACHES
    }


def _run_jobs(
    jobs: Iterable[SimulationJob], engine: Optional[ExecutionEngine]
) -> Dict[SimulationJob, object]:
    engine = engine if engine is not None else ExecutionEngine()
    return engine.run(list(jobs))


def estimate_savings(
    plan: SimPointPlan,
    *,
    nodes: Sequence[int] = DEFAULT_NODES,
    engine: Optional[ExecutionEngine] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> SavingsEstimate:
    """Weight-averaged whole-trace savings from the plan's windows.

    Each representative window is one engine job; the per-window stacked
    savings grids are combined with the plan's cluster weights — the
    SimPoint estimator applied cell-wise to the savings metric.
    """
    nodes = tuple(int(nm) for nm in nodes)
    models = _models_for(nodes)
    jobs = plan.window_jobs(pipeline)
    outcomes = _run_jobs(jobs, engine)
    combined = {
        cache: np.zeros((len(TRIO_SCHEMES), len(nodes))) for cache in CACHES
    }
    for job, weight in zip(jobs, plan.weights):
        grids = _trio_grid(outcomes[job].annotated, models)
        for cache in CACHES:
            combined[cache] += weight * grids[cache]
    return SavingsEstimate(nodes=nodes, grids=combined)


def exact_savings(
    path: Path | str,
    *,
    nodes: Sequence[int] = DEFAULT_NODES,
    engine: Optional[ExecutionEngine] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> SavingsEstimate:
    """Full-trace savings: the ground truth the estimate approximates."""
    nodes = tuple(int(nm) for nm in nodes)
    models = _models_for(nodes)
    job = SimulationJob(format_trace_ref(path), scale=1.0, pipeline=pipeline)
    outcomes = _run_jobs([job], engine)
    return SavingsEstimate(nodes=nodes, grids=_trio_grid(outcomes[job].annotated, models))
