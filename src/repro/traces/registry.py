"""Unified workload registry: synthetic generators and recorded traces.

Every place the system names a workload — `SimulationJob.benchmark`,
`SweepSpec.benchmarks`, the service's job specs — accepts a *workload
ref* resolved through this module:

``"gzip"``
    A registered synthetic generator (the paper suite by default;
    more can be added with :meth:`WorkloadRegistry.register`).

``"trace:/path/to/file.rtr"``
    A recorded trace file in the native format (see
    :mod:`repro.traces.format`), streamed chunk-by-chunk.

``"trace:/path/to/file.rtr#3:100000"``
    One SimPoint window of a recorded trace: window index 3 of
    100 000-instruction windows.  Used by SimPoint estimation to fan
    representative regions out through the engine as ordinary jobs.

Content addressing flows through :meth:`WorkloadSource.identity`: a
synthetic workload's identity is its ``{benchmark, scale}`` pair, and a
trace recorded from a synthetic benchmark (provenance in the header)
gets the *identical* identity — so the recorded file produces the same
`SimulationJob.key()`, hits the same cache entries, and coalesces with
inline submissions of the original benchmark.  A foreign trace (e.g.
converted from a gem5 dump) is identified by its content digest, which
is independent of chunking and codec: re-compressing or re-chunking a
trace does not change its content address.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..cpu.trace import TraceChunk
from ..errors import ReproError, WorkloadRefError
from .format import TraceInfo, TraceRecording

TRACE_SCHEME = "trace:"

_WINDOW_RE = re.compile(r"#(\d+):(\d+)$")


def is_trace_ref(ref: str) -> bool:
    """True when ``ref`` names a recorded trace rather than a generator."""

    return isinstance(ref, str) and ref.startswith(TRACE_SCHEME)


@dataclass(frozen=True)
class TraceRef:
    """Parsed form of a ``trace:`` workload ref."""

    path: str
    window: Optional[int] = None
    window_instructions: Optional[int] = None

    @property
    def ref(self) -> str:
        base = f"{TRACE_SCHEME}{self.path}"
        if self.window is None:
            return base
        return f"{base}#{self.window}:{self.window_instructions}"


def format_trace_ref(
    path: Path | str, window: Optional[int] = None, window_instructions: Optional[int] = None
) -> str:
    """Build the canonical string form of a trace ref."""

    return TraceRef(str(path), window, window_instructions).ref


def parse_trace_ref(ref: str) -> TraceRef:
    """Parse ``trace:<path>[#<window>:<window_instructions>]``."""

    if not is_trace_ref(ref):
        raise WorkloadRefError(f"{ref!r} is not a trace ref (expected '{TRACE_SCHEME}<path>')")
    body = ref[len(TRACE_SCHEME):]
    window: Optional[int] = None
    window_instructions: Optional[int] = None
    match = _WINDOW_RE.search(body)
    if match:
        window = int(match.group(1))
        window_instructions = int(match.group(2))
        if window_instructions <= 0:
            raise WorkloadRefError(
                f"{ref!r}: window instruction count must be positive"
            )
        body = body[: match.start()]
    if not body:
        raise WorkloadRefError(
            f"{ref!r}: a trace ref needs a file path "
            f"('{TRACE_SCHEME}<path>[#<window>:<instructions>]')"
        )
    return TraceRef(path=body, window=window, window_instructions=window_instructions)


# Trace header info memoized by (path, size, mtime_ns) so repeated
# identity/fingerprint calls — grid expansion touches every job — do not
# reopen the file.  A rewritten file invalidates its entry automatically.
_INFO_CACHE: Dict[str, Tuple[Tuple[int, int], TraceInfo]] = {}


def trace_info(path: Path | str) -> TraceInfo:
    """Read (memoized) summary info for a recorded trace file."""

    p = Path(path)
    try:
        stat = p.stat()
    except OSError:
        raise WorkloadRefError(f"trace file {p} does not exist") from None
    key = str(p)
    signature = (stat.st_size, stat.st_mtime_ns)
    cached = _INFO_CACHE.get(key)
    if cached is not None and cached[0] == signature:
        return cached[1]
    info = TraceRecording(p).info()
    _INFO_CACHE[key] = (signature, info)
    return info


class WorkloadSource:
    """One resolvable workload: identity for content addressing + chunks."""

    kind = "abstract"

    def identity(self, scale: float) -> Dict[str, Any]:
        raise NotImplementedError

    def chunks(self, scale: float) -> Iterator[TraceChunk]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SyntheticSource(WorkloadSource):
    """A registered synthetic workload generator."""

    name: str
    factory: Callable[..., Any]

    kind = "synthetic"

    def identity(self, scale: float) -> Dict[str, Any]:
        return {"benchmark": self.name, "scale": repr(float(scale))}

    def chunks(self, scale: float) -> Iterator[TraceChunk]:
        return self.factory(scale=scale).chunks()

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class RecordedTraceSource(WorkloadSource):
    """A recorded trace file (optionally one SimPoint window of it)."""

    trace: TraceRef

    kind = "trace"

    def _require_unit_scale(self, scale: float) -> None:
        if float(scale) != 1.0:
            raise WorkloadRefError(
                f"{self.trace.ref!r}: a recorded trace carries its own scale; "
                f"use scale 1.0 (got {scale!r})"
            )

    def info(self) -> TraceInfo:
        return trace_info(self.trace.path)

    def identity(self, scale: float) -> Dict[str, Any]:
        self._require_unit_scale(scale)
        info = self.info()
        provenance = info.provenance or {}
        benchmark = provenance.get("benchmark")
        if benchmark in _paper_benchmark_names() and "scale" in provenance:
            # Recorded from a known synthetic workload: identical content
            # address, so the trace caches/coalesces like the original.
            base: Dict[str, Any] = {
                "benchmark": benchmark,
                "scale": repr(float(provenance["scale"])),
            }
        else:
            base = {"trace": info.digest}
        if self.trace.window is not None:
            base["window"] = self.trace.window
            base["window_instructions"] = self.trace.window_instructions
        return base

    def chunks(self, scale: float) -> Iterator[TraceChunk]:
        self._require_unit_scale(scale)
        recording = TraceRecording(self.trace.path)
        if self.trace.window is None:
            return recording.chunks()
        assert self.trace.window_instructions is not None
        return recording.window_chunks(self.trace.window, self.trace.window_instructions)

    def describe(self) -> str:
        label = f"{TRACE_SCHEME}{Path(self.trace.path).name}"
        if self.trace.window is not None:
            label += f"#{self.trace.window}:{self.trace.window_instructions}"
        return label


def _paper_benchmark_names() -> Tuple[str, ...]:
    from ..workloads.benchmarks import BENCHMARK_NAMES

    return tuple(BENCHMARK_NAMES)


class WorkloadRegistry:
    """Resolve workload refs to :class:`WorkloadSource` objects."""

    def __init__(self) -> None:
        from ..workloads.benchmarks import BENCHMARK_FACTORIES

        self._synthetic: Dict[str, Callable[..., Any]] = dict(BENCHMARK_FACTORIES)

    @property
    def synthetic_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._synthetic))

    def register(self, name: str, factory: Callable[..., Any]) -> None:
        """Register a synthetic generator under ``name``.

        ``factory`` must accept a ``scale`` keyword and return an object
        with a ``chunks()`` iterator (the :class:`Workload` contract).
        """

        if not name or not isinstance(name, str):
            raise WorkloadRefError(f"workload name must be a non-empty string, got {name!r}")
        if is_trace_ref(name):
            raise WorkloadRefError(
                f"cannot register {name!r}: the '{TRACE_SCHEME}' prefix is reserved "
                "for recorded trace refs"
            )
        self._synthetic[name] = factory

    def resolve(self, ref: str) -> WorkloadSource:
        """Resolve a ref without touching the filesystem."""

        if not isinstance(ref, str) or not ref:
            raise WorkloadRefError(f"workload ref must be a non-empty string, got {ref!r}")
        if is_trace_ref(ref):
            return RecordedTraceSource(parse_trace_ref(ref))
        factory = self._synthetic.get(ref)
        if factory is None:
            raise WorkloadRefError(
                f"unknown benchmark {ref!r}; known: {list(self.synthetic_names)} "
                f"(or a '{TRACE_SCHEME}<path>' ref to a recorded trace)"
            )
        return SyntheticSource(ref, factory)

    def validate(self, ref: str) -> WorkloadSource:
        """Resolve a ref and, for trace refs, verify the file is readable."""

        source = self.resolve(ref)
        if isinstance(source, RecordedTraceSource):
            try:
                source.info()
            except WorkloadRefError:
                raise
            except ReproError as error:
                raise WorkloadRefError(str(error)) from None
        return source

    def is_known(self, ref: str) -> bool:
        try:
            self.resolve(ref)
        except ReproError:
            return False
        return True


#: Process-wide default registry used by jobs, sweeps and the CLI.
DEFAULT_REGISTRY = WorkloadRegistry()


def resolve_workload(ref: str) -> WorkloadSource:
    return DEFAULT_REGISTRY.resolve(ref)


def validate_workload_ref(ref: str) -> WorkloadSource:
    return DEFAULT_REGISTRY.validate(ref)


def trace_store_dir(directory: Optional[Path | str] = None) -> Path:
    """The trace-artifact directory under the result cache.

    Recorded traces and SimPoint plans stored here are counted by
    ``repro-leakage cache info`` and by the cache's size accounting.
    """

    from ..engine.store import TRACES_SUBDIR, resolve_cache_dir

    path = resolve_cache_dir(directory) / TRACES_SUBDIR
    path.mkdir(parents=True, exist_ok=True)
    return path
