"""Adapters converting external trace dumps into the native format.

The only adapter so far parses gem5 ``Exec`` debug-flag text traces —
lines shaped like::

    500: system.cpu T0 : 0x400b94 : ldq r1, 0(r2) : MemRead : D=0x1 A=0x140008a90
    1000: system.cpu T0 : 0x400b98 : addq r1, r1, 1 : IntAlu :

Each line becomes one instruction: the PC after ``: 0x``, and — when the
line carries a ``MemRead``/``MemWrite`` class — a data access at the
``A=0x...`` address.  Lines that do not match (comments, stats output,
micro-op continuations without a PC) are counted and skipped, not
fatal: real dumps are messy and a converter that dies on line 3 of a
40 GB file is useless.  The output streams through a
:class:`~repro.traces.format.TraceWriter`, so conversion is constant
memory regardless of input size.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable

import numpy as np

from ..cpu.trace import LOAD, NO_ACCESS, STORE, TraceChunk
from ..errors import TraceError
from .format import (
    DEFAULT_CHUNK_INSTRUCTIONS,
    DEFAULT_CODEC,
    TraceInfo,
    TraceWriter,
)

#: ``<tick>: <cpu> [Tn :] 0x<pc>`` — the prefix of a gem5 Exec line.
_EXEC_LINE = re.compile(
    r"^\s*\d+\s*:\s*\S+\s+(?:T\d+\s+:\s+)?0x(?P<pc>[0-9a-fA-F]+)"
)

#: ``A=0x<addr>`` — the data address of a memory micro-op.
_DATA_ADDR = re.compile(r"\bA=0x(?P<addr>[0-9a-fA-F]+)")


@dataclass(frozen=True)
class ConversionReport:
    """What a conversion produced, for logging and tests."""

    source: str
    instructions: int
    loads: int
    stores: int
    skipped_lines: int
    info: TraceInfo

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "skipped_lines": self.skipped_lines,
            "trace": self.info.to_dict(),
        }


def _parse_gem5_lines(lines: Iterable[str]):
    """Yield ``(pc, daddr, kind)`` per instruction; count skipped lines."""

    for line in lines:
        match = _EXEC_LINE.match(line)
        if match is None:
            yield None
            continue
        pc = int(match.group("pc"), 16)
        kind = NO_ACCESS
        daddr = -1
        if "MemRead" in line or "MemWrite" in line:
            addr = _DATA_ADDR.search(line)
            if addr is None:
                # A memory op whose address gem5 elided: treat as a plain
                # instruction rather than inventing an address.
                yield (pc, -1, NO_ACCESS)
                continue
            daddr = int(addr.group("addr"), 16)
            kind = STORE if "MemWrite" in line else LOAD
        yield (pc, daddr, kind)


def convert_gem5_text(
    source: Path | str,
    dest: Path | str,
    *,
    codec: str = DEFAULT_CODEC,
    chunk_instructions: int = DEFAULT_CHUNK_INSTRUCTIONS,
) -> ConversionReport:
    """Convert a gem5 Exec-style text trace into the native format."""

    source = Path(source)
    if not source.is_file():
        raise TraceError(f"gem5 trace file {source} does not exist")

    pcs: list = []
    daddrs: list = []
    kinds: list = []
    instructions = 0
    loads = 0
    stores = 0
    skipped = 0

    def flush(writer: TraceWriter) -> None:
        if pcs:
            writer.append(
                TraceChunk(
                    np.asarray(pcs, dtype=np.int64),
                    np.asarray(daddrs, dtype=np.int64),
                    np.asarray(kinds, dtype=np.uint8),
                )
            )
            pcs.clear()
            daddrs.clear()
            kinds.clear()

    with TraceWriter(
        dest,
        codec=codec,
        chunk_instructions=chunk_instructions,
        provenance={"adapter": "gem5-text", "source": source.name},
    ) as writer:
        with source.open("r", errors="replace") as fh:
            for parsed in _parse_gem5_lines(fh):
                if parsed is None:
                    skipped += 1
                    continue
                pc, daddr, kind = parsed
                pcs.append(pc)
                daddrs.append(daddr)
                kinds.append(kind)
                instructions += 1
                if kind == LOAD:
                    loads += 1
                elif kind == STORE:
                    stores += 1
                if len(pcs) >= chunk_instructions:
                    flush(writer)
        if instructions == 0:
            raise TraceError(
                f"{source}: no gem5 Exec instructions recognized "
                f"({skipped} lines skipped) — is this an Exec-flag debug trace?"
            )
        flush(writer)
        info = writer.close()

    return ConversionReport(
        source=str(source),
        instructions=instructions,
        loads=loads,
        stores=stores,
        skipped_lines=skipped,
        info=info,
    )
