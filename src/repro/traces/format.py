"""Versioned, chunked on-disk trace format with a streaming reader.

A recorded trace is a single file (conventional suffix ``.rtr``) laid
out as a magic string followed by *frames*.  Every frame is a 4-byte
little-endian length, a JSON metadata blob of that length, and an
optional binary payload whose size the metadata declares::

    MAGIC ("RTRC0001")
    [u32 len][header JSON]                      kind == "header"
    [u32 len][chunk  JSON][payload bytes]       kind == "chunk"   (0..N)
    ...
    [u32 len][end    JSON]                      kind == "end"
    [u64 end-frame offset]["RTRCEND1"]          fixed 16-byte trailer

Chunk payloads are fixed-dtype numpy record arrays (``pc`` int64,
``daddr`` int64 with ``-1`` meaning "no data access", ``kind`` uint8 —
the same column contract as :class:`repro.cpu.trace.TraceChunk`),
optionally compressed.  Each chunk frame carries the SHA-256 of its
*uncompressed* payload so corruption is detected per chunk, and the end
frame carries a running SHA-256 over all uncompressed chunk payloads in
order — a codec- and chunking-independent identity for the trace
content.  The fixed trailer lets :meth:`TraceRecording.info` seek
straight to the end frame without scanning the file.

The reader is streaming: :meth:`TraceRecording.chunks` decodes one
chunk at a time, so peak memory is bounded by the chunk size no matter
how large the trace file is.  :meth:`TraceRecording.window_chunks`
additionally *seeks over* chunks that do not overlap the requested
SimPoint window instead of decoding them.

Compression codecs: ``none``, ``gzip`` (zlib, always available) and
``zstd`` when the :mod:`zstandard` package is importable — the codec
registry is probed at import time so a file recorded with zstd on one
host fails with a clear error, not an ImportError, on a host without it.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import mmap
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..cpu.trace import TraceChunk, merge_chunks
from ..errors import ConfigurationError, TraceError, TraceFormatError

MAGIC = b"RTRC0001"
END_MAGIC = b"RTRCEND1"
FORMAT_VERSION = 1
TRACE_SUFFIX = ".rtr"
DEFAULT_CHUNK_INSTRUCTIONS = 65_536
DEFAULT_CODEC = "gzip"

#: Record layout of one access in a chunk payload (17 bytes/access).
RECORD_DTYPE = np.dtype([("pc", "<i8"), ("daddr", "<i8"), ("kind", "u1")])

_COLUMNS = [["pc", "<i8"], ["daddr", "<i8"], ["kind", "|u1"]]

_LEN_STRUCT = struct.Struct("<I")
_TRAILER_STRUCT = struct.Struct("<Q8s")
_MAX_META_BYTES = 1 << 20  # sanity bound on a metadata frame

logger = logging.getLogger(__name__)

#: Whether the mmap-fallback warning has been emitted (once per process).
_MMAP_WARNED = False


def _zstd_codec() -> Optional[Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]]:
    try:
        import zstandard
    except ImportError:
        return None
    return (
        lambda raw: zstandard.ZstdCompressor().compress(raw),
        lambda buf: zstandard.ZstdDecompressor().decompress(buf),
    )


def _build_codecs() -> Dict[str, Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]]:
    codecs: Dict[str, Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {
        "none": (lambda raw: raw, lambda buf: buf),
        "gzip": (lambda raw: zlib.compress(raw, 6), zlib.decompress),
    }
    zstd = _zstd_codec()
    if zstd is not None:
        codecs["zstd"] = zstd
    return codecs


_CODECS = _build_codecs()


def available_codecs() -> Tuple[str, ...]:
    """Names of the compression codecs usable on this host."""

    return tuple(sorted(_CODECS))


def _codec_for(name: str) -> Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]:
    try:
        return _CODECS[name]
    except KeyError:
        hint = "" if name != "zstd" else " (zstd needs the optional 'zstandard' package)"
        raise ConfigurationError(
            f"unknown trace codec {name!r}; available on this host: "
            f"{list(available_codecs())}{hint}"
        ) from None


@dataclass(frozen=True)
class TraceInfo:
    """Summary of a recorded trace, derived from its header and end frames."""

    path: str
    version: int
    codec: str
    chunk_instructions: int
    chunks: int
    instructions: int
    digest: str
    provenance: Optional[Dict[str, Any]]
    file_bytes: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "version": self.version,
            "codec": self.codec,
            "chunk_instructions": self.chunk_instructions,
            "chunks": self.chunks,
            "instructions": self.instructions,
            "digest": self.digest,
            "provenance": self.provenance,
            "file_bytes": self.file_bytes,
        }


def _write_frame(fh: BinaryIO, meta: Dict[str, Any], payload: bytes = b"") -> None:
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
    fh.write(_LEN_STRUCT.pack(len(blob)))
    fh.write(blob)
    if payload:
        fh.write(payload)


def _read_frame_meta(fh: BinaryIO, path: Path, context: str) -> Dict[str, Any]:
    head = fh.read(_LEN_STRUCT.size)
    if len(head) != _LEN_STRUCT.size:
        raise TraceFormatError(f"{path}: truncated while reading {context} frame length")
    (length,) = _LEN_STRUCT.unpack(head)
    if length == 0 or length > _MAX_META_BYTES:
        raise TraceFormatError(f"{path}: implausible {context} frame length {length}")
    blob = fh.read(length)
    if len(blob) != length:
        raise TraceFormatError(f"{path}: truncated while reading {context} frame metadata")
    try:
        meta = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"{path}: corrupt {context} frame metadata: {error}") from None
    if not isinstance(meta, dict) or "kind" not in meta:
        raise TraceFormatError(f"{path}: malformed {context} frame metadata")
    return meta


def _read_frame_meta_at(
    buffer, pos: int, path: Path, context: str
) -> Tuple[Dict[str, Any], int]:
    """:func:`_read_frame_meta` against an in-memory buffer (mmap path)."""
    end = pos + _LEN_STRUCT.size
    if end > len(buffer):
        raise TraceFormatError(f"{path}: truncated while reading {context} frame length")
    (length,) = _LEN_STRUCT.unpack(buffer[pos:end])
    if length == 0 or length > _MAX_META_BYTES:
        raise TraceFormatError(f"{path}: implausible {context} frame length {length}")
    blob = bytes(buffer[end : end + length])
    if len(blob) != length:
        raise TraceFormatError(f"{path}: truncated while reading {context} frame metadata")
    try:
        meta = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"{path}: corrupt {context} frame metadata: {error}") from None
    if not isinstance(meta, dict) or "kind" not in meta:
        raise TraceFormatError(f"{path}: malformed {context} frame metadata")
    return meta, end + length


def _encode_chunk(chunk: TraceChunk) -> bytes:
    rec = np.empty(len(chunk), dtype=RECORD_DTYPE)
    rec["pc"] = chunk.pcs
    rec["daddr"] = chunk.data_addresses
    rec["kind"] = chunk.data_kinds
    return rec.tobytes()


def _decode_chunk(raw: bytes, path: Path, index: int) -> TraceChunk:
    if len(raw) % RECORD_DTYPE.itemsize:
        raise TraceFormatError(
            f"{path}: chunk {index} payload is {len(raw)} bytes, not a multiple of "
            f"the {RECORD_DTYPE.itemsize}-byte record size"
        )
    rec = np.frombuffer(raw, dtype=RECORD_DTYPE)
    try:
        return TraceChunk(
            np.ascontiguousarray(rec["pc"], dtype=np.int64),
            np.ascontiguousarray(rec["daddr"], dtype=np.int64),
            np.ascontiguousarray(rec["kind"], dtype=np.uint8),
        )
    except TraceError as error:
        raise TraceFormatError(f"{path}: chunk {index} holds invalid accesses: {error}") from None


def _decode_chunk_view(
    buffer, offset: int, count: int, path: Path, index: int
) -> TraceChunk:
    """Zero-copy chunk decode: columns are strided views into ``buffer``.

    Used by the mmap reader path (codec ``none``), where the payload
    bytes already sit in the page cache — the kernel consumes the views
    directly instead of materializing copies.
    """
    rec = np.frombuffer(buffer, dtype=RECORD_DTYPE, count=count, offset=offset)
    try:
        return TraceChunk(rec["pc"], rec["daddr"], rec["kind"])
    except TraceError as error:
        raise TraceFormatError(f"{path}: chunk {index} holds invalid accesses: {error}") from None


class TraceWriter:
    """Stream trace chunks to disk in the native recorded format.

    The writer re-chunks its input: appended chunks are buffered and
    emitted as exact ``chunk_instructions``-sized chunks (the final
    chunk may be shorter), so the on-disk chunking — and therefore the
    window addressing used by SimPoint estimation — is independent of
    how the producer happened to batch its accesses.  Output goes to a
    temporary file in the destination directory and is atomically
    renamed into place on :meth:`close`; an aborted writer leaves
    nothing behind.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        codec: str = DEFAULT_CODEC,
        chunk_instructions: int = DEFAULT_CHUNK_INSTRUCTIONS,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> None:
        if chunk_instructions <= 0:
            raise ConfigurationError(
                f"chunk_instructions must be positive, got {chunk_instructions}"
            )
        self._compress, _ = _codec_for(codec)
        self._codec = codec
        self._chunk_instructions = int(chunk_instructions)
        self._provenance = dict(provenance) if provenance is not None else None
        self._final_path = Path(path)
        self._final_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._final_path.parent),
            prefix=f".{self._final_path.name}.",
            suffix=".tmp",
        )
        self._tmp_path = Path(tmp)
        self._fh: Optional[BinaryIO] = os.fdopen(fd, "wb")
        self._pending: List[TraceChunk] = []
        self._buffered = 0
        self._chunks = 0
        self._instructions = 0
        self._digest = hashlib.sha256()
        self._fh.write(MAGIC)
        _write_frame(
            self._fh,
            {
                "kind": "header",
                "version": FORMAT_VERSION,
                "codec": self._codec,
                "chunk_instructions": self._chunk_instructions,
                "columns": _COLUMNS,
                "provenance": self._provenance,
            },
        )

    @property
    def path(self) -> Path:
        return self._final_path

    def append(self, chunk: TraceChunk) -> None:
        if self._fh is None:
            raise TraceError(f"trace writer for {self._final_path} is already closed")
        if len(chunk) == 0:
            return
        self._pending.append(chunk)
        self._buffered += len(chunk)
        while self._buffered >= self._chunk_instructions:
            merged = merge_chunks(self._pending)
            self._emit(merged.slice(0, self._chunk_instructions))
            rest = merged.slice(self._chunk_instructions, len(merged))
            self._pending = [rest] if len(rest) else []
            self._buffered = len(rest)

    def extend(self, chunks: Iterable[TraceChunk]) -> None:
        for chunk in chunks:
            self.append(chunk)

    def _emit(self, chunk: TraceChunk) -> None:
        assert self._fh is not None
        raw = _encode_chunk(chunk)
        self._digest.update(raw)
        payload = self._compress(raw)
        _write_frame(
            self._fh,
            {
                "kind": "chunk",
                "index": self._chunks,
                "instructions": len(chunk),
                "payload_bytes": len(payload),
                "sha256": hashlib.sha256(raw).hexdigest(),
            },
            payload,
        )
        self._chunks += 1
        self._instructions += len(chunk)

    def close(self) -> TraceInfo:
        """Flush buffered accesses, seal the file and rename it into place."""

        if self._fh is None:
            raise TraceError(f"trace writer for {self._final_path} is already closed")
        if self._pending:
            self._emit(merge_chunks(self._pending))
            self._pending = []
            self._buffered = 0
        fh = self._fh
        end_offset = fh.tell()
        digest = self._digest.hexdigest()
        _write_frame(
            fh,
            {
                "kind": "end",
                "chunks": self._chunks,
                "instructions": self._instructions,
                "digest": digest,
            },
        )
        fh.write(_TRAILER_STRUCT.pack(end_offset, END_MAGIC))
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        self._fh = None
        os.replace(self._tmp_path, self._final_path)
        return TraceInfo(
            path=str(self._final_path),
            version=FORMAT_VERSION,
            codec=self._codec,
            chunk_instructions=self._chunk_instructions,
            chunks=self._chunks,
            instructions=self._instructions,
            digest=digest,
            provenance=self._provenance,
            file_bytes=self._final_path.stat().st_size,
        )

    def abort(self) -> None:
        """Discard the partially written file."""

        if self._fh is not None:
            self._fh.close()
            self._fh = None
        try:
            self._tmp_path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            if self._fh is not None:
                self.close()
        else:
            self.abort()


class TraceRecording:
    """Streaming reader for a recorded trace file."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise TraceError(f"trace file {self.path} does not exist")
        with self.path.open("rb") as fh:
            self._header = self._read_header(fh)
        self._decompress = _codec_for(self._header["codec"])[1]

    def _read_header(self, fh: BinaryIO) -> Dict[str, Any]:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceFormatError(
                f"{self.path}: not a recorded trace (bad magic {magic!r}; expected {MAGIC!r})"
            )
        meta = _read_frame_meta(fh, self.path, "header")
        if meta.get("kind") != "header":
            raise TraceFormatError(f"{self.path}: first frame is {meta.get('kind')!r}, not header")
        version = meta.get("version")
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported trace format version {version!r} "
                f"(this reader supports {FORMAT_VERSION})"
            )
        if meta.get("columns") != _COLUMNS:
            raise TraceFormatError(
                f"{self.path}: unexpected column layout {meta.get('columns')!r}"
            )
        codec = meta.get("codec")
        if not isinstance(codec, str):
            raise TraceFormatError(f"{self.path}: header has no codec")
        _codec_for(codec)  # raises ConfigurationError if unusable on this host
        chunk_instructions = meta.get("chunk_instructions")
        if not isinstance(chunk_instructions, int) or chunk_instructions <= 0:
            raise TraceFormatError(
                f"{self.path}: invalid chunk_instructions {chunk_instructions!r}"
            )
        return meta

    @property
    def codec(self) -> str:
        return str(self._header["codec"])

    @property
    def chunk_instructions(self) -> int:
        return int(self._header["chunk_instructions"])

    @property
    def provenance(self) -> Optional[Dict[str, Any]]:
        provenance = self._header.get("provenance")
        return dict(provenance) if isinstance(provenance, dict) else None

    def info(self) -> TraceInfo:
        """Read the trace summary via the fixed trailer (no chunk scan)."""

        size = self.path.stat().st_size
        if size < len(MAGIC) + _TRAILER_STRUCT.size:
            raise TraceFormatError(f"{self.path}: file too short to hold a trailer")
        with self.path.open("rb") as fh:
            fh.seek(size - _TRAILER_STRUCT.size)
            end_offset, end_magic = _TRAILER_STRUCT.unpack(fh.read(_TRAILER_STRUCT.size))
            if end_magic != END_MAGIC:
                raise TraceFormatError(
                    f"{self.path}: missing end trailer (file truncated or not sealed)"
                )
            if end_offset >= size:
                raise TraceFormatError(f"{self.path}: trailer points past end of file")
            fh.seek(end_offset)
            end = _read_frame_meta(fh, self.path, "end")
        if end.get("kind") != "end":
            raise TraceFormatError(
                f"{self.path}: trailer does not point at an end frame (got {end.get('kind')!r})"
            )
        return TraceInfo(
            path=str(self.path),
            version=int(self._header["version"]),
            codec=self.codec,
            chunk_instructions=self.chunk_instructions,
            chunks=int(end["chunks"]),
            instructions=int(end["instructions"]),
            digest=str(end["digest"]),
            provenance=self.provenance,
            file_bytes=size,
        )

    def _read_payload(self, fh: BinaryIO, meta: Dict[str, Any], index: int) -> bytes:
        declared = meta.get("payload_bytes")
        if not isinstance(declared, int) or declared < 0:
            raise TraceFormatError(f"{self.path}: chunk {index} declares no payload size")
        payload = fh.read(declared)
        if len(payload) != declared:
            raise TraceFormatError(
                f"{self.path}: chunk {index} truncated "
                f"(expected {declared} payload bytes, got {len(payload)})"
            )
        try:
            raw = self._decompress(payload)
        except Exception as error:  # zlib.error / zstd errors
            raise TraceFormatError(
                f"{self.path}: chunk {index} failed to decompress ({error}); "
                "the file is corrupt"
            ) from None
        if hashlib.sha256(raw).hexdigest() != meta.get("sha256"):
            raise TraceFormatError(
                f"{self.path}: chunk {index} checksum mismatch; the file is corrupt"
            )
        expected = meta.get("instructions")
        if isinstance(expected, int) and len(raw) != expected * RECORD_DTYPE.itemsize:
            raise TraceFormatError(
                f"{self.path}: chunk {index} holds {len(raw) // RECORD_DTYPE.itemsize} "
                f"accesses but declares {expected}"
            )
        return raw

    def chunks(self) -> Iterator[TraceChunk]:
        """Yield the trace's chunks in order, verifying every checksum.

        Peak memory is bounded by one chunk: each payload is read,
        verified and decoded only when the consumer advances the
        generator.  The running whole-trace digest is checked against
        the end frame, so a fully consumed stream is guaranteed intact.

        Uncompressed traces (codec ``none``) are memory-mapped when the
        filesystem allows it: chunks become zero-copy views into the
        page cache (checksums still verified) instead of materialized
        copies.  When mmap fails the reader falls back to buffered
        reads — logged once — with identical results.
        """

        if self.codec == "none":
            mapped = self._open_mmap()
            if mapped is not None:
                yield from self._mapped_chunks(mapped)
                return
        with self.path.open("rb") as fh:
            fh.seek(len(MAGIC))
            _read_frame_meta(fh, self.path, "header")
            running = hashlib.sha256()
            index = 0
            while True:
                meta = _read_frame_meta(fh, self.path, f"chunk {index}")
                kind = meta.get("kind")
                if kind == "end":
                    if meta.get("chunks") != index:
                        raise TraceFormatError(
                            f"{self.path}: end frame declares {meta.get('chunks')} chunks "
                            f"but {index} were read"
                        )
                    if meta.get("digest") != running.hexdigest():
                        raise TraceFormatError(
                            f"{self.path}: whole-trace digest mismatch; the file is corrupt"
                        )
                    return
                if kind != "chunk":
                    raise TraceFormatError(f"{self.path}: unexpected frame kind {kind!r}")
                if meta.get("index") != index:
                    raise TraceFormatError(
                        f"{self.path}: chunk frames out of order "
                        f"(expected index {index}, found {meta.get('index')!r})"
                    )
                raw = self._read_payload(fh, meta, index)
                running.update(raw)
                yield _decode_chunk(raw, self.path, index)
                index += 1

    def _open_mmap(self) -> Optional[mmap.mmap]:
        """Map the file read-only; ``None`` (logged once) when mmap fails."""
        global _MMAP_WARNED
        try:
            with self.path.open("rb") as fh:
                return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError, OverflowError) as error:
            if not _MMAP_WARNED:
                _MMAP_WARNED = True
                logger.warning(
                    "mmap of %s failed (%s); falling back to buffered "
                    "trace reads for this process",
                    self.path, error,
                )
            return None

    def _mapped_chunks(self, mapped: mmap.mmap) -> Iterator[TraceChunk]:
        """The mmap twin of :meth:`chunks`: same checks, zero-copy views."""
        view = memoryview(mapped)
        try:
            if mapped[: len(MAGIC)] != MAGIC:
                raise TraceFormatError(
                    f"{self.path}: not a recorded trace (bad magic)"
                )
            pos = len(MAGIC)
            _, pos = _read_frame_meta_at(mapped, pos, self.path, "header")
            running = hashlib.sha256()
            index = 0
            while True:
                meta, pos = _read_frame_meta_at(
                    mapped, pos, self.path, f"chunk {index}"
                )
                kind = meta.get("kind")
                if kind == "end":
                    if meta.get("chunks") != index:
                        raise TraceFormatError(
                            f"{self.path}: end frame declares "
                            f"{meta.get('chunks')} chunks but {index} were read"
                        )
                    if meta.get("digest") != running.hexdigest():
                        raise TraceFormatError(
                            f"{self.path}: whole-trace digest mismatch; "
                            "the file is corrupt"
                        )
                    return
                if kind != "chunk":
                    raise TraceFormatError(
                        f"{self.path}: unexpected frame kind {kind!r}"
                    )
                if meta.get("index") != index:
                    raise TraceFormatError(
                        f"{self.path}: chunk frames out of order "
                        f"(expected index {index}, found {meta.get('index')!r})"
                    )
                declared = meta.get("payload_bytes")
                if not isinstance(declared, int) or declared < 0:
                    raise TraceFormatError(
                        f"{self.path}: chunk {index} declares no payload size"
                    )
                if pos + declared > len(mapped):
                    raise TraceFormatError(
                        f"{self.path}: chunk {index} truncated "
                        f"(expected {declared} payload bytes)"
                    )
                raw = view[pos : pos + declared]
                if hashlib.sha256(raw).hexdigest() != meta.get("sha256"):
                    raise TraceFormatError(
                        f"{self.path}: chunk {index} checksum mismatch; "
                        "the file is corrupt"
                    )
                expected = meta.get("instructions")
                if declared % RECORD_DTYPE.itemsize:
                    raise TraceFormatError(
                        f"{self.path}: chunk {index} payload is {declared} "
                        f"bytes, not a multiple of the "
                        f"{RECORD_DTYPE.itemsize}-byte record size"
                    )
                count = declared // RECORD_DTYPE.itemsize
                if isinstance(expected, int) and count != expected:
                    raise TraceFormatError(
                        f"{self.path}: chunk {index} holds {count} accesses "
                        f"but declares {expected}"
                    )
                running.update(raw)
                yield _decode_chunk_view(mapped, pos, count, self.path, index)
                pos += declared
                index += 1
        finally:
            view.release()
            # Chunk views handed to a still-running consumer keep the
            # mapping alive; close() then raises BufferError and the map
            # is released when the last view is garbage-collected.
            with contextlib.suppress(BufferError):
                mapped.close()

    def window_chunks(self, window: int, window_instructions: int) -> Iterator[TraceChunk]:
        """Yield only the accesses of one SimPoint window, seeking past the rest.

        ``window`` is a 0-based index of a ``window_instructions``-sized
        region, the same addressing :func:`repro.simpoint.window_slice`
        uses.  Chunk payloads that do not overlap the window are skipped
        with ``seek`` — they are neither decompressed nor checksummed —
        so extracting one region of a huge trace touches O(window) data.
        """

        if window < 0:
            raise ConfigurationError(f"window must be non-negative, got {window}")
        if window_instructions <= 0:
            raise ConfigurationError(
                f"window_instructions must be positive, got {window_instructions}"
            )
        start = window * window_instructions
        stop = start + window_instructions
        yielded = False
        with self.path.open("rb") as fh:
            fh.seek(len(MAGIC))
            _read_frame_meta(fh, self.path, "header")
            position = 0
            index = 0
            while position < stop:
                meta = _read_frame_meta(fh, self.path, f"chunk {index}")
                kind = meta.get("kind")
                if kind == "end":
                    break
                if kind != "chunk":
                    raise TraceFormatError(f"{self.path}: unexpected frame kind {kind!r}")
                count = meta.get("instructions")
                declared = meta.get("payload_bytes")
                if not isinstance(count, int) or not isinstance(declared, int):
                    raise TraceFormatError(f"{self.path}: chunk {index} metadata incomplete")
                chunk_start, chunk_stop = position, position + count
                if chunk_stop <= start:
                    fh.seek(declared, os.SEEK_CUR)
                else:
                    raw = self._read_payload(fh, meta, index)
                    chunk = _decode_chunk(raw, self.path, index)
                    lo = max(start, chunk_start) - chunk_start
                    hi = min(stop, chunk_stop) - chunk_start
                    part = chunk.slice(lo, hi)
                    if len(part):
                        yield part
                        yielded = True
                position = chunk_stop
                index += 1
        if not yielded:
            raise ConfigurationError(
                f"window {window} (instructions {start}..{stop}) lies beyond the end "
                f"of trace {self.path}"
            )

    def validate(self) -> TraceInfo:
        """Walk the whole file verifying every checksum and the trailer."""

        info = self.info()
        chunks = 0
        instructions = 0
        for chunk in self.chunks():
            chunks += 1
            instructions += len(chunk)
        if chunks != info.chunks or instructions != info.instructions:
            raise TraceFormatError(
                f"{self.path}: end frame declares {info.chunks} chunks / "
                f"{info.instructions} instructions but the stream holds "
                f"{chunks} / {instructions}"
            )
        return info


def read_trace(path: Path | str) -> Iterator[TraceChunk]:
    """Convenience: stream a recorded trace's chunks."""

    return TraceRecording(path).chunks()


def record_chunks(
    chunks: Iterable[TraceChunk],
    path: Path | str,
    *,
    codec: str = DEFAULT_CODEC,
    chunk_instructions: int = DEFAULT_CHUNK_INSTRUCTIONS,
    provenance: Optional[Dict[str, Any]] = None,
) -> TraceInfo:
    """Record an iterable of trace chunks to ``path``, returning its info."""

    with TraceWriter(
        path, codec=codec, chunk_instructions=chunk_instructions, provenance=provenance
    ) as writer:
        writer.extend(chunks)
        return writer.close()


def record_benchmark(
    name: str,
    path: Path | str,
    *,
    scale: float = 1.0,
    codec: str = DEFAULT_CODEC,
    chunk_instructions: int = DEFAULT_CHUNK_INSTRUCTIONS,
) -> TraceInfo:
    """Record a synthetic benchmark workload to disk.

    The provenance (benchmark name + scale) is stored in the header, so
    the workload registry can give the recorded trace the *same content
    address* as the synthetic workload it captures — simulating the
    recorded file hits the same cache entries and coalesces with inline
    submissions of the original benchmark.
    """

    from ..workloads.benchmarks import make_benchmark

    workload = make_benchmark(name, scale=scale)
    return record_chunks(
        workload.chunks(),
        path,
        codec=codec,
        chunk_instructions=chunk_instructions,
        provenance={"benchmark": workload.name, "scale": float(scale)},
    )
