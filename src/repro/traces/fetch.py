"""Digest-addressed trace staging for remote workers.

A remote worker that receives a job whose workload is a ``trace:`` ref
may not have the ``.rtr`` file on its filesystem.  Rather than shipping
trace bytes with every job, the remote protocol fetches them *on
demand, by content digest*: the worker asks the controller for the
trace's whole-file digest, checks its local staging directory for an
already-staged copy (``<staging>/<digest>.rtr``), and only when that
misses streams the bytes over the frame protocol.

Staged files are verified before first use: the incoming stream is
spooled to a temporary file, every chunk checksum and the whole-trace
digest are re-validated with :meth:`TraceRecording.validate`, the
result's digest is compared against the digest the fetch was keyed by,
and only then is the file atomically renamed into place.  A torn or
corrupted transfer can therefore never be mistaken for the real trace —
it simply never appears under its digest name.

The staging directory lives under the result cache
(``<cache>/remote-staging``) so staged fetches are charged against
``REPRO_CACHE_MAX_MB`` alongside recorded traces (see
:meth:`ResultStore.info`'s nested ``traces`` accounting).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from ..errors import ReproError
from .format import TraceFormatError, TraceRecording

#: Subdirectory of the result cache holding digest-addressed staged
#: traces fetched by remote workers.
STAGING_SUBDIR = "remote-staging"

#: Size of one ``trace-data`` frame payload when streaming a trace.
FETCH_CHUNK_BYTES = 1 << 20


class TraceFetchError(ReproError):
    """A streamed trace failed verification or could not be staged."""


def staging_dir(directory: Optional[Path | str] = None) -> Path:
    """The digest-addressed staging directory under the result cache."""
    from ..engine.store import resolve_cache_dir

    path = resolve_cache_dir(directory) / STAGING_SUBDIR
    path.mkdir(parents=True, exist_ok=True)
    return path


def staged_trace_path(digest: str, directory: Optional[Path | str] = None) -> Path:
    """Where a trace with this whole-file digest is (or would be) staged."""
    return staging_dir(directory) / f"{digest}.rtr"


def iter_trace_bytes(
    path: Path | str, chunk_bytes: int = FETCH_CHUNK_BYTES
) -> Iterator[bytes]:
    """Stream a trace file's raw bytes in bounded chunks (sender side)."""
    with Path(path).open("rb") as fh:
        while True:
            block = fh.read(chunk_bytes)
            if not block:
                return
            yield block


class TraceStager:
    """Receiver side: spool, verify against the digest, rename into place.

    Feed the incoming stream with :meth:`feed`; :meth:`finish` verifies
    the spooled file end to end and atomically publishes it under its
    digest name.  :meth:`abort` (or a failed :meth:`finish`) removes the
    temporary file, so interrupted transfers leave nothing behind.
    """

    def __init__(
        self,
        digest: str,
        expected_bytes: Optional[int] = None,
        directory: Optional[Path | str] = None,
    ) -> None:
        if not digest:
            raise TraceFetchError("cannot stage a trace without its digest")
        self.digest = digest
        self.expected_bytes = expected_bytes
        self.target = staged_trace_path(digest, directory)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.target.parent), prefix=".fetch-", suffix=".tmp"
        )
        self._tmp = Path(tmp_name)
        self._handle = os.fdopen(fd, "wb")
        self.received = 0

    def feed(self, data: bytes) -> None:
        """Append one frame's payload to the spool file."""
        self._handle.write(data)
        self.received += len(data)

    def abort(self) -> None:
        """Drop the partial transfer (idempotent)."""
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            self._tmp.unlink()
        except OSError:
            pass

    def finish(self) -> Path:
        """Verify the spooled trace and publish it under its digest name.

        Validation re-reads every chunk (checksums included) and checks
        the whole-trace digest twice over: once against the file's own
        sealed end frame, once against the digest this fetch was keyed
        by.  Only a fully intact, correctly-identified trace is renamed
        into the staging directory.
        """
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        except OSError as error:
            self.abort()
            raise TraceFetchError(
                f"staging trace {self.digest[:12]}: spool write failed "
                f"({error})"
            ) from None
        if (
            self.expected_bytes is not None
            and self.received != self.expected_bytes
        ):
            self.abort()
            raise TraceFetchError(
                f"staging trace {self.digest[:12]}: received "
                f"{self.received} bytes, expected {self.expected_bytes}"
            )
        try:
            info = TraceRecording(self._tmp).validate()
        except (TraceFormatError, OSError) as error:
            self.abort()
            raise TraceFetchError(
                f"staging trace {self.digest[:12]}: transferred file "
                f"failed validation ({error})"
            ) from None
        if info.digest != self.digest:
            self.abort()
            raise TraceFetchError(
                f"staged trace digest mismatch: expected "
                f"{self.digest[:12]}, transferred file hashes to "
                f"{info.digest[:12]}"
            )
        try:
            os.replace(self._tmp, self.target)
        except OSError as error:
            self.abort()
            raise TraceFetchError(
                f"staging trace {self.digest[:12]}: rename failed ({error})"
            ) from None
        return self.target
