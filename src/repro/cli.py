"""Command-line interface: ``repro-leakage`` / ``python -m repro``.

Regenerates any of the paper's tables and figures::

    repro-leakage list
    repro-leakage table1
    repro-leakage figure8 --scale 0.5
    repro-leakage all --scale 0.5 --output results.txt
    repro-leakage cache info
    repro-leakage all --run-id sweep-1      # checkpointed, resumable
    repro-leakage all --resume sweep-1      # continue after a crash

Simulations go through the execution engine: benchmark jobs fan out over
worker processes (``--jobs`` / ``REPRO_JOBS``), failed or timed-out jobs
are retried per job with deterministic backoff (``REPRO_RETRIES`` /
``REPRO_RETRY_DELAY``), results are cached on disk under
``~/.cache/repro-leakage`` (``REPRO_CACHE_DIR`` overrides,
``REPRO_CACHE_MAX_MB`` bounds the size, ``--no-cache`` bypasses), and a
telemetry footer — exportable as JSON via ``--manifest`` — reports where
the time went, including every retry and degradation.  A run started
with ``--run-id`` journals each completed job, so after a crash
``--resume`` picks up where it died.  The report on stdout is
byte-identical whatever the worker count, cache state, fault history or
resume path; telemetry goes to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import (
    ExecutionEngine,
    NullStore,
    ResultStore,
    RunJournal,
    resolve_cache_dir,
)
from .errors import ReproError
from .experiments.runner import experiment_names, run_all, run_experiment
from .experiments.suite import SuiteRunner
from .workloads.benchmarks import BENCHMARK_NAMES

#: Valid subactions of the ``cache`` maintenance command.
CACHE_ACTIONS = ("info", "clear")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-leakage",
        description=(
            "Reproduce 'On the Limits of Leakage Power Reduction in Caches' "
            "(HPCA 2005): oracle leakage limits, technology sweeps and "
            "prefetch-guided approximations."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name, 'all', 'list' to enumerate experiments, or "
            "'cache' for cache maintenance"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="subaction for 'cache': info (default) or clear",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = calibration length, ~2M instructions "
        "per benchmark; smaller is faster)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help=f"restrict the suite to these benchmarks (from: {BENCHMARK_NAMES})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="simulation worker processes (default: REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (neither read nor write it)",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal this run under ID so it can be resumed after a crash",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="ID",
        help="resume the interrupted run ID from its journal",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the run telemetry manifest as JSON to this file",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also export every table as CSV into this directory",
    )
    return parser


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def cache_command(action: Optional[str]) -> int:
    """``repro-leakage cache {info,clear}``: inspect or empty the cache."""
    action = action or "info"
    if action not in CACHE_ACTIONS:
        return _fail(
            f"unknown cache action {action!r}; choose from {CACHE_ACTIONS}"
        )
    store = ResultStore()
    if action == "clear":
        removed = store.clear()
        print(f"cache: removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.describe()}")
        return 0
    info = store.info()
    print(f"cache directory: {info['directory']}")
    print(f"entries:         {info['entries']}")
    print(f"size:            {info['bytes'] / (1024 * 1024):.2f} MB")
    limit = info["max_bytes"]
    print(
        "size limit:      "
        + ("unbounded" if not limit else f"{limit / (1024 * 1024):.2f} MB")
    )
    return 0


def _make_journal(args) -> Optional[RunJournal]:
    """The run journal implied by ``--run-id``/``--resume``, validated."""
    if args.resume and args.run_id and args.resume != args.run_id:
        raise ReproError(
            f"--run-id {args.run_id!r} conflicts with --resume {args.resume!r}"
        )
    run_id = args.resume or args.run_id
    if run_id is None:
        return None
    if args.no_cache:
        raise ReproError(
            "--run-id/--resume need the on-disk cache; drop --no-cache"
        )
    journal = RunJournal(resolve_cache_dir(), run_id)
    if args.resume and not journal.exists():
        raise ReproError(
            f"no journal for run {run_id!r} under {journal.describe()}; "
            "start it with --run-id first"
        )
    if not args.resume and journal.exists():
        raise ReproError(
            f"run {run_id!r} already has a journal; "
            f"continue it with --resume {run_id}"
        )
    return journal


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "cache":
        try:
            return cache_command(args.action)
        except ReproError as error:
            return _fail(str(error))
    if args.action is not None:
        return _fail(
            f"unexpected argument {args.action!r} "
            f"(subactions only apply to 'cache')"
        )
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0
    benchmarks = args.benchmarks
    if benchmarks is not None:
        benchmarks = [name.lower() for name in benchmarks]
        unknown = [name for name in benchmarks if name not in BENCHMARK_NAMES]
        if unknown:
            return _fail(
                f"unknown benchmarks {unknown}; choose from {BENCHMARK_NAMES}"
            )
    try:
        journal = _make_journal(args)
        engine = ExecutionEngine(
            jobs=args.jobs,
            store=NullStore() if args.no_cache else None,
            journal=journal,
            resume=args.resume is not None,
        )
        suite = SuiteRunner(scale=args.scale, benchmarks=benchmarks, engine=engine)
        if args.experiment == "all":
            results = run_all(suite)
        else:
            results = [run_experiment(args.experiment, suite)]
    except ReproError as error:
        return _fail(str(error))
    report = "\n\n\n".join(result.render() for result in results)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.csv:
        from .experiments.reporting import save_csv

        for result in results:
            save_csv(result, args.csv)
    telemetry = engine.telemetry
    if telemetry.jobs:
        print(telemetry.summary(), file=sys.stderr)
    if args.manifest:
        telemetry.write_manifest(args.manifest)
    if journal is not None:
        written = journal.write_manifest(telemetry.manifest())
        if written:
            print(f"run journal: {journal.describe()}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
