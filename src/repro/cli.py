"""Command-line interface: ``repro-leakage`` / ``python -m repro``.

Regenerates any of the paper's tables and figures::

    repro-leakage list
    repro-leakage table1
    repro-leakage figure8 --scale 0.5
    repro-leakage all --scale 0.5 --output results.txt

Simulations go through the execution engine: benchmark jobs fan out over
worker processes (``--jobs`` / ``REPRO_JOBS``), results are cached on
disk under ``~/.cache/repro-leakage`` (``REPRO_CACHE_DIR`` overrides,
``--no-cache`` bypasses), and a telemetry footer — exportable as JSON
via ``--manifest`` — reports where the time went.  The report on stdout
is byte-identical whatever the worker count or cache state; telemetry
goes to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import ExecutionEngine, NullStore
from .errors import ReproError
from .experiments.runner import experiment_names, run_all, run_experiment
from .experiments.suite import SuiteRunner
from .workloads.benchmarks import BENCHMARK_NAMES


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-leakage",
        description=(
            "Reproduce 'On the Limits of Leakage Power Reduction in Caches' "
            "(HPCA 2005): oracle leakage limits, technology sweeps and "
            "prefetch-guided approximations."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list' to enumerate experiments",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = calibration length, ~2M instructions "
        "per benchmark; smaller is faster)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help=f"restrict the suite to these benchmarks (from: {BENCHMARK_NAMES})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="simulation worker processes (default: REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (neither read nor write it)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the run telemetry manifest as JSON to this file",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also export every table as CSV into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0
    benchmarks = args.benchmarks
    if benchmarks is not None:
        benchmarks = [name.lower() for name in benchmarks]
        unknown = [name for name in benchmarks if name not in BENCHMARK_NAMES]
        if unknown:
            print(
                f"error: unknown benchmarks {unknown}; "
                f"choose from {BENCHMARK_NAMES}",
                file=sys.stderr,
            )
            return 2
    try:
        engine = ExecutionEngine(
            jobs=args.jobs, store=NullStore() if args.no_cache else None
        )
        suite = SuiteRunner(scale=args.scale, benchmarks=benchmarks, engine=engine)
        if args.experiment == "all":
            results = run_all(suite)
        else:
            results = [run_experiment(args.experiment, suite)]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = "\n\n\n".join(result.render() for result in results)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.csv:
        from .experiments.reporting import save_csv

        for result in results:
            save_csv(result, args.csv)
    telemetry = engine.telemetry
    if telemetry.jobs:
        print(telemetry.summary(), file=sys.stderr)
    if args.manifest:
        telemetry.write_manifest(args.manifest)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
